//! A retained-mode MVC widget library — the conventional GUI
//! architecture the paper contrasts with (§2):
//!
//! > "The widely used model-view-controller (MVC) pattern requires the
//! > programmer to write code that reacts to model changes and performs
//! > the corresponding updates to the view. If the view is a complex
//! > function of the state, writing such code can be challenging (in
//! > database systems, this is known as the view-update problem)."
//!
//! [`RetainedApp`] keeps a mutable widget tree alive across model
//! changes. The programmer supplies `build` (model → fresh tree, run
//! once) and a set of named *update rules* (model change → targeted
//! tree mutation). The E8 experiment shows both sides of the trade:
//! a correct rule set updates in O(changed widgets) — faster than
//! immediate-mode rebuilding — while a missing rule silently leaves a
//! stale view, the failure mode immediate-mode rendering makes
//! impossible by construction.

use alive_core::value::Color;
use std::collections::HashMap;
use std::fmt;

/// A retained widget: a mutable node the program keeps references into
/// (by id) and updates in place.
#[derive(Debug, Clone, PartialEq)]
pub struct Widget {
    /// Stable identifier used by update rules to find this widget.
    pub id: String,
    /// Displayed text.
    pub text: String,
    /// Optional background color.
    pub background: Option<Color>,
    /// Child widgets.
    pub children: Vec<Widget>,
}

impl Widget {
    /// A leaf widget.
    pub fn leaf(id: impl Into<String>, text: impl Into<String>) -> Self {
        Widget {
            id: id.into(),
            text: text.into(),
            background: None,
            children: Vec::new(),
        }
    }

    /// A container widget.
    pub fn container(id: impl Into<String>, children: Vec<Widget>) -> Self {
        Widget {
            id: id.into(),
            text: String::new(),
            background: None,
            children,
        }
    }

    /// Find a widget by id (depth-first).
    pub fn find(&self, id: &str) -> Option<&Widget> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(id))
    }

    /// Find a widget mutably by id.
    pub fn find_mut(&mut self, id: &str) -> Option<&mut Widget> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter_mut().find_map(|c| c.find_mut(id))
    }

    /// Total widget count.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Widget::count).sum::<usize>()
    }

    /// Flatten visible texts, depth-first — the "screen" for tests.
    pub fn texts(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_texts(&mut out);
        out
    }

    fn collect_texts<'w>(&'w self, out: &mut Vec<&'w str>) {
        if !self.text.is_empty() {
            out.push(&self.text);
        }
        for c in &self.children {
            c.collect_texts(out);
        }
    }
}

impl fmt::Display for Widget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.texts() {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

/// An update rule: reacts to one kind of model change by mutating the
/// retained tree in place.
pub type UpdateRule<M> = fn(&M, &mut Widget);

/// A retained-mode application: model, widget tree built once, and the
/// hand-written view-update rules keyed by change kind.
pub struct RetainedApp<M> {
    /// The model.
    pub model: M,
    tree: Widget,
    rules: HashMap<&'static str, UpdateRule<M>>,
    updates_applied: u64,
    missing_rule_hits: u64,
}

impl<M> RetainedApp<M> {
    /// Build the app: run the view-construction code exactly once
    /// (that is the retained-mode premise).
    pub fn new(model: M, build: impl FnOnce(&M) -> Widget) -> Self {
        let tree = build(&model);
        RetainedApp {
            model,
            tree,
            rules: HashMap::new(),
            updates_applied: 0,
            missing_rule_hits: 0,
        }
    }

    /// Register the update rule for a change kind.
    pub fn on_change(&mut self, kind: &'static str, rule: UpdateRule<M>) -> &mut Self {
        self.rules.insert(kind, rule);
        self
    }

    /// The retained tree (what is on screen).
    pub fn tree(&self) -> &Widget {
        &self.tree
    }

    /// Mutate the model and fire the update rule for `kind`. If the
    /// programmer forgot to register a rule, the model changes but the
    /// view silently does not — the view-update problem.
    pub fn mutate(&mut self, kind: &'static str, change: impl FnOnce(&mut M)) {
        change(&mut self.model);
        match self.rules.get(kind) {
            Some(rule) => {
                rule(&self.model, &mut self.tree);
                self.updates_applied += 1;
            }
            None => {
                self.missing_rule_hits += 1;
            }
        }
    }

    /// How many model changes found no update rule (stale-view bugs).
    pub fn missing_rule_hits(&self) -> u64 {
        self.missing_rule_hits
    }

    /// How many targeted updates ran.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Whether the retained view matches what `build` would produce
    /// from the current model — the consistency oracle.
    pub fn view_consistent(&self, build: impl FnOnce(&M) -> Widget) -> bool {
        build(&self.model) == self.tree
    }
}

impl<M: fmt::Debug> fmt::Debug for RetainedApp<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetainedApp")
            .field("model", &self.model)
            .field("widgets", &self.tree.count())
            .field("rules", &self.rules.len())
            .finish()
    }
}

/// The listings model used by the E8 comparison (mirrors the mortgage
/// start page).
#[derive(Debug, Clone, PartialEq)]
pub struct ListingsModel {
    /// `(address, price)` rows.
    pub listings: Vec<(String, f64)>,
    /// Currently selected row.
    pub selected: usize,
}

/// Build the listings view from the model (used once at startup, and
/// as the consistency oracle).
pub fn build_listings_view(model: &ListingsModel) -> Widget {
    let mut rows = Vec::new();
    for (i, (addr, price)) in model.listings.iter().enumerate() {
        let mut row = Widget::leaf(format!("row-{i}"), format!("{addr} — ${price:.0}"));
        if i == model.selected {
            row.background = Some(Color::new(170, 210, 240));
        }
        rows.push(row);
    }
    Widget::container(
        "root",
        vec![
            Widget::leaf("header", format!("{} listings", model.listings.len())),
            Widget::container("rows", rows),
        ],
    )
}

/// The correct hand-written update rule for selection changes: clears
/// the old highlight and sets the new one (two targeted mutations).
pub fn update_selection(model: &ListingsModel, tree: &mut Widget) {
    let Some(rows) = tree.find_mut("rows") else {
        return;
    };
    for (i, row) in rows.children.iter_mut().enumerate() {
        row.background = (i == model.selected).then_some(Color::new(170, 210, 240));
    }
}

/// The correct update rule for price changes: rewrite one row's text.
pub fn update_prices(model: &ListingsModel, tree: &mut Widget) {
    let Some(rows) = tree.find_mut("rows") else {
        return;
    };
    for (i, row) in rows.children.iter_mut().enumerate() {
        if let Some((addr, price)) = model.listings.get(i) {
            row.text = format!("{addr} — ${price:.0}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> ListingsModel {
        ListingsModel {
            listings: (0..n)
                .map(|i| (format!("{i} Oak St"), 100_000.0 + i as f64))
                .collect(),
            selected: 0,
        }
    }

    #[test]
    fn correct_rules_keep_view_consistent() {
        let mut app = RetainedApp::new(model(5), build_listings_view);
        app.on_change("selection", update_selection);
        app.on_change("price", update_prices);
        app.mutate("selection", |m| m.selected = 3);
        assert!(app.view_consistent(build_listings_view));
        app.mutate("price", |m| m.listings[2].1 = 250_000.0);
        assert!(app.view_consistent(build_listings_view));
        assert_eq!(app.updates_applied(), 2);
        assert_eq!(app.missing_rule_hits(), 0);
    }

    #[test]
    fn missing_rule_yields_stale_view() {
        let mut app = RetainedApp::new(model(5), build_listings_view);
        app.on_change("selection", update_selection);
        // The programmer forgot the "price" rule.
        app.mutate("price", |m| m.listings[2].1 = 999_999.0);
        assert_eq!(app.missing_rule_hits(), 1);
        assert!(
            !app.view_consistent(build_listings_view),
            "the view silently shows the old price"
        );
        let shown = app.tree().find("row-2").expect("row").text.clone();
        assert!(shown.contains("100002"), "stale: {shown}");
    }

    #[test]
    fn widget_tree_navigation() {
        let tree = build_listings_view(&model(3));
        assert_eq!(tree.count(), 6); // root + header + rows + 3 rows
        assert!(tree.find("row-2").is_some());
        assert!(tree.find("row-9").is_none());
        assert_eq!(tree.texts().len(), 4);
    }
}
