//! The conventional edit-compile-run baseline — paper §2's seven-step
//! cycle.
//!
//! A [`RestartSession`] behaves like a conventional IDE: every code
//! edit (1) stops the program, (2–4) recompiles and restarts it from
//! scratch — losing all model state and re-paying initialization cost,
//! including the simulated listing download — and (5) replays the
//! recorded user navigation to get back to the UI context the
//! programmer was looking at. The E3 experiment compares this against
//! the live UPDATE transition.

use alive_core::bigstep::Cost;
use alive_core::system::{ActionError, System};
use alive_core::{compile, RuntimeError};
use alive_syntax::Diagnostics;

/// A recorded user interaction, replayed after every restart.
#[derive(Debug, Clone, PartialEq)]
pub enum NavAction {
    /// Tap the box at a path.
    Tap(Vec<usize>),
    /// Edit the text of the box at a path.
    EditBox(Vec<usize>, String),
    /// Press the back button.
    Back,
}

/// Errors from the restart baseline.
#[derive(Debug)]
pub enum RestartError {
    /// The program did not compile; in this baseline the programmer
    /// cannot even run it.
    Compile(Diagnostics),
    /// The program failed at run time.
    Runtime(RuntimeError),
    /// Replaying the navigation script no longer works under the new
    /// code (the box disappeared) — the programmer must re-navigate by
    /// hand; we surface it as an error.
    Replay(ActionError),
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::Compile(ds) => write!(f, "does not compile:\n{ds}"),
            RestartError::Runtime(e) => write!(f, "runtime error: {e}"),
            RestartError::Replay(e) => write!(f, "navigation replay failed: {e}"),
        }
    }
}

impl std::error::Error for RestartError {}

/// The edit-compile-run baseline session.
#[derive(Debug)]
pub struct RestartSession {
    source: String,
    system: System,
    script: Vec<NavAction>,
    restarts: u64,
}

impl RestartSession {
    /// Compile and start the program.
    ///
    /// # Errors
    ///
    /// See [`RestartError`].
    pub fn new(source: &str) -> Result<Self, RestartError> {
        let program = compile(source).map_err(RestartError::Compile)?;
        let mut system = System::new(program);
        system
            .run_to_stable()
            .map_err(|fault| RestartError::Runtime(fault.error))?;
        Ok(RestartSession {
            source: source.to_string(),
            system,
            script: Vec::new(),
            restarts: 0,
        })
    }

    /// The running system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The current source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// How many full restarts edits have cost so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Total accumulated cost, including all restart re-executions.
    pub fn cost(&self) -> Cost {
        self.system.cost()
    }

    /// Perform and record a user interaction.
    ///
    /// # Errors
    ///
    /// See [`RestartError`].
    pub fn interact(&mut self, action: NavAction) -> Result<(), RestartError> {
        apply_action(&mut self.system, &action).map_err(RestartError::Replay)?;
        self.system
            .run_to_stable()
            .map_err(|fault| RestartError::Runtime(fault.error))?;
        self.script.push(action);
        Ok(())
    }

    /// Apply a code edit the conventional way: recompile, restart from
    /// nothing, and replay the navigation script to get back to the
    /// current UI context (paper §2 steps 1–6). All model state built
    /// up by handlers is lost except what the replay rebuilds.
    ///
    /// # Errors
    ///
    /// See [`RestartError`]. On compile errors the old program keeps
    /// running (like an IDE refusing to launch).
    pub fn edit_source(&mut self, new_source: &str) -> Result<(), RestartError> {
        let program = compile(new_source).map_err(RestartError::Compile)?;
        // Step 1/4: stop and restart with a fresh system — note the
        // accumulated cost carries over so E3 can total the session.
        let old_cost = self.system.cost();
        let mut system = System::new(program);
        system
            .run_to_stable()
            .map_err(|fault| RestartError::Runtime(fault.error))?;
        // Step 5: navigate back to the UI context.
        for action in &self.script {
            apply_action(&mut system, action).map_err(RestartError::Replay)?;
            system
                .run_to_stable()
                .map_err(|fault| RestartError::Runtime(fault.error))?;
        }
        self.absorb_cost(&mut system, old_cost);
        self.system = system;
        self.source = new_source.to_string();
        self.restarts += 1;
        Ok(())
    }

    fn absorb_cost(&self, system: &mut System, old: Cost) {
        // System has no public cost setter; accumulate via a shadow --
        // we keep it simple and fold the old cost into the new system's
        // counter through the debug accessor pattern.
        system.add_external_cost(old);
    }
}

fn apply_action(system: &mut System, action: &NavAction) -> Result<(), ActionError> {
    match action {
        NavAction::Tap(path) => system.tap(path),
        NavAction::EditBox(path, text) => system.edit_box(path, text),
        NavAction::Back => {
            system.back();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_apps::mortgage;
    use alive_core::Value;

    #[test]
    fn restart_loses_model_state_and_repays_downloads() {
        let src = mortgage::mortgage_src(5);
        let mut session = RestartSession::new(&src).expect("starts");
        let downloads_initial = session.cost().prim.web_requests;
        assert_eq!(downloads_initial, 1);

        // Navigate: open the first listing's detail page.
        session
            .interact(NavAction::Tap(vec![1, 0]))
            .expect("navigates");
        assert_eq!(
            session.system().current_page().map(|(n, _)| n),
            Some("detail")
        );

        // An aesthetic tweak forces a full restart + re-download + replay.
        let edited = src.replace("post \"Local\";", "post \"Nearby\";");
        session.edit_source(&edited).expect("edit restarts");
        assert_eq!(session.restarts(), 1);
        assert_eq!(session.cost().prim.web_requests, 2, "download paid again");
        // Replay brought us back to the detail page.
        assert_eq!(
            session.system().current_page().map(|(n, _)| n),
            Some("detail")
        );
    }

    #[test]
    fn restart_resets_handler_built_state() {
        let src = "
            global count : number = 0
            page start() {
                render {
                    boxed { post count; on tap { count := count + 1; } }
                }
            }";
        let mut session = RestartSession::new(src).expect("starts");
        session.interact(NavAction::Tap(vec![0])).expect("tap");
        assert_eq!(
            session.system().store().get("count"),
            Some(&Value::Number(1.0))
        );
        session
            .edit_source(&src.replace("post count;", "post \"n: \" ++ count;"))
            .expect("edit");
        // The tap was replayed once from scratch: count is 1 again, but
        // only because the replay re-tapped — the state itself was lost.
        assert_eq!(
            session.system().store().get("count"),
            Some(&Value::Number(1.0))
        );
        // An edit that renames the box path structure would break replay
        // entirely; here we just confirm the restart count.
        assert_eq!(session.restarts(), 1);
    }
}
