//! The fix-and-continue baseline — paper §2's second conventional tool.
//!
//! > "Many IDEs ... support a 'fix-and-continue' feature where the
//! > programmer can modify their code without restarting the debugging
//! > process. Unfortunately, fix-and-continue often does not result in
//! > responsive feedback: for the common 'retained' UI where a program
//! > builds and modifies a tree of widget objects to be rendered,
//! > changing the code that initially builds this widget tree is
//! > meaningless as that code has already executed and will not execute
//! > again!"
//!
//! A [`FixAndContinueSession`] swaps in new code and keeps all state —
//! but, unlike the live UPDATE transition, it does **not** invalidate
//! the display. The UI built by the old code stays on screen until some
//! *other* event happens to redraw it. The E8 experiment measures how
//! many edits leave a stale display.

use alive_core::boxtree::Display;
use alive_core::fixup::{fixup_pages, fixup_store, FixupReport};
use alive_core::system::{ActionError, System};
use alive_core::{compile, RuntimeError};
use alive_syntax::Diagnostics;

/// The fix-and-continue baseline session.
#[derive(Debug)]
pub struct FixAndContinueSession {
    source: String,
    system: System,
    /// The display frozen at the last real redraw — what the user sees.
    shown: Display,
    stale_views_served: u64,
}

/// Outcome of a fix-and-continue code swap.
#[derive(Debug)]
pub enum SwapOutcome {
    /// Code swapped; the display was NOT refreshed (the usual case).
    SwappedDisplayStale(FixupReport),
    /// The new code was rejected.
    Rejected(Diagnostics),
}

impl FixAndContinueSession {
    /// Compile and start the program.
    ///
    /// # Errors
    ///
    /// Compile diagnostics or startup runtime errors.
    pub fn new(source: &str) -> Result<Self, String> {
        let program = compile(source).map_err(|ds| ds.to_string())?;
        let mut system = System::new(program);
        system.run_to_stable().map_err(|e| e.to_string())?;
        let shown = system.display().clone();
        Ok(FixAndContinueSession {
            source: source.to_string(),
            system,
            shown,
            stale_views_served: 0,
        })
    }

    /// The source currently loaded.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The underlying system (whose display is kept in sync only by
    /// real events, not by code swaps).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// What the user currently sees. After a code swap this can be
    /// *stale*: built by old code.
    pub fn shown(&self) -> &Display {
        &self.shown
    }

    /// Whether what the user sees differs from what the current code
    /// would render — the staleness the paper criticizes.
    pub fn view_is_stale(&mut self) -> Result<bool, RuntimeError> {
        self.system.run_to_stable().map_err(|fault| fault.error)?;
        let fresh = self.system.display();
        Ok(match (&self.shown, fresh) {
            (Display::Valid(old), Display::Valid(new)) => old != new,
            _ => false,
        })
    }

    /// Swap in new code, fix-and-continue style: state is kept (same
    /// fix-up as UPDATE), but the display is left exactly as it was.
    ///
    /// # Errors
    ///
    /// Runtime errors from settling pending events before the swap.
    pub fn swap_code(&mut self, new_source: &str) -> Result<SwapOutcome, RuntimeError> {
        let program = match compile(new_source) {
            Ok(p) => p,
            Err(ds) => return Ok(SwapOutcome::Rejected(ds)),
        };
        self.system.run_to_stable().map_err(|fault| fault.error)?;
        // Reuse the formal fix-up so the comparison is apples-to-apples;
        // the ONLY difference from UPDATE is not touching the display.
        let (store, mut report) = fixup_store(&program, self.system.store());
        let pages = fixup_pages(&program, self.system.page_stack(), &mut report);
        let shown = self.shown.clone();
        let mut system = System::new(program);
        system.add_external_cost(self.system.cost());
        *system.debug_store_mut() = store;
        system.debug_set_pages(pages);
        self.system = system;
        self.system.run_to_stable().map_err(|fault| fault.error)?;
        // The swap does not repaint: keep showing the old pixels.
        self.shown = shown;
        if self.view_is_stale()? {
            self.stale_views_served += 1;
        }
        self.source = new_source.to_string();
        Ok(SwapOutcome::SwappedDisplayStale(report))
    }

    /// A real user interaction finally repaints the display.
    ///
    /// # Errors
    ///
    /// Action or runtime errors.
    pub fn tap(&mut self, path: &[usize]) -> Result<(), String> {
        self.system.run_to_stable().map_err(|e| e.to_string())?;
        match self.system.tap(path) {
            Ok(()) => {}
            Err(ActionError::DisplayInvalid) => {}
            Err(e) => return Err(e.to_string()),
        }
        self.system.run_to_stable().map_err(|e| e.to_string())?;
        self.shown = self.system.display().clone();
        Ok(())
    }

    /// How many code swaps left the user looking at a stale view.
    pub fn stale_views_served(&self) -> u64 {
        self.stale_views_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::boxtree::Display;
    use alive_core::Value;

    const SRC: &str = "
        global count : number = 0
        page start() {
            render {
                boxed { post \"count is \" ++ count; on tap { count := count + 1; } }
            }
        }";

    #[test]
    fn swap_keeps_state_but_shows_stale_view() {
        let mut s = FixAndContinueSession::new(SRC).expect("starts");
        s.tap(&[0]).expect("tap");
        assert_eq!(s.system().store().get("count"), Some(&Value::Number(1.0)));

        let outcome = s
            .swap_code(&SRC.replace("count is", "total:"))
            .expect("swap runs");
        assert!(matches!(outcome, SwapOutcome::SwappedDisplayStale(_)));
        // The user still sees "count is 1" — the old code's output.
        let Display::Valid(shown) = s.shown().clone() else {
            panic!("something is shown");
        };
        let leaf = shown
            .descendant(&[0])
            .expect("box")
            .leaves()
            .next()
            .cloned();
        assert_eq!(leaf, Some(Value::str("count is 1")));
        assert!(s.view_is_stale().expect("comparable"));
        assert_eq!(s.stale_views_served(), 1);

        // Only a real interaction repaints.
        s.tap(&[0]).expect("tap");
        let Display::Valid(shown) = s.shown().clone() else {
            panic!("something is shown");
        };
        let leaf = shown
            .descendant(&[0])
            .expect("box")
            .leaves()
            .next()
            .cloned();
        assert_eq!(leaf, Some(Value::str("total: 2")));
        assert!(!s.view_is_stale().expect("comparable"));
    }

    #[test]
    fn rejected_swap_changes_nothing() {
        let mut s = FixAndContinueSession::new(SRC).expect("starts");
        let outcome = s.swap_code("garbage !!").expect("handled");
        assert!(matches!(outcome, SwapOutcome::Rejected(_)));
        assert_eq!(s.source(), SRC);
    }
}
