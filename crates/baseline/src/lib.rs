//! # alive-baseline
//!
//! Conventional-practice baselines for the *its-alive* benchmarks,
//! implementing the development styles the PLDI 2013 paper's Section 2
//! compares against:
//!
//! * [`restart`] — the seven-step edit-compile-run cycle: every edit
//!   restarts the program from scratch, re-pays initialization (incl.
//!   the simulated listing download), and replays navigation;
//! * [`fix_continue`] — fix-and-continue: code is swapped and state
//!   kept, but the already-built display is not refreshed, so edits to
//!   view-building code show nothing until some other event repaints;
//! * [`retained`] — a retained-mode MVC widget library with
//!   hand-written view-update rules, exhibiting the view-update
//!   problem (a forgotten rule silently leaves the view stale).

#![warn(missing_docs)]

pub mod fix_continue;
pub mod restart;
pub mod retained;

pub use fix_continue::{FixAndContinueSession, SwapOutcome};
pub use restart::{NavAction, RestartError, RestartSession};
pub use retained::{build_listings_view, ListingsModel, RetainedApp, Widget};
