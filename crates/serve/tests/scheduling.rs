//! Scripted-interleaving tests for the host's scheduling protocol.
//!
//! These tests land threads in the protocol's race windows
//! *deterministically* — with rendezvous channels and the host's
//! hidden drain-park hook, never with sleeps. The hook parks the
//! draining worker at the protocol's most delicate point: after the
//! final mailbox pop (mailbox empty) and before the `scheduled` flag
//! is released, which is exactly the window where a concurrent
//! `submit` loses the schedule CAS and must be rescued by the drain's
//! mailbox re-check.

use alive_live::{SessionCommand, SessionEffect};
use alive_serve::{names, HostConfig, HostError, SessionHost};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Generous bound for waits that complete via a signal, not a sleep:
/// it only matters when a regression makes the wait hang forever.
const DEADLINE: Duration = Duration::from_secs(30);

const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

/// Install a one-shot blocking drain hook on `host`: the first drain
/// to reach the lost-wakeup window signals `entered` and then blocks
/// until `release` fires; every later drain passes straight through.
fn blocking_hook(host: &SessionHost) -> (Receiver<()>, Sender<()>) {
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let fired = AtomicBool::new(false);
    let entered_tx = Mutex::new(entered_tx);
    let release_rx = Mutex::new(release_rx);
    host.set_drain_park_hook(Arc::new(move |_id: u64| {
        if fired.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(tx) = entered_tx.lock() {
            let _ = tx.send(());
        }
        if let Ok(rx) = release_rx.lock() {
            let _ = rx.recv();
        }
    }));
    (entered_rx, release_tx)
}

fn view_of(effects: &[SessionEffect]) -> &str {
    match effects.first() {
        Some(SessionEffect::Frame(frame)) => &frame.view,
        other => panic!("expected a frame effect, got {other:?}"),
    }
}

/// The lost-wakeup regression (the re-check after `scheduled` is
/// released): a submit that lands between the drain's final mailbox
/// pop and its `scheduled.store(false)` sees `scheduled == true`,
/// loses the CAS, and enqueues nothing — the *drain* must re-enqueue
/// on its behalf, or the command sits in the mailbox forever.
#[test]
fn submit_in_the_lost_wakeup_window_is_still_drained() {
    let host = SessionHost::new(HostConfig::with_workers(1));
    let id = host.create_session(APP).expect("compiles");
    host.apply(id, SessionCommand::Frame).expect("settles");

    let (entered, release) = blocking_hook(&host);
    // This command's drain will park in the window. Its reply is sent
    // before the window, so waiting on it cannot deadlock.
    let first = host
        .submit(id, SessionCommand::TapPath(vec![0]))
        .expect("live");
    entered
        .recv_timeout(DEADLINE)
        .expect("drain reaches window");
    first.wait().expect("applied before the window");

    // THE WINDOW: the worker holds `scheduled == true` with an empty
    // mailbox. This submit pushes, loses the schedule CAS, and — with
    // the single worker parked inside this very drain — nobody else
    // can ever pick the session up. Only the re-check saves it.
    let rescued = host
        .submit(id, SessionCommand::TapPath(vec![0]))
        .expect("live");
    release.send(()).expect("worker is parked in the hook");

    // A lost wakeup turns this wait into a hang; the timeout converts
    // a regression into a clean failure.
    let effects = rescued
        .wait_timeout(DEADLINE)
        .expect("window submit was rescued by the drain re-check");
    assert!(!effects.is_empty());

    let effects = host.apply(id, SessionCommand::Frame).expect("serves");
    assert_eq!(
        view_of(&effects),
        "count is 21\n",
        "both taps applied exactly once (init 1 + 2×10)"
    );
    host.shutdown();
}

/// The backpressure contract: a mailbox at its high-water capacity
/// refuses further submissions with a typed overload instead of
/// queueing without bound, counts the shed in `host.overloads`, and
/// admits new work again once the backlog drains.
#[test]
fn mailbox_at_capacity_sheds_load_with_a_typed_overload() {
    let host = SessionHost::new(HostConfig {
        mailbox_capacity: 2,
        ..HostConfig::with_workers(1)
    });
    let id = host.create_session(APP).expect("compiles");
    host.apply(id, SessionCommand::Frame).expect("settles");

    let (entered, release) = blocking_hook(&host);
    let first = host
        .submit(id, SessionCommand::TapPath(vec![0]))
        .expect("live");
    entered
        .recv_timeout(DEADLINE)
        .expect("drain reaches window");
    first.wait().expect("applied before the window");

    // The worker is parked, so these stack up deterministically.
    let second = host
        .submit(id, SessionCommand::TapPath(vec![0]))
        .expect("depth 1 of 2");
    let third = host
        .submit(id, SessionCommand::TapPath(vec![0]))
        .expect("depth 2 of 2");
    let refused = host.submit(id, SessionCommand::TapPath(vec![0]));
    match refused {
        Err(HostError::Overloaded { session, depth }) => {
            assert_eq!(session, id);
            assert_eq!(depth, 2, "refusal reports the configured capacity");
        }
        other => panic!("expected a typed overload, got {other:?}"),
    }

    release.send(()).expect("worker is parked in the hook");
    second.wait_timeout(DEADLINE).expect("queued command runs");
    third.wait_timeout(DEADLINE).expect("queued command runs");

    // Shed load is refused, not queued: only the three admitted taps
    // applied. And with the backlog drained the mailbox admits again.
    let effects = host.apply(id, SessionCommand::Frame).expect("serves");
    assert_eq!(view_of(&effects), "count is 31\n");

    let snapshot = host.shutdown();
    assert_eq!(snapshot.counter(names::OVERLOADS), 1);
}

/// Work conservation across shards: while one worker is wedged inside
/// a session's drain, every other session keeps being served — the
/// free worker claims their home shards or steals across, but never
/// waits on the wedged one.
#[test]
fn a_wedged_session_does_not_wedge_the_pool() {
    let host = SessionHost::new(HostConfig::with_workers(2));
    let wedged = host.create_session(APP).expect("compiles");
    let live = host.create_session(APP).expect("compiles");
    host.apply(wedged, SessionCommand::Frame).expect("settles");
    host.apply(live, SessionCommand::Frame).expect("settles");

    let (entered, release) = blocking_hook(&host);
    let parked = host
        .submit(wedged, SessionCommand::TapPath(vec![0]))
        .expect("live");
    entered
        .recv_timeout(DEADLINE)
        .expect("drain reaches window");
    parked.wait().expect("applied before the window");

    // One of the two workers is now parked inside `wedged`'s drain.
    // The other must keep the rest of the host alive on its own.
    for _ in 0..16 {
        let ticket = host
            .submit(live, SessionCommand::TapPath(vec![0]))
            .expect("live");
        ticket
            .wait_timeout(DEADLINE)
            .expect("the free worker serves other sessions");
    }
    let effects = host.apply(live, SessionCommand::Frame).expect("serves");
    assert_eq!(view_of(&effects), format!("count is {}\n", 1 + 16 * 10));

    release.send(()).expect("worker is parked in the hook");
    let snapshot = host.shutdown();
    // Quiesced accounting: every worker microsecond is attributed.
    assert_eq!(
        snapshot.counter(names::WORKER_BUSY_US)
            + snapshot.counter(names::WORKER_PARKED_US)
            + snapshot.counter(names::WORKER_STEAL_SCAN_US),
        snapshot.counter(names::WORKER_WALL_US),
        "busy + parked + steal_scan must equal wall exactly"
    );
    assert_eq!(
        snapshot.counter(names::WORKER_PARKED_US) + snapshot.counter(names::WORKER_STEAL_SCAN_US),
        snapshot.counter(names::WORKER_IDLE_US),
        "idle is parked + steal-scan, nothing else"
    );
}
