//! Seed-replayable canary walk with mid-canary fault injection — the
//! rollout counterpart of `concurrent_walk`.
//!
//! A fleet of hosted sessions runs a seeded burst of client traffic,
//! then an edit transaction stages a new version whose tap handler
//! calls `math.abs` — a primitive the base version never touches. A
//! [`FaultPlan`] installed on every canary makes that call fail, so
//! the staged version faults *only under traffic, only on canaries,
//! only by injection*. The transaction must auto-roll-back, and every
//! session — canary or not — must end byte-identical to a solo
//! [`LiveSession`] replaying the same command log under the base
//! version with no injector anywhere: the transaction, the injected
//! faults, and the rollout machinery leave no trace.
//!
//! Seed-replayable: `ALIVE_TESTKIT_SEED=0x… cargo test -p alive-serve`
//! reruns the identical walk.

use alive_core::system::SystemConfig;
use alive_core::Prim;
use alive_live::{LiveSession, SessionCommand, TxPhase};
use alive_obs::ManualClock;
use alive_serve::rollout::RolloutConfig;
use alive_serve::{HostConfig, SessionHost};
use alive_syntax::{Span, TextEdit};
use alive_testkit::{prop, FaultPlan, Rng};
use std::sync::Arc;

const SESSIONS: usize = 12;

const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

const TAP_STMT: &str = "count := count + 10;";
/// The staged handler calls a primitive the base version never does —
/// the injection point that makes the new version fault on canaries.
const BAD_TAP: &str = "count := count + math.abs(0 - 10);";

#[test]
fn injected_canary_faults_roll_back_to_solo_replay_byte_identity() {
    let seed = prop::seed_from_env();
    let mut rng = Rng::new(seed);
    let clock = Arc::new(ManualClock::with_auto_step(1));
    let window_us = 1_000_000;
    let host = SessionHost::with_clock(
        HostConfig {
            rollout: RolloutConfig {
                canary_percent: 25,
                observation_window_us: window_us,
                fault_threshold: 1,
            },
            system: SystemConfig {
                fuel: 10_000,
                max_transitions: 10_000,
                ..SystemConfig::default()
            },
            ..HostConfig::with_workers(4)
        },
        clock.clone(),
    );
    let ids: Vec<_> = (0..SESSIONS)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();

    // Phase 1: a seeded burst of concurrent traffic — tickets are
    // collected first so sibling sessions interleave on the worker
    // pool — while a per-session log records the ground truth.
    let mut logs: Vec<Vec<SessionCommand>> = vec![Vec::new(); SESSIONS];
    let mut tickets = Vec::new();
    for _ in 0..rng.gen_range(24..64) {
        let victim = rng.below(SESSIONS);
        let command = SessionCommand::TapPath(vec![0]);
        logs[victim].push(command.clone());
        tickets.push(host.submit(ids[victim], command).expect("live"));
    }
    for ticket in tickets {
        ticket.wait().expect("applied");
    }

    // The transaction: stage the handler that calls `math.abs`.
    let tx = host.tx_open(ids[0]).expect("opens");
    let at = APP.find(TAP_STMT).expect("handler present") as u32;
    host.tx_edit(
        tx,
        &[TextEdit::replace(
            Span::new(at, at + TAP_STMT.len() as u32),
            BAD_TAP,
        )],
    )
    .expect("stages");
    let phase = host.tx_commit(tx).expect("commit parks in the window");
    let TxPhase::Canary { canary, fleet } = phase else {
        panic!("expected a parked canary, got {phase:?}");
    };
    assert_eq!(fleet, SESSIONS);
    assert_eq!(canary, SESSIONS / 4, "25% canary slice");

    // The canary slice is deterministic: lowest session ids first.
    let canaries = &ids[..canary];

    // Arm every canary: its first `math.abs` call fails, so the very
    // first tap it answers under the staged version faults.
    let plans: Vec<_> = canaries
        .iter()
        .map(|&id| {
            let plan = FaultPlan::new().fail_prim(Prim::MathAbs, 1).shared();
            let installed = plan.clone();
            host.inspect_session(id, move |session| {
                session.system_mut().set_fault_injector(installed);
            })
            .expect("live");
            plan
        })
        .collect();

    // Phase 2: seeded mid-canary traffic over the whole fleet. Every
    // canary gets at least one tap (tripping the injected fault);
    // everyone's log keeps recording.
    let mut tickets = Vec::new();
    for (slot, &id) in ids.iter().enumerate() {
        for _ in 0..1 + rng.below(3) {
            let command = SessionCommand::TapPath(vec![0]);
            logs[slot].push(command.clone());
            tickets.push(host.submit(id, command).expect("live"));
        }
    }
    for ticket in tickets {
        ticket.wait().expect("applied");
    }
    for (i, plan) in plans.iter().enumerate() {
        assert!(
            plan.lock().expect("plan").injected() >= 1,
            "canary {i} tapped the staged handler, the injection fired (seed {seed:#x})"
        );
    }

    // Close the window: the status poll sees the fault spike and rolls
    // every canary back to its pre-transaction checkpoint, replaying
    // the phase-2 taps it answered mid-canary against the restored
    // base program.
    clock.advance_us(2 * window_us);
    let phase = host.tx_status(tx).expect("poll decides");
    let TxPhase::RolledBack { reverted, .. } = phase else {
        panic!("injected canary faults must roll back, got {phase:?} (seed {seed:#x})");
    };
    assert_eq!(
        reverted, canary,
        "every canary was restored (seed {seed:#x})"
    );

    // Disarm the canaries so the byte-identity inspection runs under
    // the same conditions as the solo replay (no injector anywhere).
    for &id in canaries {
        host.inspect_session(id, |session| session.system_mut().clear_fault_injector())
            .expect("live");
    }

    // Byte-identity: every session — canary and bystander alike — is
    // exactly a solo session that replayed the same log under the base
    // version with no transaction and no injector. The canaries' taps
    // that faulted mid-canary *apply* here: the journal replay runs
    // them against the restored handler, which is the solo behaviour.
    for (slot, &id) in ids.iter().enumerate() {
        let mut solo = LiveSession::new(APP).expect("starts");
        for command in &logs[slot] {
            solo.apply(command.clone());
        }
        let hosted = host
            .inspect_session(id, |session| {
                (session.source().to_string(), session.frame_snapshot())
            })
            .expect("live");
        assert_eq!(hosted.0, APP, "session {slot} left the base version");
        assert_eq!(
            hosted.1,
            solo.frame_snapshot(),
            "session {slot} diverged from its solo replay (seed {seed:#x})"
        );
    }

    // Only canaries carry rollout scars — and only in monotone
    // counters, never in replayable state.
    for (slot, &id) in ids.iter().enumerate() {
        let snapshot = host.session_metrics(id).expect("live");
        let expected = u64::from(slot < canary);
        assert_eq!(snapshot.counter("session.fleet.updates"), expected);
        assert_eq!(snapshot.counter("session.fleet.reverts"), expected);
    }
    host.shutdown();
}
