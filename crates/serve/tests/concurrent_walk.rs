//! Cross-thread property walk: every hosted session must behave
//! byte-for-byte like a solo [`LiveSession`] replaying the same command
//! log — no matter how many sibling sessions the host is juggling on
//! its worker pool at the same time.
//!
//! One thread per available CPU (at least two, so the walk exercises
//! real interleaving even on a single-core runner) drives its own
//! 256-step seed-replayable walk — the same action mix as the repo's
//! `session_random_walk` — against a shared [`SessionHost`], holding a
//! private solo session in lockstep and asserting every batch of
//! effects (frames included) is identical.
//!
//! Seed-replayable: `ALIVE_TESTKIT_SEED=0x… cargo test -p alive-serve`
//! reruns the identical walks.

use alive_live::{LiveSession, SessionCommand, SessionEffect};
use alive_serve::{HostConfig, SessionHost};
use alive_testkit::{prop, Rng};
use std::sync::Arc;

const STEPS: usize = 256;

const APP: &str = r#"
global score : number = 0
global label : string = "points"
page start() {
    init { }
    render {
        boxed {
            post label ++ ": " ++ score;
            on edited(t: string) { label := t; }
        }
        for i in 0 .. 3 {
            boxed {
                post "+" ++ (i + 1);
                on tap { score := score + i + 1; }
            }
        }
        boxed {
            post "open detail";
            on tap { push detail(score); }
        }
        boxed {
            remember local_hits : number = 0;
            post "widget " ++ local_hits;
            on tap { local_hits := local_hits + 1; }
        }
    }
}
page detail(n : number) {
    render {
        boxed { post "snapshot of " ++ n; on tap { pop; } }
    }
}
"#;

#[derive(Debug, Clone)]
enum Action {
    Tap(usize, usize),
    EditBox(usize, String),
    Back,
    SourceTweak(u8),
    Undo,
    SnapshotRoundtrip,
}

fn arb_action(rng: &mut Rng) -> Action {
    match rng.below(6) {
        0 => Action::Tap(rng.below(8), rng.below(4)),
        1 => Action::EditBox(rng.below(8), rng.string_in("0123456789", 0, 3)),
        2 => Action::Back,
        3 => Action::SourceTweak(rng.below(4) as u8),
        4 => Action::Undo,
        _ => Action::SnapshotRoundtrip,
    }
}

fn tweaked(src: &str, which: u8) -> String {
    match which {
        0 => src.replace("\": \"", "\" = \""),
        1 => src.replace("open detail", "details..."),
        2 => src.replace("score + i + 1", "score + (i + 1) * 2"),
        _ => src.replace("snapshot of ", "detail for "),
    }
}

/// Apply one command to the hosted session and the solo session and
/// assert the effect batches are identical (this is where frame
/// byte-identity lives: `FrameSnapshot` equality covers the rendered
/// view text, the box tree, the banner, and the generation counter).
fn lockstep(
    host: &SessionHost,
    id: alive_serve::SessionId,
    solo: &mut LiveSession,
    step: usize,
    command: SessionCommand,
) -> Vec<SessionEffect> {
    let hosted = host
        .apply(id, command.clone())
        .unwrap_or_else(|e| panic!("step {step}: host died: {e}"));
    let local = solo.apply(command.clone());
    assert_eq!(
        hosted, local,
        "step {step}: hosted effects diverged from solo replay for {command:?}"
    );
    hosted
}

fn walk(host: &SessionHost, seed: u64, thread: usize) {
    let id = host.create_session(APP).expect("session compiles");
    let mut solo = LiveSession::new(APP).expect("solo starts");
    let mut rng = Rng::new(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for step in 0..STEPS {
        match arb_action(&mut rng) {
            Action::Tap(a, b) => {
                let first = lockstep(host, id, &mut solo, step, SessionCommand::TapPath(vec![a]));
                if matches!(first.first(), Some(SessionEffect::Refused(_))) {
                    lockstep(
                        host,
                        id,
                        &mut solo,
                        step,
                        SessionCommand::TapPath(vec![a, b]),
                    );
                }
            }
            Action::EditBox(p, text) => {
                lockstep(
                    host,
                    id,
                    &mut solo,
                    step,
                    SessionCommand::EditBox {
                        path: vec![p],
                        text,
                    },
                );
            }
            Action::Back => {
                lockstep(host, id, &mut solo, step, SessionCommand::Back);
            }
            Action::SourceTweak(which) => {
                let new_src = tweaked(solo.source(), which);
                lockstep(
                    host,
                    id,
                    &mut solo,
                    step,
                    SessionCommand::EditSource(new_src),
                );
            }
            Action::Undo => {
                lockstep(host, id, &mut solo, step, SessionCommand::Undo);
            }
            Action::SnapshotRoundtrip => {
                let effects = lockstep(host, id, &mut solo, step, SessionCommand::Snapshot);
                let Some(SessionEffect::Snapshot(snap)) = effects.into_iter().next() else {
                    panic!("step {step}: snapshot refused");
                };
                lockstep(host, id, &mut solo, step, SessionCommand::Restore(snap));
            }
        }
    }
    // Final frame: hosted and solo end byte-identical, and the host's
    // published fan-out frame agrees with the replied one.
    let effects = lockstep(host, id, &mut solo, STEPS, SessionCommand::Frame);
    let SessionEffect::Frame(final_frame) = &effects[0] else {
        panic!("expected final frame");
    };
    let published = host
        .latest_frame(id)
        .expect("session is live")
        .expect("frames were published");
    assert_eq!(published.as_ref(), final_frame, "fan-out frame is stale");
}

#[test]
fn concurrent_walks_match_solo_replays_byte_for_byte() {
    let threads = std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .max(2);
    let host = Arc::new(SessionHost::new(HostConfig::with_workers(threads)));
    let seed = prop::seed_from_env();

    let handles: Vec<_> = (0..threads)
        .map(|thread| {
            let host = Arc::clone(&host);
            std::thread::spawn(move || walk(&host, seed, thread))
        })
        .collect();
    for handle in handles {
        if let Err(e) = handle.join() {
            std::panic::resume_unwind(e);
        }
    }

    // All sessions came from one source version: one compile total,
    // shared across every thread's session.
    assert_eq!(
        host.programs_compiled(),
        1,
        "program must be compiled once and shared"
    );
    assert_eq!(host.session_count(), threads);

    // Quiesced worker accounting, under the full adversarial walk with
    // work-stealing enabled: every worker microsecond is attributed to
    // exactly one of busy / parked / steal-scan (the identity is exact
    // because the shutdown snapshot is taken after every worker has
    // joined), and idle no longer hides ready-queue contention — it is
    // parked time plus scan time, nothing else.
    let host = Arc::into_inner(host).expect("walk threads joined");
    let snapshot = host.shutdown();
    let busy = snapshot.counter(alive_serve::names::WORKER_BUSY_US);
    let parked = snapshot.counter(alive_serve::names::WORKER_PARKED_US);
    let scan = snapshot.counter(alive_serve::names::WORKER_STEAL_SCAN_US);
    assert_eq!(
        busy + parked + scan,
        snapshot.counter(alive_serve::names::WORKER_WALL_US),
        "busy + parked + steal_scan must equal worker wall time exactly"
    );
    assert_eq!(
        parked + scan,
        snapshot.counter(alive_serve::names::WORKER_IDLE_US),
        "idle must be exactly parked + steal-scan"
    );
}
