//! Edit transactions with canary UPDATE fan-out and fault-spike
//! auto-rollback — the host-level acceptance suite.
//!
//! The headline property: committing a known-bad transaction against a
//! fleet of 100 sessions with a 10% canary slice touches **only** the
//! canaries — they fault, the transaction auto-rolls-back, every
//! updated session is restored byte-identical to its pre-transaction
//! state, and the other 90% never observe the bad version at all.

use alive_core::system::SystemConfig;
use alive_live::{LiveSession, SessionCommand, SessionEffect, TxPhase};
use alive_obs::ManualClock;
use alive_serve::rollout::RolloutConfig;
use alive_serve::{effect_for_error, names, HostConfig, HostError, SessionHost};
use alive_syntax::{Span, TextEdit};
use std::sync::Arc;

/// A small per-transition fuel budget: the tiny test app settles in a
/// handful of steps, and the known-bad `while true` payloads trip
/// divergence detection quickly instead of burning the (much larger)
/// default budget on every canary.
const FUEL: SystemConfig = SystemConfig {
    fuel: 10_000,
    max_transitions: 10_000,
    engine: alive_core::system::EvalEngine::Vm,
};

const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

/// The render statement the bad transactions replace.
const RENDER_STMT: &str = "post \"count is \" ++ count;";
/// Type-checks, then exhausts its fuel on the first render — the
/// "known-bad" payload: a contained render fault on every canary.
const BAD_RENDER: &str = "while true { count; } post \"never\";";

/// A span-addressed edit replacing `needle` with `replacement` in `src`.
fn edit_replacing(src: &str, needle: &str, replacement: &str) -> TextEdit {
    let at = src.find(needle).expect("needle present") as u32;
    TextEdit::replace(Span::new(at, at + needle.len() as u32), replacement)
}

#[test]
fn bad_commit_faults_only_the_canaries_and_rolls_back_byte_identically() {
    let host = SessionHost::new(HostConfig {
        rollout: RolloutConfig {
            canary_percent: 10,
            observation_window_us: 0,
            fault_threshold: 1,
        },
        system: FUEL,
        ..HostConfig::with_workers(4)
    });
    let ids: Vec<_> = (0..100)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();
    assert_eq!(host.programs_compiled(), 1, "one compile for 100 sessions");

    // Give every session its own state so byte-identity is meaningful.
    for (i, &id) in ids.iter().enumerate() {
        for _ in 0..(i % 3) {
            host.apply(id, SessionCommand::TapPath(vec![0]))
                .expect("tap applies");
        }
    }
    let pre_frames: Vec<_> = ids
        .iter()
        .map(|&id| host.latest_frame(id).expect("live").expect("settled"))
        .collect();

    // Open against the fleet's version, stage the bad batch, commit.
    let tx = host.tx_open(ids[0]).expect("origin is live");
    host.tx_edit(tx, &[edit_replacing(APP, RENDER_STMT, BAD_RENDER)])
        .expect("stages");
    let phase = host.tx_commit(tx).expect("commit decides");
    let TxPhase::RolledBack { reverted, reason } = phase else {
        panic!("bad commit must roll back, got {phase:?}");
    };
    assert_eq!(reverted, 10, "exactly the 10% canary slice was updated");
    assert!(reason.contains("fault spike"), "reason names the spike");
    assert_eq!(
        host.tx_status(tx).expect("known"),
        TxPhase::RolledBack { reverted, reason }
    );

    // The batch was compiled exactly once for the whole fleet.
    assert_eq!(
        host.programs_compiled(),
        2,
        "base + staged, one compile each"
    );
    assert_eq!(host.version_count(), 2);

    // Only the canaries (the first 10 by id) ever ran the bad version:
    // their monotone per-session counters witness one fleet update, one
    // contained render fault, one revert. The other 90 saw nothing.
    for (i, &id) in ids.iter().enumerate() {
        let snapshot = host.session_metrics(id).expect("live");
        let updates = snapshot.counter("session.fleet.updates");
        let reverts = snapshot.counter("session.fleet.reverts");
        let faults = snapshot.counter("system.rollbacks");
        if i < 10 {
            assert_eq!(updates, 1, "canary {i} applied the update");
            assert_eq!(reverts, 1, "canary {i} was reverted");
            assert!(faults >= 1, "canary {i} observed the fault");
        } else {
            assert_eq!(updates, 0, "session {i} never saw the bad version");
            assert_eq!(reverts, 0, "session {i} had nothing to revert");
            assert_eq!(faults, 0, "session {i} never observed a fault");
        }
    }

    // Byte-identity: every session's published frame is exactly its
    // pre-transaction frame, and every session is back on the base
    // source — including the canaries that ran the bad version.
    for (&id, pre) in ids.iter().zip(&pre_frames) {
        let post = host.latest_frame(id).expect("live").expect("settled");
        assert_eq!(post.as_ref(), pre.as_ref(), "{id} frame changed");
        let source = host
            .inspect_session(id, |session| session.source().to_string())
            .expect("live");
        assert_eq!(source, APP, "{id} is not on the base version");
    }

    // And byte-identity against a fresh solo replay of the same
    // command log (sampled): the transaction left no trace at all.
    for (i, &id) in ids.iter().enumerate().step_by(9) {
        let mut solo = LiveSession::new(APP).expect("starts");
        for _ in 0..(i % 3) {
            solo.apply(SessionCommand::TapPath(vec![0]));
        }
        let solo_frame = solo.frame_snapshot();
        let hosted_frame = host
            .inspect_session(id, |session| session.frame_snapshot())
            .expect("live");
        assert_eq!(hosted_frame, solo_frame, "{id} diverged from solo replay");
    }

    let snapshot = host.shutdown();
    assert_eq!(snapshot.counter(names::ROLLBACKS_TOTAL), 1);
    assert_eq!(snapshot.counter(names::ROLLOUT_UPDATES), 10);
    assert_eq!(snapshot.counter(names::ROLLOUT_REVERTS), 10);
    assert_eq!(snapshot.gauge(names::ROLLOUT_CANARY_SESSIONS), 10);
    assert_eq!(snapshot.counter(names::TX_OPENED), 1);
    assert_eq!(snapshot.counter(names::TX_COMMITTED), 1);
    assert_eq!(snapshot.counter(names::TX_PROMOTED), 0);
}

#[test]
fn good_commit_promotes_the_whole_fleet_with_one_compile() {
    let host = SessionHost::new(HostConfig::with_workers(2));
    let ids: Vec<_> = (0..8)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();

    let tx = host.tx_open(ids[0]).expect("opens");
    host.tx_edit(tx, &[edit_replacing(APP, "count is", "n =")])
        .expect("stages");
    let phase = host.tx_commit(tx).expect("commit decides");
    assert_eq!(
        phase,
        TxPhase::Promoted {
            updated: 8,
            skipped: 0
        }
    );
    assert_eq!(host.programs_compiled(), 2, "the batch compiled once");

    // Every session renders the new version, from its own model state.
    for &id in &ids {
        let frame = host.latest_frame(id).expect("live").expect("settled");
        assert_eq!(frame.view, "n = 1\n");
        let snapshot = host.session_metrics(id).expect("live");
        assert_eq!(snapshot.counter("session.fleet.updates"), 1);
        assert_eq!(snapshot.counter("session.fleet.promotes"), 1);
        assert_eq!(snapshot.counter("session.fleet.reverts"), 0);
        assert_eq!(
            snapshot.counter("system.updates.shared"),
            1,
            "the session applied the host-compiled program without re-typechecking"
        );
    }

    // Terminal: the decision is sticky and re-commit is refused.
    assert_eq!(
        host.tx_status(tx).expect("known"),
        TxPhase::Promoted {
            updated: 8,
            skipped: 0
        }
    );
    assert!(matches!(
        host.tx_commit(tx),
        Err(HostError::TransactionClosed(_))
    ));

    let snapshot = host.shutdown();
    assert_eq!(snapshot.counter(names::TX_PROMOTED), 1);
    assert_eq!(snapshot.counter(names::ROLLBACKS_TOTAL), 0);
    assert_eq!(snapshot.counter(names::ROLLOUT_UPDATES), 8);
}

#[test]
fn rejected_commit_keeps_the_transaction_open_for_a_fix() {
    let host = SessionHost::new(HostConfig::with_workers(1));
    let id = host.create_session(APP).expect("compiles");

    let tx = host.tx_open(id).expect("opens");
    host.tx_edit(
        tx,
        &[TextEdit::replace(
            Span::new(0, APP.len() as u32),
            "not a program",
        )],
    )
    .expect("stages");
    assert!(matches!(host.tx_commit(tx), Err(HostError::Compile(_))));
    // Still open: stage a fix over the broken staged text and retry.
    assert_eq!(
        host.tx_status(tx).expect("known"),
        TxPhase::Open { edits: 1 }
    );
    host.tx_edit(
        tx,
        &[TextEdit::replace(
            Span::new(0, "not a program".len() as u32),
            APP.replace("count is", "n ="),
        )],
    )
    .expect("stages the fix");
    let phase = host.tx_commit(tx).expect("fixed commit decides");
    assert_eq!(
        phase,
        TxPhase::Promoted {
            updated: 1,
            skipped: 0
        }
    );
    let frame = host.latest_frame(id).expect("live").expect("settled");
    assert_eq!(frame.view, "n = 1\n");
    host.shutdown();
}

#[test]
fn observation_window_defers_the_decision_to_a_status_poll() {
    // Deterministic time: the rollout clock is the metrics clock.
    let clock = Arc::new(ManualClock::with_auto_step(1));
    let window_us = 60_000_000;
    let host = SessionHost::with_clock(
        HostConfig {
            rollout: RolloutConfig {
                canary_percent: 10,
                observation_window_us: window_us,
                fault_threshold: 1,
            },
            system: FUEL,
            ..HostConfig::with_workers(2)
        },
        clock.clone(),
    );
    let ids: Vec<_> = (0..10)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();
    let canary = ids[0];
    host.apply(canary, SessionCommand::TapPath(vec![0]))
        .expect("pre-transaction tap"); // count = 11

    // The staged version faults only under traffic: the tap handler
    // exhausts its fuel. The canary wave itself applies clean.
    let tx = host.tx_open(canary).expect("opens");
    host.tx_edit(
        tx,
        &[edit_replacing(
            APP,
            "count := count + 10;",
            "while true { count := count + 1; }",
        )],
    )
    .expect("stages");
    let phase = host.tx_commit(tx).expect("commit parks in the window");
    assert_eq!(
        phase,
        TxPhase::Canary {
            canary: 1,
            fleet: 10
        }
    );

    // Mid-window polls report the canary phase without deciding.
    assert_eq!(
        host.tx_status(tx).expect("known"),
        TxPhase::Canary {
            canary: 1,
            fleet: 10
        }
    );

    // Canary-directed client traffic trips the new handler: two
    // contained handler faults, journaled for the revert replay.
    for _ in 0..2 {
        host.apply(canary, SessionCommand::TapPath(vec![0]))
            .expect("tap flows to the canary");
    }
    // The rest of the fleet never ran the staged version.
    for &id in &ids[1..] {
        assert_eq!(
            host.session_metrics(id)
                .expect("live")
                .counter("session.fleet.updates"),
            0
        );
    }

    // Close the window; the poll probes the canary and rolls back.
    clock.advance_us(2 * window_us);
    let phase = host.tx_status(tx).expect("poll decides");
    let TxPhase::RolledBack { reverted, .. } = phase else {
        panic!("fault spike inside the window must roll back, got {phase:?}");
    };
    assert_eq!(reverted, 1);

    // The canary replayed its journaled taps against the restored
    // program: byte-identical to a solo session that ran all three
    // taps under the base version (1 + 3×10 = 31).
    let mut solo = LiveSession::new(APP).expect("starts");
    for _ in 0..3 {
        solo.apply(SessionCommand::TapPath(vec![0]));
    }
    let hosted_frame = host
        .inspect_session(canary, |session| session.frame_snapshot())
        .expect("live");
    assert_eq!(hosted_frame, solo.frame_snapshot());
    assert_eq!(hosted_frame.view, "count is 31\n");

    // A clean transaction through the same window promotes.
    let tx = host.tx_open(ids[1]).expect("opens");
    host.tx_edit(tx, &[edit_replacing(APP, "count is", "n =")])
        .expect("stages");
    assert_eq!(
        host.tx_commit(tx).expect("parks"),
        TxPhase::Canary {
            canary: 1,
            fleet: 10
        }
    );
    clock.advance_us(2 * window_us);
    assert_eq!(
        host.tx_status(tx).expect("poll decides"),
        TxPhase::Promoted {
            updated: 10,
            skipped: 0
        }
    );

    let snapshot = host.shutdown();
    assert_eq!(snapshot.counter(names::ROLLBACKS_TOTAL), 1);
    assert_eq!(snapshot.counter(names::TX_PROMOTED), 1);
}

#[test]
fn diverged_sessions_are_left_out_of_the_fleet() {
    let host = SessionHost::new(HostConfig::with_workers(2));
    let ids: Vec<_> = (0..4)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();
    let tx = host.tx_open(ids[0]).expect("opens");
    host.tx_edit(tx, &[edit_replacing(APP, "count is", "n =")])
        .expect("stages");

    // One session edits away from the base version before the commit:
    // it is no longer subscribed to the transaction's base version, so
    // the rollout does not touch it at all.
    let diverged = APP.replace("count + 10", "count + 100");
    host.apply(ids[3], SessionCommand::EditSource(diverged.clone()))
        .expect("local edit applies");

    let phase = host.tx_commit(tx).expect("commit decides");
    assert_eq!(
        phase,
        TxPhase::Promoted {
            updated: 3,
            skipped: 0
        }
    );
    let source = host
        .inspect_session(ids[3], |session| session.source().to_string())
        .expect("live");
    assert_eq!(source, diverged, "the diverged session kept its own edit");
    host.shutdown();
}

#[test]
fn transaction_errors_are_typed() {
    let host = SessionHost::new(HostConfig::with_workers(1));
    let id = host.create_session(APP).expect("compiles");

    assert!(matches!(
        host.tx_edit(999, &[]),
        Err(HostError::UnknownTransaction(999))
    ));
    assert!(matches!(
        host.tx_commit(999),
        Err(HostError::UnknownTransaction(999))
    ));
    assert!(matches!(
        host.tx_status(999),
        Err(HostError::UnknownTransaction(999))
    ));

    // Malformed batches are refused with the staged text unchanged.
    let tx = host.tx_open(id).expect("opens");
    assert!(matches!(
        host.tx_edit(tx, &[TextEdit::delete(Span::new(0, 1_000_000))]),
        Err(HostError::Edit(_))
    ));
    assert_eq!(
        host.tx_status(tx).expect("known"),
        TxPhase::Open { edits: 0 }
    );

    // Abort is terminal.
    host.tx_abort(tx).expect("aborts");
    assert_eq!(host.tx_status(tx).expect("known"), TxPhase::Aborted);
    assert!(matches!(
        host.tx_edit(tx, &[]),
        Err(HostError::TransactionClosed(_))
    ));
    assert!(matches!(
        host.tx_abort(tx),
        Err(HostError::TransactionClosed(_))
    ));
    host.shutdown();
}

#[test]
fn tx_commands_flow_over_the_session_protocol() {
    // The same five commands a wire client sends — answered by the
    // host's fleet machinery, with effects from the shared vocabulary.
    let host = SessionHost::new(HostConfig::with_workers(2));
    let ids: Vec<_> = (0..4)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();

    let effects = host.apply(ids[0], SessionCommand::TxOpen).expect("applies");
    let [SessionEffect::Tx {
        tx,
        phase: TxPhase::Open { edits: 0 },
    }] = effects.as_slice()
    else {
        panic!("expected an open effect, got {effects:?}");
    };
    let tx = *tx;

    let effects = host
        .apply(
            ids[0],
            SessionCommand::TxEdit {
                tx,
                edits: vec![edit_replacing(APP, "count is", "n =")],
            },
        )
        .expect("applies");
    assert_eq!(
        effects,
        vec![SessionEffect::Tx {
            tx,
            phase: TxPhase::Open { edits: 1 }
        }]
    );

    let effects = host
        .apply(ids[0], SessionCommand::TxCommit(tx))
        .expect("applies");
    assert_eq!(
        effects,
        vec![SessionEffect::Tx {
            tx,
            phase: TxPhase::Promoted {
                updated: 4,
                skipped: 0
            }
        }]
    );

    // Unknown ids come back as refusals, not errors: the protocol
    // stays total for wire clients.
    let effects = host
        .apply(ids[0], SessionCommand::TxCommit(999))
        .expect("applies");
    assert!(matches!(effects[0], SessionEffect::Refused(_)));
    let effects = host
        .apply(ids[0], SessionCommand::TxAbort(tx))
        .expect("applies");
    assert!(matches!(effects[0], SessionEffect::Refused(_)));
    host.shutdown();
}

#[test]
fn overload_maps_to_the_typed_backpressure_effect() {
    // A host refusal becomes the wire's typed `overloaded` effect,
    // carrying the depth clients size their backoff from; other
    // errors stay prose refusals.
    let err = HostError::Timeout;
    assert!(matches!(effect_for_error(&err), SessionEffect::Refused(_)));
    let host = SessionHost::new(HostConfig {
        mailbox_capacity: 1,
        ..HostConfig::with_workers(1)
    });
    let id = host.create_session(APP).expect("compiles");
    // Race-free overload: stuff the mailbox faster than a single
    // worker can possibly drain by submitting from under a parked
    // drain is overkill here — with capacity 1 two back-to-back
    // submissions suffice often, so loop until the typed refusal.
    let error = loop {
        match host.submit(id, SessionCommand::TapPath(vec![0])) {
            Ok(_) => continue,
            Err(error) => break error,
        }
    };
    let SessionEffect::Overloaded { depth } = effect_for_error(&error) else {
        panic!("expected the typed backpressure effect");
    };
    assert_eq!(depth, 1, "the effect carries the configured capacity");
    assert_eq!(effect_for_error(&error).serialize(), "overloaded depth=1\n");
    host.shutdown();
}
