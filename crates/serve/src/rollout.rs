//! Versioned program store and canary-rollout state for edit
//! transactions.
//!
//! A fleet-wide edit travels as a *transaction*: the editing client
//! opens one against the source version it sees, stages edit batches,
//! and commits. The host compiles the staged source **once**
//! (single-flight, like every other compile), then fans the paper's
//! Fig. 12 UPDATE to every session still on the base version —
//! canaries first. What happens next is a state machine:
//!
//! ```text
//!        tx_edit*              commit
//!   Open ───────▶ Open ──────────────────▶ Committing (compile once,
//!     │                                     canary fan-out)
//!     │ abort                                   │
//!     ▼                             fault spike │ clean
//!   Aborted                ┌────────────────────┤
//!                          ▼                    ▼
//!                     RolledBack       Canary (observation
//!                          ▲            window open)
//!                          │ fault spike        │ window clean
//!                          └────────────────────┤
//!                                               ▼
//!                                           Promoted
//! ```
//!
//! The decision inputs are the sessions' own fault logs — the §4 fault
//! containment machinery doubles as the rollout's health signal. A
//! rollback restores every updated session from the checkpoint its
//! [`alive_live::LiveSession::fleet_update`] parked, replaying the
//! client traffic it answered mid-canary.

use alive_core::{compile, Program};
use alive_live::TxPhase;
use alive_syntax::Diagnostics;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::lock;

/// Canary rollout policy for committed transactions.
#[derive(Debug, Clone, Copy)]
pub struct RolloutConfig {
    /// Percent of the fleet updated in the canary wave (clamped to
    /// 1..=100 at commit time; at least one session is always
    /// canaried when the fleet is non-empty).
    pub canary_percent: u8,
    /// How long (clock µs) a committed transaction watches its
    /// canaries before deciding. Zero decides at commit time from the
    /// canaries' immediate fault deltas alone; non-zero parks the
    /// transaction in the `Canary` phase until a status poll past the
    /// deadline probes the canaries and promotes or rolls back.
    pub observation_window_us: u64,
    /// How many new canary faults trigger auto-rollback.
    pub fault_threshold: u64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            canary_percent: 10,
            observation_window_us: 0,
            fault_threshold: 1,
        }
    }
}

/// One source version's compile, single-flighted: the first caller
/// initializes the cell (compiling outside every map lock), racing
/// same-source callers block on the cell instead of compiling twice,
/// and different-source callers are never blocked at all. Failures are
/// cached too — compilation is deterministic, so the same source
/// yields the same diagnostics.
type ProgramCell = Arc<OnceLock<Result<Arc<Program>, Diagnostics>>>;

/// The result of one [`ProgramStore::lookup`].
pub(crate) struct CompileOutcome {
    /// The shared program, or the version's cached diagnostics.
    pub result: Result<Arc<Program>, Diagnostics>,
    /// Whether this call performed the compile (a cache miss).
    pub compiled_here: bool,
}

/// The host's versioned program store: every distinct source text ever
/// submitted is a *version*, numbered in first-seen order, compiled at
/// most once, and shared by every session running it. This is what
/// makes a fleet UPDATE one compile instead of N, and what lets a
/// transaction name its base version by source text alone.
pub(crate) struct ProgramStore {
    versions: Mutex<Versions>,
    /// Successful compiles performed (cache misses), observable so
    /// tests can pin "compile once per version, not per session".
    compiles: AtomicU64,
}

struct Versions {
    /// Source text → index into `entries`.
    by_source: HashMap<String, usize>,
    /// Version history in first-seen order (failed versions included —
    /// their diagnostics are part of the history too).
    entries: Vec<ProgramCell>,
}

impl ProgramStore {
    pub(crate) fn new() -> Self {
        ProgramStore {
            versions: Mutex::new(Versions {
                by_source: HashMap::new(),
                entries: Vec::new(),
            }),
            compiles: AtomicU64::new(0),
        }
    }

    /// The shared compiled program for `source`, compiling on first
    /// sight. The version map lock is held only to fetch the cell,
    /// never across a compile.
    pub(crate) fn lookup(&self, source: &str) -> CompileOutcome {
        let cell = {
            let mut versions = lock(&self.versions);
            match versions.by_source.get(source) {
                Some(&index) => Arc::clone(&versions.entries[index]),
                None => {
                    let cell: ProgramCell = Arc::new(OnceLock::new());
                    let index = versions.entries.len();
                    versions.by_source.insert(source.to_string(), index);
                    versions.entries.push(Arc::clone(&cell));
                    cell
                }
            }
        };
        let mut compiled_here = false;
        let result = cell.get_or_init(|| {
            compiled_here = true;
            compile(source).map(Arc::new)
        });
        if compiled_here && result.is_ok() {
            self.compiles.fetch_add(1, Ordering::AcqRel);
        }
        CompileOutcome {
            result: match result {
                Ok(program) => Ok(Arc::clone(program)),
                Err(diagnostics) => Err(diagnostics.clone()),
            },
            compiled_here,
        }
    }

    /// Successful compiles performed over the store's lifetime.
    pub(crate) fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Acquire)
    }

    /// Distinct source versions seen (compiled or failed).
    pub(crate) fn version_count(&self) -> usize {
        lock(&self.versions).entries.len()
    }

    /// The 1-based version number of `source`, if it has been seen.
    pub(crate) fn version_of(&self, source: &str) -> Option<u64> {
        lock(&self.versions)
            .by_source
            .get(source)
            .map(|&index| index as u64 + 1)
    }
}

/// Host-side record of one edit transaction.
pub(crate) struct Transaction {
    /// The source version the transaction was opened against; only
    /// sessions still on it are part of the fleet at commit time.
    pub base: Arc<str>,
    /// The base plus every staged batch, applied in order.
    pub staged: String,
    /// Total edits staged so far.
    pub edits: usize,
    pub state: TxState,
}

/// Where a host transaction stands. `Committing` and `Deciding` are
/// in-progress sentinels: the driving thread has released the
/// transaction-map lock while it fans work to the fleet, and concurrent
/// observers must neither re-enter nor see a torn `Canary` payload.
pub(crate) enum TxState {
    Open,
    /// Commit in progress on some thread (compile + canary fan-out).
    Committing,
    /// Canary wave applied clean; the observation window is open.
    Canary(CanaryState),
    /// A past-deadline status poll is probing the canaries.
    Deciding {
        canary: usize,
        fleet: usize,
    },
    /// Terminal: promoted, rolled back, or aborted.
    Closed(TxPhase),
}

/// The parked payload of a transaction in its observation window.
pub(crate) struct CanaryState {
    /// Slot ids running the new version (update applied).
    pub canary: Vec<u64>,
    /// Slot ids awaiting the promote wave.
    pub rest: Vec<u64>,
    pub base: Arc<str>,
    pub source: Arc<str>,
    pub program: Arc<Program>,
    /// Clock µs past which a status poll decides the transaction.
    pub deadline_us: u64,
    /// Sum of canary fault-log totals right after the canary wave; the
    /// window's fault spike is measured against this.
    pub baseline_faults: u64,
    /// Sessions that skipped the canary wave (diverged or busy).
    pub skipped: usize,
    /// Fleet size at commit time (for `TxPhase::Canary` reporting).
    pub fleet: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = r#"
global n : number = 0
page start() {
    init { n := 1; }
    render { boxed { post "n = " ++ n; } }
}
"#;

    #[test]
    fn store_versions_sources_in_first_seen_order() {
        let store = ProgramStore::new();
        let first = store.lookup(APP);
        assert!(first.result.is_ok());
        assert!(first.compiled_here);
        let again = store.lookup(APP);
        assert!(!again.compiled_here, "second lookup answers from cache");
        assert!(Arc::ptr_eq(
            &first.result.expect("compiled"),
            &again.result.expect("cached")
        ));
        assert_eq!(store.version_of(APP), Some(1));
        assert_eq!(store.version_count(), 1);
        assert_eq!(store.compiles(), 1);

        let edited = APP.replace("n = ", "value: ");
        assert!(store.lookup(&edited).result.is_ok());
        assert_eq!(store.version_of(&edited), Some(2));
        assert_eq!(store.version_count(), 2);
        assert_eq!(store.compiles(), 2);
        assert_eq!(store.version_of("never seen"), None);
    }

    #[test]
    fn failed_versions_are_cached_but_not_counted_as_compiles() {
        let store = ProgramStore::new();
        assert!(store.lookup("not a program").result.is_err());
        assert!(store.lookup("not a program").result.is_err());
        assert_eq!(store.compiles(), 0);
        assert_eq!(store.version_count(), 1, "the failure is a version too");
        assert_eq!(store.version_of("not a program"), Some(1));
    }

    #[test]
    fn default_rollout_is_ten_percent_immediate_single_fault() {
        let config = RolloutConfig::default();
        assert_eq!(config.canary_percent, 10);
        assert_eq!(config.observation_window_us, 0);
        assert_eq!(config.fault_threshold, 1);
    }
}
