//! The host's run-queue scheduler: per-worker shards, work-stealing,
//! and condvar parking.
//!
//! The first host shipped with a single `Mutex<Receiver<u64>>` ready
//! queue. That design had a scaling inversion baked in: a worker held
//! the mutex **across** the blocking 20 ms `recv_timeout`, so only one
//! worker could wait for work at a time — every other worker blocked on
//! the mutex, dequeues serialized, and the pool got *slower* as it got
//! wider (`BENCH_multisession.json` measured 4 workers at 0.4× the
//! 1-worker throughput). This module replaces it:
//!
//! * **Sharded run-queues.** One `Mutex<VecDeque<u64>>` per worker;
//!   sessions hash to a home shard by id, so steady-state dequeues
//!   touch per-worker locks, not one global one.
//! * **Work-stealing.** A worker whose own shard is empty scans the
//!   other shards (starting at its right-hand neighbour) and steals the
//!   oldest entry. Any queued session is eventually claimed by *some*
//!   worker — affinity is a fast path, never a trap.
//! * **Condvar parking.** A worker that finds every shard empty parks
//!   on a condvar; enqueuers wake exactly one sleeper. There is no
//!   timeout poll: a parked worker burns no CPU, and wakeup latency is
//!   a notify, not a 20 ms timer.
//! * **Explicit shutdown.** `shutdown()` flips a flag and notifies all
//!   sleepers; workers observe it at the top of their loop and on every
//!   park. No sentinel values in the queues, no disconnect guessing.
//!
//! The lost-sleep race (enqueue lands between a worker's failed scan
//! and its park) is closed with the classic Dekker-style handshake:
//! parkers publish themselves in `sleepers` *before* re-checking
//! `pending`, enqueuers bump `pending` *before* reading `sleepers`, and
//! both sides use `SeqCst` so at least one of them sees the other.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// See `lock` in `lib.rs`: recover from poisoning, which only test
/// builds can cause, because the queues are structurally sound either
/// way.
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A claimed session id, with whether it came from another worker's
/// shard (feeds the `host.steals` counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Claim {
    pub id: u64,
    pub stolen: bool,
}

/// Sharded work-stealing run queues plus the parking lot. One instance
/// per host, shared by every worker and every submitter.
pub(crate) struct Scheduler {
    shards: Vec<Mutex<VecDeque<u64>>>,
    /// Session ids enqueued but not yet claimed, across all shards.
    pending: AtomicUsize,
    /// Workers currently inside `park` (published before their final
    /// `pending` check — the other half of the Dekker handshake).
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Scheduler {
    pub(crate) fn new(workers: usize) -> Self {
        Scheduler {
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Queue a session on its home shard and wake one parked worker if
    /// any. Returns the pending count right after the enqueue (feeds
    /// the ready-queue high-water gauge).
    pub(crate) fn enqueue(&self, id: u64) -> usize {
        let shard = (id as usize) % self.shards.len();
        lock(&self.shards[shard]).push_back(id);
        // `pending` must be visible before `sleepers` is read: a parker
        // that misses this increment is guaranteed to be seen here (or
        // to re-check pending after publishing itself) — SeqCst on both
        // sides makes the two orderings impossible to miss together.
        let len = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the sleep lock orders this notify against the
            // parker: it either runs before the parker's final check
            // (which then sees pending > 0) or after the parker waits
            // (and wakes it).
            let _guard = lock(&self.sleep);
            self.wake.notify_one();
        }
        len
    }

    /// Claim one queued session: the worker's own shard first, then a
    /// steal scan over the other shards starting at its right-hand
    /// neighbour (so steal pressure spreads instead of piling onto
    /// shard 0). `None` means every shard was empty at scan time.
    pub(crate) fn try_claim(&self, worker: usize) -> Option<Claim> {
        let n = self.shards.len();
        let home = worker % n;
        for offset in 0..n {
            let shard = (home + offset) % n;
            let popped = lock(&self.shards[shard]).pop_front();
            if let Some(id) = popped {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(Claim {
                    id,
                    stolen: offset != 0,
                });
            }
        }
        None
    }

    /// Park until an enqueue (or shutdown) arrives. Returns `true` if
    /// the worker actually waited on the condvar (feeds `host.parks`);
    /// `false` means work or shutdown appeared between the caller's
    /// failed scan and the park — the double-check that closes the
    /// lost-sleep window.
    pub(crate) fn park(&self) -> bool {
        let mut guard = lock(&self.sleep);
        // Publish the sleeper *before* the final pending check; pairs
        // with the SeqCst pending-then-sleepers order in `enqueue`.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut waited = false;
        while self.pending.load(Ordering::SeqCst) == 0 && !self.is_shutdown() {
            guard = self
                .wake
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
            waited = true;
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        waited
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip the shutdown flag and wake every parked worker. Queued ids
    /// are abandoned (their tickets report `Stopped`), matching the
    /// host's shutdown contract.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _guard = lock(&self.sleep);
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_shard_first_then_steal() {
        let sched = Scheduler::new(2);
        // id 4 homes on shard 0, id 5 on shard 1.
        assert_eq!(sched.enqueue(4), 1);
        assert_eq!(sched.enqueue(5), 2);
        // Worker 0 claims its own shard without stealing.
        assert_eq!(
            sched.try_claim(0),
            Some(Claim {
                id: 4,
                stolen: false
            })
        );
        // Worker 0's shard is now empty: the next claim is a steal.
        assert_eq!(
            sched.try_claim(0),
            Some(Claim {
                id: 5,
                stolen: true
            })
        );
        assert_eq!(sched.try_claim(0), None);
    }

    #[test]
    fn fifo_within_a_shard() {
        let sched = Scheduler::new(1);
        for id in 0..4 {
            sched.enqueue(id);
        }
        let order: Vec<u64> = (0..4)
            .map(|_| sched.try_claim(0).expect("queued").id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn park_declines_when_work_is_pending_or_shut_down() {
        let sched = Scheduler::new(2);
        sched.enqueue(7);
        // Work pending: park must return without waiting.
        assert!(!sched.park(), "parked over pending work");
        sched.try_claim(1); // drains (steals) the id
        sched.shutdown();
        assert!(!sched.park(), "parked past shutdown");
        assert!(sched.is_shutdown());
    }

    #[test]
    fn parked_worker_is_woken_by_enqueue() {
        use std::sync::Arc;
        let sched = Arc::new(Scheduler::new(1));
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || loop {
                if let Some(claim) = sched.try_claim(0) {
                    return claim.id;
                }
                sched.park();
            })
        };
        // No timing assumption needed: whether the enqueue lands
        // before the park (double-check path) or after (notify path),
        // the worker must claim it.
        sched.enqueue(42);
        assert_eq!(worker.join().expect("worker exits"), 42);
    }

    #[test]
    fn shutdown_wakes_every_sleeper() {
        use std::sync::Arc;
        let sched = Arc::new(Scheduler::new(4));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || {
                    while !sched.is_shutdown() {
                        if sched.try_claim(w).is_none() {
                            sched.park();
                        }
                    }
                })
            })
            .collect();
        sched.shutdown();
        for worker in workers {
            worker.join().expect("worker exits on shutdown");
        }
    }
}
