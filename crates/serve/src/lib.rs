//! `alive-serve` — a concurrent multi-session host.
//!
//! The paper's live loop serves one programmer; the ROADMAP's north
//! star serves many. This crate is the bridge: a [`SessionHost`] owns N
//! [`LiveSession`]s and drives them from a **fixed worker pool**, with
//! three structural guarantees:
//!
//! * **Per-session mailboxes.** Each session has a FIFO command queue
//!   and is drained by at most one worker at a time (an atomic
//!   `scheduled` flag hands the session around), so commands for one
//!   session apply in submission order while different sessions run in
//!   parallel — the actor model, built from `std` parts only. Ready
//!   sessions flow through per-worker sharded run-queues with
//!   work-stealing and condvar parking (see [`scheduler`]), so adding
//!   workers adds throughput instead of contention, and mailboxes have
//!   a high-water capacity: past it, `submit` load-sheds with a typed
//!   [`HostError::Overloaded`] instead of queueing without bound.
//! * **Shared compiled programs.** Source text is compiled once per
//!   version and every session born from it shares the same
//!   `Arc<Program>` — parse, lower, and typecheck are per-version
//!   costs, not per-session costs.
//! * **Snapshot-consistent frame fan-out.** After every command the
//!   worker publishes the session's latest [`FrameSnapshot`] behind an
//!   `Arc`; any number of observers read whole frames (never torn
//!   ones) with a refcount bump, no copying and no session lock.
//!
//! Everything a frontend does travels as [`SessionCommand`] →
//! [`SessionEffect`] — the same total protocol the local frontends use,
//! so hosting changes *where* a session runs, not *what* it answers.

#![warn(missing_docs)]
// Same fault-containment discipline as alive-core: the host must never
// abort the process — a panicking worker would take every session with
// it. Failures are typed (`HostError`) or contained; locks recover from
// poisoning (session state is either taken out of the slot or intact).
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod rollout;
mod scheduler;

use alive_core::system::SystemConfig;
use alive_core::Program;
use alive_live::{
    FleetUpdateOutcome, FrameSnapshot, LiveSession, SessionCommand, SessionEffect, TxPhase,
};
use alive_obs::{Clock, Counter, Gauge, Histogram, MetricsSnapshot, MonotonicClock, Registry};
use alive_syntax::{apply_edits, Diagnostics, EditError, TextEdit};
use rollout::{CanaryState, ProgramStore, RolloutConfig, Transaction, TxState};
use scheduler::Scheduler;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Metric names recorded by the host itself. Per-session names
/// (`session.*`, `system.*`, `frame.*`) are documented by
/// `alive_live::metrics::names` and `alive_core::metrics::names`; the
/// `host.*` names below cover what only the host can see: queueing,
/// worker utilization, and the program cache.
pub mod names {
    /// µs applying one command inside a worker, recorded per session
    /// (histograms add bucket-wise in the host snapshot).
    pub const CMD_LATENCY_US: &str = "host.cmd_latency_us";
    /// High-water mark of one session's mailbox depth (gauges keep the
    /// max in the host snapshot: the deepest mailbox ever seen).
    pub const MAILBOX_DEPTH_HWM: &str = "host.mailbox_depth_hwm";
    /// High-water mark of the ready queue (sessions awaiting a worker).
    pub const READY_QUEUE_HWM: &str = "host.ready_queue_hwm";
    /// Total µs workers spent draining session mailboxes.
    pub const WORKER_BUSY_US: &str = "host.worker_busy_us";
    /// Total µs workers spent without a session to drain:
    /// [`WORKER_PARKED_US`] + [`WORKER_STEAL_SCAN_US`]. Before the
    /// sharded scheduler this counter also absorbed time spent blocked
    /// on the shared ready-queue mutex — contention masquerading as
    /// idleness; now there is no shared receiver to contend on and
    /// idle means idle.
    pub const WORKER_IDLE_US: &str = "host.worker_idle_us";
    /// Total µs workers spent parked on the scheduler condvar (no work
    /// anywhere). The cheap half of idle: a parked worker burns no CPU.
    pub const WORKER_PARKED_US: &str = "host.worker_parked_us";
    /// Total µs workers spent scanning run-queue shards for work
    /// (their own shard plus steal scans, successful or not).
    pub const WORKER_STEAL_SCAN_US: &str = "host.worker_steal_scan_us";
    /// Total µs of worker loop wall time. By construction
    /// `WORKER_BUSY_US + WORKER_PARKED_US + WORKER_STEAL_SCAN_US ==
    /// WORKER_WALL_US` — every worker microsecond is attributed to
    /// exactly one of the three (pinned by the obs invariant suite).
    pub const WORKER_WALL_US: &str = "host.worker_wall_us";
    /// Sessions claimed from another worker's run-queue shard.
    pub const STEALS: &str = "host.steals";
    /// Times a worker actually blocked on the scheduler condvar.
    pub const PARKS: &str = "host.parks";
    /// Submissions refused with [`HostError::Overloaded`] because the
    /// session's mailbox was at its high-water capacity.
    pub const OVERLOADS: &str = "host.overloads";
    /// Program-cache lookups answered without compiling.
    pub const PROGRAM_CACHE_HITS: &str = "host.program_cache.hits";
    /// Program-cache lookups that compiled a new version.
    pub const PROGRAM_CACHE_MISSES: &str = "host.program_cache.misses";
    /// Sessions created over the host's lifetime.
    pub const SESSIONS_CREATED: &str = "host.sessions_created";
    /// Edit transactions opened ([`crate::SessionHost::tx_open`]).
    pub const TX_OPENED: &str = "host.tx.opened";
    /// Edit transactions committed (the canary wave was fanned out).
    pub const TX_COMMITTED: &str = "host.tx.committed";
    /// Edit transactions promoted fleet-wide.
    pub const TX_PROMOTED: &str = "host.tx.promoted";
    /// Transactions auto-rolled-back by a canary fault spike — the
    /// rollout safety net's trip count, gated by the invariant suite.
    pub const ROLLBACKS_TOTAL: &str = "host.rollbacks_total";
    /// Fleet UPDATEs applied to sessions (canary + promote waves).
    pub const ROLLOUT_UPDATES: &str = "host.rollout.updates";
    /// Fleet reverts applied during auto-rollback.
    pub const ROLLOUT_REVERTS: &str = "host.rollout.reverts";
    /// High-water mark of one transaction's canary-wave size.
    pub const ROLLOUT_CANARY_SESSIONS: &str = "host.rollout.canary_sessions";
}

/// Pre-resolved host-level handles. Session-level metrics live in each
/// session's own [`Registry`] (see [`Slot`]); everything here is what
/// only the host can observe.
#[derive(Debug, Clone)]
struct HostMetrics {
    registry: Registry,
    clock: Arc<dyn Clock>,
    ready_queue_hwm: Gauge,
    worker_busy_us: Counter,
    worker_idle_us: Counter,
    worker_parked_us: Counter,
    worker_steal_scan_us: Counter,
    worker_wall_us: Counter,
    steals: Counter,
    parks: Counter,
    overloads: Counter,
    program_cache_hits: Counter,
    program_cache_misses: Counter,
    sessions_created: Counter,
    tx_opened: Counter,
    tx_committed: Counter,
    tx_promoted: Counter,
    rollbacks_total: Counter,
    rollout_updates: Counter,
    rollout_reverts: Counter,
    rollout_canary_sessions: Gauge,
}

impl HostMetrics {
    fn new(clock: Arc<dyn Clock>) -> Self {
        let registry = Registry::with_clock(Arc::clone(&clock));
        HostMetrics {
            ready_queue_hwm: registry.gauge(names::READY_QUEUE_HWM),
            worker_busy_us: registry.counter(names::WORKER_BUSY_US),
            worker_idle_us: registry.counter(names::WORKER_IDLE_US),
            worker_parked_us: registry.counter(names::WORKER_PARKED_US),
            worker_steal_scan_us: registry.counter(names::WORKER_STEAL_SCAN_US),
            worker_wall_us: registry.counter(names::WORKER_WALL_US),
            steals: registry.counter(names::STEALS),
            parks: registry.counter(names::PARKS),
            overloads: registry.counter(names::OVERLOADS),
            program_cache_hits: registry.counter(names::PROGRAM_CACHE_HITS),
            program_cache_misses: registry.counter(names::PROGRAM_CACHE_MISSES),
            sessions_created: registry.counter(names::SESSIONS_CREATED),
            tx_opened: registry.counter(names::TX_OPENED),
            tx_committed: registry.counter(names::TX_COMMITTED),
            tx_promoted: registry.counter(names::TX_PROMOTED),
            rollbacks_total: registry.counter(names::ROLLBACKS_TOTAL),
            rollout_updates: registry.counter(names::ROLLOUT_UPDATES),
            rollout_reverts: registry.counter(names::ROLLOUT_REVERTS),
            rollout_canary_sessions: registry.gauge(names::ROLLOUT_CANARY_SESSIONS),
            clock,
            registry,
        }
    }
}

/// Identifies one hosted session for the lifetime of the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Host configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Worker threads draining session mailboxes. Zero is clamped to 1.
    pub workers: usize,
    /// System configuration handed to every hosted session.
    pub system: SystemConfig,
    /// Whether hosted sessions enable the §5 render memo cache.
    pub memo: bool,
    /// Whether the host records metrics (host-level and per-session).
    /// Off, no [`Registry`] exists anywhere: sessions run exactly as
    /// before this field did — the bench's baseline arm.
    pub metrics: bool,
    /// Mailbox high-water capacity: a `submit` that would grow a
    /// session's mailbox past this depth is refused with
    /// [`HostError::Overloaded`] instead of queueing — the
    /// load-shedding contract a network transport needs. The default
    /// (1024) is far above anything a well-behaved client queues; zero
    /// is clamped to 1 (a mailbox that admits nothing is not a host).
    pub mailbox_capacity: usize,
    /// Canary rollout policy for committed edit transactions.
    pub rollout: RolloutConfig,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            system: SystemConfig::default(),
            memo: false,
            metrics: true,
            mailbox_capacity: 1024,
            rollout: RolloutConfig::default(),
        }
    }
}

impl HostConfig {
    /// A config with an explicit worker count (other fields default).
    pub fn with_workers(workers: usize) -> Self {
        HostConfig {
            workers,
            ..HostConfig::default()
        }
    }
}

/// Errors surfaced by host entry points.
#[derive(Debug)]
pub enum HostError {
    /// The session id is unknown (never created, or removed).
    UnknownSession(SessionId),
    /// The session's source failed to compile.
    Compile(Diagnostics),
    /// The host's workers are gone (shut down mid-request).
    Stopped,
    /// The session's mailbox is at its high-water capacity; the
    /// command was refused, not queued. The typed load-shedding
    /// response: a transport maps this to "try again later" without
    /// the host ever queueing without bound.
    Overloaded {
        /// The overloaded session.
        session: SessionId,
        /// The mailbox depth at refusal time (== the configured
        /// [`HostConfig::mailbox_capacity`]).
        depth: usize,
    },
    /// A bounded wait ([`EffectTicket::wait_timeout`]) elapsed before
    /// the command was applied. The command is still queued and still
    /// runs; only the wait gave up.
    Timeout,
    /// The edit-transaction id is unknown (never opened on this host).
    UnknownTransaction(u64),
    /// The edit transaction has already been decided (promoted, rolled
    /// back, or aborted) or is mid-commit on another thread.
    TransactionClosed(u64),
    /// A staged edit batch is malformed against the staged text.
    Edit(EditError),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::UnknownSession(id) => write!(f, "unknown {id}"),
            HostError::Compile(ds) => write!(f, "source does not compile:\n{ds}"),
            HostError::Stopped => f.write_str("host is stopped"),
            HostError::Overloaded { session, depth } => {
                write!(f, "{session} overloaded: mailbox at capacity ({depth})")
            }
            HostError::Timeout => f.write_str("timed out waiting for effects"),
            HostError::UnknownTransaction(tx) => write!(f, "unknown transaction tx#{tx}"),
            HostError::TransactionClosed(tx) => {
                write!(f, "transaction tx#{tx} is not open")
            }
            HostError::Edit(e) => write!(f, "malformed edit batch: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

/// Lock recovering from poisoning: a worker that panicked (only
/// possible in test builds) either took the session out of its slot or
/// left it intact — the shared maps and queues themselves are always
/// structurally sound, so continuing is safe and required by the
/// no-panic discipline.
pub(crate) fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One client command in flight, with its reply channel.
struct Envelope {
    command: SessionCommand,
    reply: Sender<Vec<SessionEffect>>,
}

/// A host-internal fleet operation, delivered through the same mailbox
/// as client commands so it serializes with them per session (a fleet
/// UPDATE lands between client commands, never inside one). Fleet items
/// bypass the mailbox capacity: they are host-originated and bounded
/// (at most a few per session per transaction phase), so shedding them
/// would only wedge a rollout that backpressure already slowed.
enum FleetOp {
    /// Apply a host-compiled program as a Fig. 12 UPDATE (parks a
    /// checkpoint in the session for the later promote/revert).
    Update {
        tx: u64,
        base: Arc<str>,
        source: Arc<str>,
        program: Arc<Program>,
    },
    /// Restore the checkpoint parked by `Update` (auto-rollback).
    Revert { tx: u64 },
    /// Drop the checkpoint parked by `Update` (the version stuck).
    Promote { tx: u64 },
    /// Read the session's fault-log total (canary health probe).
    Probe,
    /// Run arbitrary instrumentation against the session, in mailbox
    /// order. Test-only reachability (see `SessionHost::inspect_session`).
    Inspect(Box<dyn FnOnce(&mut LiveSession) + Send>),
}

/// The worker's answer to one [`FleetOp`].
enum FleetReply {
    Updated {
        outcome: FleetUpdateOutcome,
        /// Fault-log totals around the update: the immediate fault
        /// delta and the baseline for the observation window.
        faults_before: u64,
        faults_after: u64,
    },
    Reverted(bool),
    Promoted,
    Faults(u64),
    Inspected,
}

struct FleetEnvelope {
    op: FleetOp,
    reply: Sender<FleetReply>,
}

/// Tally of one fleet UPDATE wave.
struct UpdateWave {
    /// Sessions the update applied to (checkpoint parked).
    applied: Vec<u64>,
    /// Sum of per-session fault-log growth across the wave — the
    /// immediate health signal a zero-window commit decides on.
    fault_delta: u64,
    /// Sum of post-update fault-log totals — the baseline an
    /// observation window measures its spike against.
    faults_after: u64,
    /// Sessions skipped (diverged from the base version, busy with
    /// another transaction's checkpoint, or removed mid-wave).
    skipped: usize,
}

/// The [`SessionEffect`] a transport should answer with when the host
/// refuses a submission: [`HostError::Overloaded`] becomes the typed
/// [`SessionEffect::Overloaded`] backpressure signal (carrying the
/// mailbox depth, so clients can size their retry behaviour); every
/// other error is a [`SessionEffect::Refused`] with prose.
pub fn effect_for_error(error: &HostError) -> SessionEffect {
    match error {
        HostError::Overloaded { depth, .. } => SessionEffect::Overloaded {
            depth: u64::try_from(*depth).unwrap_or(u64::MAX),
        },
        other => SessionEffect::Refused(other.to_string()),
    }
}

/// Everything a session's mailbox can hold.
enum WorkItem {
    Client(Envelope),
    Fleet(FleetEnvelope),
}

/// Per-session state: the mailbox, the session itself (present when no
/// worker holds it), the scheduling flag, and the published frame.
struct Slot {
    mailbox: Mutex<VecDeque<WorkItem>>,
    /// `Some` while parked; taken by the worker that drains the mailbox.
    session: Mutex<Option<LiveSession>>,
    /// True while the session sits in the ready queue or a worker's
    /// hands. At most one worker drains a session at a time, which is
    /// what makes the mailbox a total order per session.
    scheduled: AtomicBool,
    /// The most recent settled frame, whole-or-nothing for observers.
    latest: Mutex<Option<Arc<FrameSnapshot>>>,
    /// The session's current source version, kept in sync by the
    /// draining worker after every command. This is the host's view of
    /// "which version is this session on" — what transaction fleet
    /// membership is decided from — without taking the session itself.
    source: Mutex<Arc<str>>,
    /// The session's registry — the same one its `LiveSession` records
    /// into, so `SessionCommand::Metrics` and host snapshots agree.
    /// `None` when the host runs with metrics disabled.
    registry: Option<Registry>,
    /// Pre-resolved per-session handles (see [`names`]).
    cmd_latency: Option<Histogram>,
    mailbox_depth_hwm: Option<Gauge>,
}

impl Slot {
    /// Try to transition unscheduled → scheduled; true on success.
    fn try_schedule(&self) -> bool {
        self.scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// A scripted-interleaving hook for the scheduling protocol's race
/// windows, called inside `drain_session` between the final mailbox
/// pop and the `scheduled` release. Tests park a drain here to land a
/// submit exactly in the lost-wakeup window — deterministically, with
/// rendezvous channels instead of sleeps.
type DrainParkHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Keep the slot's source-version tag in sync with the session: client
/// edits, undo/redo, and fleet updates/reverts all move it. Runs
/// *before* the reply for the item is sent, so a caller that acts on
/// the reply (opening a transaction right after an edit or a revert)
/// never reads a stale version tag.
fn sync_source(slot: &Slot, session: &LiveSession) {
    let mut source = lock(&slot.source);
    if **source != *session.source() {
        *source = Arc::from(session.source());
    }
}

struct HostInner {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    /// The versioned program store: one single-flight compile per
    /// distinct source text, shared by every session on that version.
    store: ProgramStore,
    /// Open and decided edit transactions, by id.
    txs: Mutex<HashMap<u64, Transaction>>,
    next_tx: AtomicU64,
    /// The host's time base for rollout observation windows — the
    /// metrics clock when metrics are on (deterministic under
    /// [`alive_obs::ManualClock`]), monotonic wall time otherwise.
    clock: Arc<dyn Clock>,
    /// Sharded work-stealing run queues; replaces the old
    /// `Mutex<Receiver<u64>>` whose held-across-`recv_timeout` lock
    /// serialized every worker.
    scheduler: Scheduler,
    config: HostConfig,
    next_id: AtomicU64,
    /// Host-level metric handles; `None` disables recording everywhere.
    metrics: Option<HostMetrics>,
    /// See [`DrainParkHook`]; `None` outside protocol tests.
    drain_park_hook: Mutex<Option<DrainParkHook>>,
}

impl HostInner {
    fn slot(&self, id: u64) -> Option<Arc<Slot>> {
        lock(&self.slots).get(&id).cloned()
    }

    /// Send a session to the scheduler, tracking the run-queue length
    /// high-water mark.
    fn enqueue_ready(&self, id: u64) {
        let len = self.scheduler.enqueue(id);
        if let Some(metrics) = &self.metrics {
            metrics
                .ready_queue_hwm
                .observe_max(i64::try_from(len).unwrap_or(i64::MAX));
        }
    }

    /// Drain one session's mailbox to empty, then park the session.
    fn drain_session(&self, id: u64) {
        let Some(slot) = self.slot(id) else { return };
        let Some(mut session) = lock(&slot.session).take() else {
            // Unreachable by the scheduling protocol; recover by
            // unscheduling so the slot cannot wedge.
            slot.scheduled.store(false, Ordering::Release);
            return;
        };
        let clock = slot.registry.as_ref().map(Registry::clock);
        loop {
            let item = lock(&slot.mailbox).pop_front();
            let Some(item) = item else { break };
            match item {
                WorkItem::Client(envelope) => {
                    let started = clock.as_ref().map(|clock| clock.now_us());
                    let effects = session.apply(envelope.command);
                    if let (Some(latency), Some(clock), Some(started)) =
                        (&slot.cmd_latency, &clock, started)
                    {
                        latency.record(clock.now_us().saturating_sub(started));
                    }
                    // Publish the last frame among the effects: observers
                    // see whole settled frames, in per-session order.
                    if let Some(frame) = effects.iter().rev().find_map(|effect| match effect {
                        SessionEffect::Frame(frame) => Some(frame.clone()),
                        _ => None,
                    }) {
                        *lock(&slot.latest) = Some(Arc::new(frame));
                    }
                    sync_source(&slot, &session);
                    // The submitter may have dropped its ticket; fine.
                    let _ = envelope.reply.send(effects);
                }
                WorkItem::Fleet(envelope) => {
                    let reply = match envelope.op {
                        FleetOp::Update {
                            tx,
                            base,
                            source,
                            program,
                        } => {
                            let faults_before = session.fault_log().total();
                            let outcome = session.fleet_update(tx, &base, &source, program);
                            let faults_after = session.fault_log().total();
                            *lock(&slot.latest) = Some(Arc::new(session.frame_snapshot()));
                            FleetReply::Updated {
                                outcome,
                                faults_before,
                                faults_after,
                            }
                        }
                        FleetOp::Revert { tx } => {
                            let reverted = session.fleet_revert(tx);
                            if reverted {
                                *lock(&slot.latest) = Some(Arc::new(session.frame_snapshot()));
                            }
                            FleetReply::Reverted(reverted)
                        }
                        FleetOp::Promote { tx } => {
                            let _ = session.fleet_promote(tx);
                            FleetReply::Promoted
                        }
                        FleetOp::Probe => FleetReply::Faults(session.fault_log().total()),
                        FleetOp::Inspect(run) => {
                            run(&mut session);
                            FleetReply::Inspected
                        }
                    };
                    sync_source(&slot, &session);
                    // The transaction driver may have given up; fine.
                    let _ = envelope.reply.send(reply);
                }
            }
        }
        *lock(&slot.session) = Some(session);
        // Scripted-interleaving tests pause here: the mailbox has been
        // drained to empty but `scheduled` is still true, so a submit
        // landing now loses the CAS and must be rescued by the re-check
        // below.
        let hook = lock(&self.drain_park_hook).clone();
        if let Some(hook) = hook {
            hook(id);
        }
        slot.scheduled.store(false, Ordering::Release);
        // Close the lost-wakeup window: a submit that landed between
        // the final pop and the flag store saw `scheduled == true` and
        // did not enqueue — re-enqueue on its behalf.
        if !lock(&slot.mailbox).is_empty() && slot.try_schedule() {
            self.enqueue_ready(id);
        }
    }
}

/// The worker loop: claim (own shard, then steal), drain, park when
/// the whole run queue is dry. With metrics on, every microsecond of
/// the loop is attributed to exactly one of busy / steal-scan / parked
/// using shared timestamps, so `busy + parked + steal_scan == wall`
/// holds as an identity, not an approximation — contending for work
/// can no longer masquerade as idleness because there is no shared
/// receiver lock to contend on.
fn worker_loop(inner: &HostInner, worker: usize) {
    let clock = inner.metrics.as_ref().map(|m| Arc::clone(&m.clock));
    loop {
        if inner.scheduler.is_shutdown() {
            return;
        }
        let scan_started = clock.as_ref().map(|clock| clock.now_us());
        let claim = inner.scheduler.try_claim(worker);
        let scan_ended = clock.as_ref().map(|clock| clock.now_us());
        if let (Some(metrics), Some(t0), Some(t1)) = (&inner.metrics, scan_started, scan_ended) {
            let scan_us = t1.saturating_sub(t0);
            metrics.worker_steal_scan_us.add(scan_us);
            metrics.worker_idle_us.add(scan_us);
        }
        match claim {
            Some(claim) => {
                if claim.stolen {
                    if let Some(metrics) = &inner.metrics {
                        metrics.steals.inc();
                    }
                }
                inner.drain_session(claim.id);
                if let (Some(metrics), Some(clock), Some(t0), Some(t1)) =
                    (&inner.metrics, &clock, scan_started, scan_ended)
                {
                    let t2 = clock.now_us();
                    metrics.worker_busy_us.add(t2.saturating_sub(t1));
                    metrics.worker_wall_us.add(t2.saturating_sub(t0));
                }
            }
            None => {
                let waited = inner.scheduler.park();
                if let (Some(metrics), Some(clock), Some(t0), Some(t1)) =
                    (&inner.metrics, &clock, scan_started, scan_ended)
                {
                    let t2 = clock.now_us();
                    let parked_us = t2.saturating_sub(t1);
                    metrics.worker_parked_us.add(parked_us);
                    metrics.worker_idle_us.add(parked_us);
                    metrics.worker_wall_us.add(t2.saturating_sub(t0));
                }
                if waited {
                    if let Some(metrics) = &inner.metrics {
                        metrics.parks.inc();
                    }
                }
            }
        }
    }
}

/// A pending reply to a submitted command. Dropping it abandons the
/// reply (the command still runs).
#[derive(Debug)]
pub struct EffectTicket {
    rx: Receiver<Vec<SessionEffect>>,
}

impl EffectTicket {
    /// Block until the command has been applied and return its effects.
    ///
    /// # Errors
    ///
    /// [`HostError::Stopped`] if the host shut down (or the session was
    /// removed) before the command ran.
    pub fn wait(self) -> Result<Vec<SessionEffect>, HostError> {
        self.rx.recv().map_err(|_| HostError::Stopped)
    }

    /// Like [`EffectTicket::wait`], but give up after `timeout`. On
    /// [`HostError::Timeout`] the command is still queued and will
    /// still run; only this wait abandoned it. Lets transports bound
    /// their worst-case stall on a wedged session.
    ///
    /// # Errors
    ///
    /// [`HostError::Timeout`] if the deadline passed first;
    /// [`HostError::Stopped`] if the host shut down (or the session
    /// was removed) before the command ran.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<SessionEffect>, HostError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => HostError::Timeout,
            RecvTimeoutError::Disconnected => HostError::Stopped,
        })
    }
}

/// A concurrent multi-session host: N live sessions behind per-session
/// mailboxes, drained by a fixed worker pool. See the crate docs for
/// the scheduling protocol.
pub struct SessionHost {
    inner: Arc<HostInner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for SessionHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHost")
            .field("workers", &self.workers.len())
            .field("sessions", &self.session_count())
            .finish()
    }
}

impl SessionHost {
    /// Start a host with the given configuration (spawns the workers).
    /// When `config.metrics` is on, metrics run against real monotonic
    /// time; see [`SessionHost::with_clock`] for deterministic tests.
    pub fn new(config: HostConfig) -> Self {
        let clock: Option<Arc<dyn Clock>> = config
            .metrics
            .then(|| Arc::new(MonotonicClock::new()) as Arc<dyn Clock>);
        SessionHost::start(config, clock)
    }

    /// Start a host whose metrics (host-level and per-session) all time
    /// against `clock` — an [`alive_obs::ManualClock`] with an auto-step
    /// makes every duration and snapshot deterministic. Implies
    /// `config.metrics = true`.
    pub fn with_clock(config: HostConfig, clock: Arc<dyn Clock>) -> Self {
        SessionHost::start(
            HostConfig {
                metrics: true,
                ..config
            },
            Some(clock),
        )
    }

    fn start(config: HostConfig, clock: Option<Arc<dyn Clock>>) -> Self {
        let workers = config.workers.max(1);
        let mailbox_capacity = config.mailbox_capacity.max(1);
        let metrics = clock.map(HostMetrics::new);
        // The rollout clock: share the metrics clock when there is one
        // (deterministic under ManualClock), fall back to wall time.
        let clock = metrics
            .as_ref()
            .map(|metrics| Arc::clone(&metrics.clock))
            .unwrap_or_else(|| Arc::new(MonotonicClock::new()) as Arc<dyn Clock>);
        let inner = Arc::new(HostInner {
            slots: Mutex::new(HashMap::new()),
            store: ProgramStore::new(),
            txs: Mutex::new(HashMap::new()),
            next_tx: AtomicU64::new(1),
            clock,
            scheduler: Scheduler::new(workers),
            config: HostConfig {
                workers,
                mailbox_capacity,
                ..config
            },
            next_id: AtomicU64::new(1),
            metrics,
            drain_park_hook: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, worker))
            })
            .collect();
        SessionHost {
            inner,
            workers: handles,
        }
    }

    /// Start a host with default configuration (one worker per
    /// available CPU).
    pub fn with_default_config() -> Self {
        SessionHost::new(HostConfig::default())
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The number of live sessions.
    pub fn session_count(&self) -> usize {
        lock(&self.inner.slots).len()
    }

    /// How many distinct source versions have been compiled. With K
    /// sessions on one source this stays 1 — the host's whole point.
    pub fn programs_compiled(&self) -> u64 {
        self.inner.store.compiles()
    }

    /// How many distinct source versions the host has seen (compiled
    /// or failed) — the program store's version history length. Every
    /// committed transaction adds exactly one.
    pub fn version_count(&self) -> usize {
        self.inner.store.version_count()
    }

    /// The 1-based version number of `source` in the host's program
    /// store, if that exact text has been seen.
    pub fn version_of(&self, source: &str) -> Option<u64> {
        self.inner.store.version_of(source)
    }

    /// The shared compiled program for `source`, compiling it on first
    /// sight and answering from the per-version cache afterwards.
    ///
    /// The compile is **single-flight**: concurrent callers with the
    /// same new source produce exactly one compile (the losers block
    /// on the winner's cell, not on a recompile), so
    /// [`SessionHost::programs_compiled`] is one per version even
    /// under a thundering herd of `create_session` calls. Callers with
    /// *different* sources never block each other — the map lock is
    /// held only to fetch the cell, never across a compile.
    ///
    /// # Errors
    ///
    /// [`HostError::Compile`] with the program's diagnostics.
    pub fn program_for(&self, source: &str) -> Result<Arc<Program>, HostError> {
        let outcome = self.inner.store.lookup(source);
        match outcome.result {
            Ok(program) => {
                if let Some(metrics) = &self.inner.metrics {
                    // A racing same-source caller that lost the init is
                    // a hit: it waited for the winner, it did not
                    // compile.
                    if outcome.compiled_here {
                        metrics.program_cache_misses.inc();
                    } else {
                        metrics.program_cache_hits.inc();
                    }
                }
                Ok(program)
            }
            Err(diagnostics) => Err(HostError::Compile(diagnostics)),
        }
    }

    /// Create a session from source text, sharing the compiled program
    /// with every other session on the same version. The session is
    /// settled to its first frame before the id is returned, so
    /// [`SessionHost::latest_frame`] is immediately meaningful.
    ///
    /// # Errors
    ///
    /// [`HostError::Compile`] if the source does not compile.
    pub fn create_session(&self, source: &str) -> Result<SessionId, HostError> {
        let program = self.program_for(source)?;
        // Each session gets its own registry on the host's clock, so
        // per-session snapshots are independent and the host snapshot
        // is their merge — counters sum exactly across sessions.
        let registry = self
            .inner
            .metrics
            .as_ref()
            .map(|metrics| Registry::with_clock(Arc::clone(&metrics.clock)));
        let mut session = LiveSession::with_shared_program_observed(
            source,
            program,
            self.inner.config.system,
            self.inner.config.memo,
            registry.as_ref(),
        );
        if let Some(metrics) = &self.inner.metrics {
            metrics.sessions_created.inc();
        }
        let first = Arc::new(session.frame_snapshot());
        let id = self.inner.next_id.fetch_add(1, Ordering::AcqRel);
        let slot = Arc::new(Slot {
            mailbox: Mutex::new(VecDeque::new()),
            session: Mutex::new(Some(session)),
            scheduled: AtomicBool::new(false),
            latest: Mutex::new(Some(first)),
            source: Mutex::new(Arc::from(source)),
            cmd_latency: registry
                .as_ref()
                .map(|registry| registry.histogram(names::CMD_LATENCY_US)),
            mailbox_depth_hwm: registry
                .as_ref()
                .map(|registry| registry.gauge(names::MAILBOX_DEPTH_HWM)),
            registry,
        });
        lock(&self.inner.slots).insert(id, slot);
        Ok(SessionId(id))
    }

    /// Remove a session. Commands still queued are abandoned (their
    /// tickets report [`HostError::Stopped`]); a worker currently
    /// holding the session finishes its drain first.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live.
    pub fn remove_session(&self, id: SessionId) -> Result<(), HostError> {
        lock(&self.inner.slots)
            .remove(&id.0)
            .map(|_| ())
            .ok_or(HostError::UnknownSession(id))
    }

    /// Queue a command on a session's mailbox and return a ticket for
    /// its effects. Commands submitted to the same session apply in
    /// submission order; different sessions proceed in parallel.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live;
    /// [`HostError::Overloaded`] if the session's mailbox is at its
    /// high-water capacity ([`HostConfig::mailbox_capacity`]) — the
    /// command is refused, not queued, so a slow session sheds load
    /// instead of growing an unbounded backlog.
    pub fn submit(
        &self,
        id: SessionId,
        command: SessionCommand,
    ) -> Result<EffectTicket, HostError> {
        // Transaction commands are host-level: they drive the fleet
        // state machine, not one session, so they are answered here
        // (synchronously — a commit with a zero observation window
        // runs the whole canary cycle before returning) instead of
        // being queued on the origin's mailbox.
        if matches!(
            command,
            SessionCommand::TxOpen
                | SessionCommand::TxEdit { .. }
                | SessionCommand::TxCommit(_)
                | SessionCommand::TxAbort(_)
                | SessionCommand::TxStatus(_)
        ) {
            let effects = self.handle_tx_command(id, command)?;
            let (reply, rx) = mpsc::channel();
            let _ = reply.send(effects);
            return Ok(EffectTicket { rx });
        }
        let slot = self.inner.slot(id.0).ok_or(HostError::UnknownSession(id))?;
        let (reply, rx) = mpsc::channel();
        {
            let mut mailbox = lock(&slot.mailbox);
            if mailbox.len() >= self.inner.config.mailbox_capacity {
                drop(mailbox);
                if let Some(metrics) = &self.inner.metrics {
                    metrics.overloads.inc();
                }
                return Err(HostError::Overloaded {
                    session: id,
                    depth: self.inner.config.mailbox_capacity,
                });
            }
            mailbox.push_back(WorkItem::Client(Envelope { command, reply }));
            if let Some(gauge) = &slot.mailbox_depth_hwm {
                gauge.observe_max(i64::try_from(mailbox.len()).unwrap_or(i64::MAX));
            }
        }
        if slot.try_schedule() {
            self.inner.enqueue_ready(id.0);
        }
        Ok(EffectTicket { rx })
    }

    /// Submit a command and block for its effects — the synchronous
    /// convenience used by frontends that drive one session.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] / [`HostError::Stopped`].
    pub fn apply(
        &self,
        id: SessionId,
        command: SessionCommand,
    ) -> Result<Vec<SessionEffect>, HostError> {
        self.submit(id, command)?.wait()
    }

    /// The session's most recently published frame — the fan-out path.
    /// The returned `Arc` is a consistent whole-frame snapshot: workers
    /// publish frames atomically after each command, so observers never
    /// see a torn or mid-settle view, and a thousand observers share
    /// one allocation.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live.
    pub fn latest_frame(&self, id: SessionId) -> Result<Option<Arc<FrameSnapshot>>, HostError> {
        let slot = self.inner.slot(id.0).ok_or(HostError::UnknownSession(id))?;
        let frame = lock(&slot.latest).clone();
        Ok(frame)
    }

    // -----------------------------------------------------------------
    // Edit transactions: versioned, fleet-wide UPDATE with a staged
    // canary rollout (see the `rollout` module docs for the state
    // machine). All five entry points are also reachable over the wire
    // as `SessionCommand::Tx*` via `submit`.
    // -----------------------------------------------------------------

    /// Open an edit transaction against `origin`'s current source
    /// version. Edits staged on it address that version; at commit
    /// time every session still on it is the transaction's fleet.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if `origin` is not live.
    pub fn tx_open(&self, origin: SessionId) -> Result<u64, HostError> {
        let slot = self
            .inner
            .slot(origin.0)
            .ok_or(HostError::UnknownSession(origin))?;
        let base = lock(&slot.source).clone();
        let tx = self.inner.next_tx.fetch_add(1, Ordering::AcqRel);
        lock(&self.inner.txs).insert(
            tx,
            Transaction {
                staged: base.to_string(),
                base,
                edits: 0,
                state: TxState::Open,
            },
        );
        if let Some(metrics) = &self.inner.metrics {
            metrics.tx_opened.inc();
        }
        Ok(tx)
    }

    /// Stage one batch of span-addressed edits on an open transaction.
    /// Spans address the staged text (base + every batch staged so
    /// far); no session sees anything until commit. Returns the total
    /// number of edits staged.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownTransaction`] /
    /// [`HostError::TransactionClosed`] / [`HostError::Edit`] (the
    /// staged text is unchanged on error).
    pub fn tx_edit(&self, tx: u64, edits: &[TextEdit]) -> Result<usize, HostError> {
        let mut txs = lock(&self.inner.txs);
        let transaction = txs.get_mut(&tx).ok_or(HostError::UnknownTransaction(tx))?;
        if !matches!(transaction.state, TxState::Open) {
            return Err(HostError::TransactionClosed(tx));
        }
        transaction.staged = apply_edits(&transaction.staged, edits).map_err(HostError::Edit)?;
        transaction.edits += edits.len();
        Ok(transaction.edits)
    }

    /// Abort an open transaction, discarding its staged edits. No
    /// session ever saw them.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownTransaction`] /
    /// [`HostError::TransactionClosed`].
    pub fn tx_abort(&self, tx: u64) -> Result<(), HostError> {
        let mut txs = lock(&self.inner.txs);
        let transaction = txs.get_mut(&tx).ok_or(HostError::UnknownTransaction(tx))?;
        if !matches!(transaction.state, TxState::Open) {
            return Err(HostError::TransactionClosed(tx));
        }
        transaction.state = TxState::Closed(TxPhase::Aborted);
        Ok(())
    }

    /// Commit a transaction: compile the staged source **once**
    /// (single-flight through the program store), fan the paper's
    /// Fig. 12 UPDATE to a canary slice of the fleet, and decide.
    ///
    /// With a zero observation window the decision is immediate: if
    /// the canaries' fault logs grew by at least the configured
    /// threshold, every updated session is rolled back to its
    /// pre-transaction checkpoint and the transaction closes
    /// [`TxPhase::RolledBack`]; otherwise the rest of the fleet is
    /// updated and the transaction closes [`TxPhase::Promoted`]. With
    /// a non-zero window the transaction parks in [`TxPhase::Canary`]
    /// — client traffic keeps flowing to the canaries — until a
    /// [`SessionHost::tx_status`] poll past the deadline probes their
    /// fault logs and decides the same way.
    ///
    /// Sessions that edited away from the base version are skipped,
    /// not updated (`TxPhase::Promoted { skipped, .. }`). Faults in
    /// the *promote* wave never roll the transaction back — the canary
    /// protects the fleet; per-session §4 containment handles the
    /// stragglers.
    ///
    /// # Errors
    ///
    /// [`HostError::Compile`] if the staged source does not compile —
    /// the transaction stays open so the client can stage a fix.
    /// [`HostError::UnknownTransaction`] /
    /// [`HostError::TransactionClosed`].
    pub fn tx_commit(&self, tx: u64) -> Result<TxPhase, HostError> {
        let (base, staged) = {
            let mut txs = lock(&self.inner.txs);
            let transaction = txs.get_mut(&tx).ok_or(HostError::UnknownTransaction(tx))?;
            if !matches!(transaction.state, TxState::Open) {
                return Err(HostError::TransactionClosed(tx));
            }
            transaction.state = TxState::Committing;
            (Arc::clone(&transaction.base), transaction.staged.clone())
        };
        let program = match self.program_for(&staged) {
            Ok(program) => program,
            Err(error) => {
                // Back to Open: a compile failure decides nothing.
                if let Some(transaction) = lock(&self.inner.txs).get_mut(&tx) {
                    transaction.state = TxState::Open;
                }
                return Err(error);
            }
        };
        if let Some(metrics) = &self.inner.metrics {
            metrics.tx_committed.inc();
        }
        let source: Arc<str> = Arc::from(staged.as_str());
        // The fleet: every session still on the base version, in id
        // order (deterministic canary choice).
        let mut fleet: Vec<u64> = lock(&self.inner.slots)
            .iter()
            .filter(|(_, slot)| **lock(&slot.source) == *base)
            .map(|(&id, _)| id)
            .collect();
        fleet.sort_unstable();
        if fleet.is_empty() {
            let phase = TxPhase::Promoted {
                updated: 0,
                skipped: 0,
            };
            self.close_tx(tx, phase.clone());
            return Ok(phase);
        }
        let config = self.inner.config.rollout;
        let percent = usize::from(config.canary_percent.clamp(1, 100));
        let canary_n = (fleet.len() * percent).div_ceil(100).clamp(1, fleet.len());
        let canary_ids: Vec<u64> = fleet[..canary_n].to_vec();
        let rest: Vec<u64> = fleet[canary_n..].to_vec();
        if let Some(metrics) = &self.inner.metrics {
            metrics
                .rollout_canary_sessions
                .observe_max(i64::try_from(canary_n).unwrap_or(i64::MAX));
        }
        let wave = self.update_wave(&canary_ids, tx, &base, &source, &program);
        let phase = if wave.fault_delta >= config.fault_threshold {
            self.rollback(
                tx,
                &wave.applied,
                format!(
                    "canary fault spike: {} new fault(s) across {} canary session(s)",
                    wave.fault_delta,
                    wave.applied.len()
                ),
            )
        } else if config.observation_window_us == 0 {
            self.promote(
                tx,
                &wave.applied,
                &rest,
                &base,
                &source,
                &program,
                wave.skipped,
            )
        } else {
            let canary_count = wave.applied.len();
            let fleet_count = fleet.len();
            let state = TxState::Canary(CanaryState {
                canary: wave.applied,
                rest,
                base,
                source,
                program,
                deadline_us: self
                    .inner
                    .clock
                    .now_us()
                    .saturating_add(config.observation_window_us),
                baseline_faults: wave.faults_after,
                skipped: wave.skipped,
                fleet: fleet_count,
            });
            if let Some(transaction) = lock(&self.inner.txs).get_mut(&tx) {
                transaction.state = state;
            }
            return Ok(TxPhase::Canary {
                canary: canary_count,
                fleet: fleet_count,
            });
        };
        self.close_tx(tx, phase.clone());
        Ok(phase)
    }

    /// Where a transaction stands — and, for one parked in its canary
    /// observation window whose deadline has passed, the poll that
    /// decides it: probe every canary's fault log; a fault spike at or
    /// past the threshold rolls the whole fleet's update back,
    /// otherwise the remaining sessions are updated and the
    /// transaction promotes.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownTransaction`].
    pub fn tx_status(&self, tx: u64) -> Result<TxPhase, HostError> {
        let pending = {
            let mut txs = lock(&self.inner.txs);
            let transaction = txs.get_mut(&tx).ok_or(HostError::UnknownTransaction(tx))?;
            match &transaction.state {
                TxState::Open | TxState::Committing => {
                    return Ok(TxPhase::Open {
                        edits: transaction.edits,
                    })
                }
                TxState::Deciding { canary, fleet } => {
                    return Ok(TxPhase::Canary {
                        canary: *canary,
                        fleet: *fleet,
                    })
                }
                TxState::Closed(phase) => return Ok(phase.clone()),
                TxState::Canary(canary) if self.inner.clock.now_us() < canary.deadline_us => {
                    return Ok(TxPhase::Canary {
                        canary: canary.canary.len(),
                        fleet: canary.fleet,
                    })
                }
                TxState::Canary(_) => {}
            }
            // Deadline passed: take the payload, leave a sentinel so a
            // racing poll neither re-decides nor sees a torn state.
            match std::mem::replace(&mut transaction.state, TxState::Committing) {
                TxState::Canary(canary) => {
                    transaction.state = TxState::Deciding {
                        canary: canary.canary.len(),
                        fleet: canary.fleet,
                    };
                    canary
                }
                other => {
                    // Unreachable (the state was Canary under the same
                    // lock); restore and report conservatively.
                    transaction.state = other;
                    return Ok(TxPhase::Open {
                        edits: transaction.edits,
                    });
                }
            }
        };
        // Probe the canaries' fault logs over their mailboxes: the
        // probe serializes after any in-flight client traffic.
        let mut fault_total = 0u64;
        for &id in &pending.canary {
            if let Some(rx) = self.submit_fleet(id, FleetOp::Probe) {
                if let Ok(FleetReply::Faults(total)) = rx.recv() {
                    fault_total += total;
                }
            }
        }
        let config = self.inner.config.rollout;
        let delta = fault_total.saturating_sub(pending.baseline_faults);
        let phase = if delta >= config.fault_threshold {
            self.rollback(
                tx,
                &pending.canary,
                format!(
                    "canary fault spike: {delta} new fault(s) across {} canary session(s) \
                     inside the observation window",
                    pending.canary.len()
                ),
            )
        } else {
            self.promote(
                tx,
                &pending.canary,
                &pending.rest,
                &pending.base,
                &pending.source,
                &pending.program,
                pending.skipped,
            )
        };
        self.close_tx(tx, phase.clone());
        Ok(phase)
    }

    /// Map protocol `Tx*` commands onto the host transaction API,
    /// answering with the same effect vocabulary a solo session uses.
    fn handle_tx_command(
        &self,
        origin: SessionId,
        command: SessionCommand,
    ) -> Result<Vec<SessionEffect>, HostError> {
        Ok(match command {
            SessionCommand::TxOpen => {
                let tx = self.tx_open(origin)?;
                vec![SessionEffect::Tx {
                    tx,
                    phase: TxPhase::Open { edits: 0 },
                }]
            }
            SessionCommand::TxEdit { tx, edits } => match self.tx_edit(tx, &edits) {
                Ok(edits) => vec![SessionEffect::Tx {
                    tx,
                    phase: TxPhase::Open { edits },
                }],
                Err(error) => vec![effect_for_error(&error)],
            },
            SessionCommand::TxCommit(tx) => match self.tx_commit(tx) {
                Ok(phase) => vec![SessionEffect::Tx { tx, phase }],
                Err(HostError::Compile(diagnostics)) => {
                    vec![SessionEffect::EditRejected(diagnostics)]
                }
                Err(error) => vec![effect_for_error(&error)],
            },
            SessionCommand::TxAbort(tx) => match self.tx_abort(tx) {
                Ok(()) => vec![SessionEffect::Tx {
                    tx,
                    phase: TxPhase::Aborted,
                }],
                Err(error) => vec![effect_for_error(&error)],
            },
            SessionCommand::TxStatus(tx) => match self.tx_status(tx) {
                Ok(phase) => vec![SessionEffect::Tx { tx, phase }],
                Err(error) => vec![effect_for_error(&error)],
            },
            // `submit` only routes Tx* commands here.
            _ => Vec::new(),
        })
    }

    /// Queue a fleet op on a session's mailbox (bypassing the client
    /// capacity limit — fleet ops are host-originated and bounded).
    /// `None` if the session is gone; the op is then simply skipped.
    fn submit_fleet(&self, id: u64, op: FleetOp) -> Option<Receiver<FleetReply>> {
        let slot = self.inner.slot(id)?;
        let (reply, rx) = mpsc::channel();
        lock(&slot.mailbox).push_back(WorkItem::Fleet(FleetEnvelope { op, reply }));
        if slot.try_schedule() {
            self.inner.enqueue_ready(id);
        }
        Some(rx)
    }

    /// Fan a fleet UPDATE to `ids` (all mailboxes enqueued before any
    /// reply is awaited, so the wave lands in parallel across workers)
    /// and tally the outcome.
    fn update_wave(
        &self,
        ids: &[u64],
        tx: u64,
        base: &Arc<str>,
        source: &Arc<str>,
        program: &Arc<Program>,
    ) -> UpdateWave {
        let pending: Vec<(u64, Option<Receiver<FleetReply>>)> = ids
            .iter()
            .map(|&id| {
                let op = FleetOp::Update {
                    tx,
                    base: Arc::clone(base),
                    source: Arc::clone(source),
                    program: Arc::clone(program),
                };
                (id, self.submit_fleet(id, op))
            })
            .collect();
        let mut wave = UpdateWave {
            applied: Vec::new(),
            fault_delta: 0,
            faults_after: 0,
            skipped: 0,
        };
        for (id, rx) in pending {
            match rx.and_then(|rx| rx.recv().ok()) {
                Some(FleetReply::Updated {
                    outcome: FleetUpdateOutcome::Applied { .. },
                    faults_before,
                    faults_after,
                }) => {
                    wave.applied.push(id);
                    wave.fault_delta += faults_after.saturating_sub(faults_before);
                    wave.faults_after += faults_after;
                }
                // Diverged, busy, failed, or the session disappeared
                // mid-wave: skipped, never updated.
                _ => wave.skipped += 1,
            }
        }
        if let Some(metrics) = &self.inner.metrics {
            metrics.rollout_updates.add(wave.applied.len() as u64);
        }
        wave
    }

    /// Roll a transaction's applied updates back: every session in
    /// `applied` restores the checkpoint its `fleet_update` parked
    /// (byte-identical pre-transaction state, mid-canary client
    /// traffic replayed).
    fn rollback(&self, tx: u64, applied: &[u64], reason: String) -> TxPhase {
        let pending: Vec<Option<Receiver<FleetReply>>> = applied
            .iter()
            .map(|&id| self.submit_fleet(id, FleetOp::Revert { tx }))
            .collect();
        let reverted = pending
            .into_iter()
            .filter(|rx| {
                matches!(
                    rx.as_ref().map(|rx| rx.recv()),
                    Some(Ok(FleetReply::Reverted(true)))
                )
            })
            .count();
        if let Some(metrics) = &self.inner.metrics {
            metrics.rollbacks_total.inc();
            metrics.rollout_reverts.add(reverted as u64);
        }
        TxPhase::RolledBack { reverted, reason }
    }

    /// Promote a transaction: update the rest of the fleet, then drop
    /// every updated session's checkpoint — the new version is the
    /// fleet's baseline now.
    #[allow(clippy::too_many_arguments)]
    fn promote(
        &self,
        tx: u64,
        canary: &[u64],
        rest: &[u64],
        base: &Arc<str>,
        source: &Arc<str>,
        program: &Arc<Program>,
        skipped_so_far: usize,
    ) -> TxPhase {
        let wave = self.update_wave(rest, tx, base, source, program);
        for &id in canary.iter().chain(&wave.applied) {
            if let Some(rx) = self.submit_fleet(id, FleetOp::Promote { tx }) {
                let _ = rx.recv();
            }
        }
        if let Some(metrics) = &self.inner.metrics {
            metrics.tx_promoted.inc();
        }
        TxPhase::Promoted {
            updated: canary.len() + wave.applied.len(),
            skipped: skipped_so_far + wave.skipped,
        }
    }

    /// Close a transaction with its terminal phase.
    fn close_tx(&self, tx: u64, phase: TxPhase) {
        if let Some(transaction) = lock(&self.inner.txs).get_mut(&tx) {
            transaction.state = TxState::Closed(phase);
        }
    }

    /// Run a closure against one hosted session, in its mailbox order
    /// (after everything already queued). Test instrumentation — fault
    /// injection and byte-identity assertions reach the session
    /// without adding protocol surface. Not part of the public API.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] / [`HostError::Stopped`].
    #[doc(hidden)]
    pub fn inspect_session<R: Send + 'static>(
        &self,
        id: SessionId,
        run: impl FnOnce(&mut LiveSession) -> R + Send + 'static,
    ) -> Result<R, HostError> {
        let (result_tx, result_rx) = mpsc::channel();
        let op = FleetOp::Inspect(Box::new(move |session: &mut LiveSession| {
            let _ = result_tx.send(run(session));
        }));
        self.submit_fleet(id.0, op)
            .ok_or(HostError::UnknownSession(id))?;
        result_rx.recv().map_err(|_| HostError::Stopped)
    }

    /// Whether this host records metrics.
    pub fn metrics_enabled(&self) -> bool {
        self.inner.metrics.is_some()
    }

    /// One hosted session's metrics snapshot — the same registry the
    /// session itself answers [`SessionCommand::Metrics`] from, read
    /// without queueing a command. Empty when metrics are disabled.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live.
    pub fn session_metrics(&self, id: SessionId) -> Result<MetricsSnapshot, HostError> {
        let slot = self.inner.slot(id.0).ok_or(HostError::UnknownSession(id))?;
        Ok(slot
            .registry
            .as_ref()
            .map(Registry::snapshot)
            .unwrap_or_default())
    }

    /// The host-wide snapshot: the host's own `host.*` metrics merged
    /// with every live session's snapshot. Counters add, gauges keep
    /// the maximum (high-water marks), histograms add bucket-wise — so
    /// for every session-sourced counter the host total is exactly the
    /// sum over live sessions. Empty when metrics are disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self
            .inner
            .metrics
            .as_ref()
            .map(|metrics| metrics.registry.snapshot())
            .unwrap_or_default();
        // Clone the slot Arcs out so snapshotting (which takes each
        // registry's table lock) happens outside the slot-map lock.
        let slots: Vec<Arc<Slot>> = lock(&self.inner.slots).values().cloned().collect();
        for slot in slots {
            if let Some(registry) = &slot.registry {
                snapshot.merge(&registry.snapshot());
            }
        }
        snapshot
    }

    /// Stop the workers and join them. Queued commands that have not
    /// run are abandoned (tickets report [`HostError::Stopped`]).
    /// Shutdown is explicit signaling — a flag plus a condvar
    /// broadcast — so parked workers exit immediately rather than on
    /// the next poll tick.
    ///
    /// Returns the final host-wide metrics snapshot (empty when
    /// metrics are off). Because every worker has joined, the snapshot
    /// is quiesced: no torn reads, and the worker time accounting
    /// (`host.worker_busy_us + host.worker_parked_us +
    /// host.worker_steal_scan_us == host.worker_wall_us`) holds as an
    /// exact identity.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.inner.scheduler.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.metrics_snapshot()
    }

    /// Install a scripted-interleaving hook for scheduling-protocol
    /// tests: called by the draining worker after the final mailbox pop
    /// (mailbox empty, `scheduled` still true) and before `scheduled`
    /// is released. Not part of the public API.
    #[doc(hidden)]
    pub fn set_drain_park_hook(&self, hook: Arc<dyn Fn(u64) + Send + Sync>) {
        *lock(&self.inner.drain_park_hook) = Some(hook);
    }
}

impl Drop for SessionHost {
    fn drop(&mut self) {
        self.inner.scheduler.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// A host must be shareable across the threads that submit to it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionHost>();
    assert_send_sync::<FrameSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

    #[test]
    fn host_serves_one_session_like_a_local_one() {
        let host = SessionHost::new(HostConfig::with_workers(2));
        let id = host.create_session(APP).expect("compiles");
        let mut solo = LiveSession::new(APP).expect("starts");

        let hosted = host.apply(id, SessionCommand::Frame).expect("applies");
        let local = solo.apply(SessionCommand::Frame);
        assert_eq!(hosted, local);

        let hosted = host
            .apply(id, SessionCommand::TapPath(vec![0]))
            .expect("applies");
        let local = solo.apply(SessionCommand::TapPath(vec![0]));
        assert_eq!(hosted, local);
        host.shutdown();
    }

    #[test]
    fn commands_on_one_session_apply_in_submission_order() {
        let host = SessionHost::new(HostConfig::with_workers(4));
        let id = host.create_session(APP).expect("compiles");
        // Queue a burst of taps without waiting, then read the frame:
        // count must reflect every tap exactly once, in order.
        let tickets: Vec<_> = (0..16)
            .map(|_| {
                host.submit(id, SessionCommand::TapPath(vec![0]))
                    .expect("live")
            })
            .collect();
        for ticket in tickets {
            ticket.wait().expect("applied");
        }
        let effects = host.apply(id, SessionCommand::Frame).expect("applies");
        let SessionEffect::Frame(frame) = &effects[0] else {
            panic!("expected frame");
        };
        assert_eq!(frame.view, format!("count is {}\n", 1 + 16 * 10));
        host.shutdown();
    }

    #[test]
    fn sessions_share_one_compiled_program_per_version() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        let ids: Vec<_> = (0..8)
            .map(|_| host.create_session(APP).expect("compiles"))
            .collect();
        assert_eq!(host.session_count(), 8);
        assert_eq!(host.programs_compiled(), 1, "one compile for 8 sessions");
        let program = host.program_for(APP).expect("cached");
        // Every session's system points at the same allocation.
        for id in ids {
            let effects = host.apply(id, SessionCommand::Frame).expect("applies");
            assert!(matches!(effects[0], SessionEffect::Frame(_)));
        }
        assert!(Arc::ptr_eq(
            &program,
            &host.program_for(APP).expect("cached")
        ));
    }

    #[test]
    fn latest_frame_fans_out_without_copying() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        let id = host.create_session(APP).expect("compiles");
        let first = host.latest_frame(id).expect("live").expect("settled");
        assert_eq!(first.view, "count is 1\n");
        // Two observers share the same snapshot allocation.
        let second = host.latest_frame(id).expect("live").expect("settled");
        assert!(Arc::ptr_eq(&first, &second));
        // A command moves the published frame forward.
        host.apply(id, SessionCommand::TapPath(vec![0]))
            .expect("applies");
        let third = host.latest_frame(id).expect("live").expect("settled");
        assert_eq!(third.view, "count is 11\n");
    }

    #[test]
    fn unknown_and_removed_sessions_are_typed_errors() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        let bogus = SessionId(999);
        assert!(matches!(
            host.apply(bogus, SessionCommand::Frame),
            Err(HostError::UnknownSession(_))
        ));
        let id = host.create_session(APP).expect("compiles");
        host.remove_session(id).expect("removes");
        assert!(matches!(
            host.submit(id, SessionCommand::Frame),
            Err(HostError::UnknownSession(_))
        ));
        assert!(matches!(
            host.remove_session(id),
            Err(HostError::UnknownSession(id2)) if id2 == id
        ));
    }

    #[test]
    fn host_metrics_reconcile_with_session_history() {
        use alive_live::ManualClock;
        let clock = Arc::new(ManualClock::with_auto_step(7));
        let host = SessionHost::with_clock(HostConfig::with_workers(2), clock);
        assert!(host.metrics_enabled());
        let a = host.create_session(APP).expect("compiles");
        let b = host.create_session(APP).expect("compiles");
        for _ in 0..3 {
            host.apply(a, SessionCommand::TapPath(vec![0]))
                .expect("applies");
        }
        host.apply(b, SessionCommand::Frame).expect("applies");

        let snap_a = host.session_metrics(a).expect("live");
        let snap_b = host.session_metrics(b).expect("live");
        assert_eq!(snap_a.counter("session.commands"), 3);
        assert_eq!(snap_b.counter("session.commands"), 1);
        let latency = snap_a.histogram(names::CMD_LATENCY_US).expect("recorded");
        assert_eq!(latency.count, 3, "one latency sample per command");
        assert!(latency.sum > 0, "auto-step clock yields nonzero latencies");

        let host_snap = host.metrics_snapshot();
        assert_eq!(
            host_snap.counter("session.commands"),
            4,
            "host counters are the sum over live sessions"
        );
        assert_eq!(host_snap.counter(names::SESSIONS_CREATED), 2);
        assert_eq!(host_snap.counter(names::PROGRAM_CACHE_MISSES), 1);
        assert_eq!(host_snap.counter(names::PROGRAM_CACHE_HITS), 1);
        assert!(host_snap.gauge(names::MAILBOX_DEPTH_HWM) >= 1);
        assert!(host_snap.gauge(names::READY_QUEUE_HWM) >= 1);

        // The hosted session answers the same protocol command local
        // frontends use, from the same registry the host snapshots.
        let effects = host.apply(a, SessionCommand::Metrics).expect("applies");
        let SessionEffect::Metrics(wire) = &effects[0] else {
            panic!("expected a metrics effect");
        };
        assert_eq!(wire.counter("session.commands"), 4);
        host.shutdown();
    }

    #[test]
    fn metrics_disabled_means_empty_snapshots() {
        let config = HostConfig {
            metrics: false,
            ..HostConfig::with_workers(1)
        };
        let host = SessionHost::new(config);
        assert!(!host.metrics_enabled());
        let id = host.create_session(APP).expect("compiles");
        host.apply(id, SessionCommand::Frame).expect("applies");
        assert_eq!(
            host.session_metrics(id).expect("live"),
            MetricsSnapshot::default()
        );
        assert_eq!(host.metrics_snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn racing_creates_on_one_source_compile_exactly_once() {
        // The thundering herd: sessions created from the same brand-new
        // source on many threads at once must produce one compile, not
        // one per loser of the insert race — the compile is
        // single-flighted through the version's cell.
        let host = Arc::new(SessionHost::new(HostConfig::with_workers(2)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let host = Arc::clone(&host);
                std::thread::spawn(move || host.create_session(APP).expect("compiles"))
            })
            .collect();
        for handle in handles {
            handle.join().expect("create threads");
        }
        assert_eq!(host.programs_compiled(), 1, "single-flight compile");
        assert_eq!(host.session_count(), 8);

        // Failed compiles are cached per version too (compilation is
        // deterministic): the error stays typed, and no compile count
        // accrues for it.
        assert!(matches!(
            host.create_session("not a program"),
            Err(HostError::Compile(_))
        ));
        assert!(matches!(
            host.create_session("not a program"),
            Err(HostError::Compile(_))
        ));
        assert_eq!(host.programs_compiled(), 1);
    }

    #[test]
    fn bad_source_is_a_compile_error_not_a_dead_host() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        assert!(matches!(
            host.create_session("not a program"),
            Err(HostError::Compile(_))
        ));
        // The host keeps serving.
        let id = host.create_session(APP).expect("compiles");
        assert!(host.apply(id, SessionCommand::Frame).is_ok());
    }
}
