//! `alive-serve` — a concurrent multi-session host.
//!
//! The paper's live loop serves one programmer; the ROADMAP's north
//! star serves many. This crate is the bridge: a [`SessionHost`] owns N
//! [`LiveSession`]s and drives them from a **fixed worker pool**, with
//! three structural guarantees:
//!
//! * **Per-session mailboxes.** Each session has a FIFO command queue
//!   and is drained by at most one worker at a time (an atomic
//!   `scheduled` flag hands the session around), so commands for one
//!   session apply in submission order while different sessions run in
//!   parallel — the actor model, built from `std` parts only.
//! * **Shared compiled programs.** Source text is compiled once per
//!   version and every session born from it shares the same
//!   `Arc<Program>` — parse, lower, and typecheck are per-version
//!   costs, not per-session costs.
//! * **Snapshot-consistent frame fan-out.** After every command the
//!   worker publishes the session's latest [`FrameSnapshot`] behind an
//!   `Arc`; any number of observers read whole frames (never torn
//!   ones) with a refcount bump, no copying and no session lock.
//!
//! Everything a frontend does travels as [`SessionCommand`] →
//! [`SessionEffect`] — the same total protocol the local frontends use,
//! so hosting changes *where* a session runs, not *what* it answers.

#![warn(missing_docs)]
// Same fault-containment discipline as alive-core: the host must never
// abort the process — a panicking worker would take every session with
// it. Failures are typed (`HostError`) or contained; locks recover from
// poisoning (session state is either taken out of the slot or intact).
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use alive_core::compile;
use alive_core::system::SystemConfig;
use alive_core::Program;
use alive_live::{FrameSnapshot, LiveSession, SessionCommand, SessionEffect};
use alive_obs::{Clock, Counter, Gauge, Histogram, MetricsSnapshot, MonotonicClock, Registry};
use alive_syntax::Diagnostics;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Metric names recorded by the host itself. Per-session names
/// (`session.*`, `system.*`, `frame.*`) are documented by
/// `alive_live::metrics::names` and `alive_core::metrics::names`; the
/// `host.*` names below cover what only the host can see: queueing,
/// worker utilization, and the program cache.
pub mod names {
    /// µs applying one command inside a worker, recorded per session
    /// (histograms add bucket-wise in the host snapshot).
    pub const CMD_LATENCY_US: &str = "host.cmd_latency_us";
    /// High-water mark of one session's mailbox depth (gauges keep the
    /// max in the host snapshot: the deepest mailbox ever seen).
    pub const MAILBOX_DEPTH_HWM: &str = "host.mailbox_depth_hwm";
    /// High-water mark of the ready queue (sessions awaiting a worker).
    pub const READY_QUEUE_HWM: &str = "host.ready_queue_hwm";
    /// Total µs workers spent draining session mailboxes.
    pub const WORKER_BUSY_US: &str = "host.worker_busy_us";
    /// Total µs workers spent waiting for ready sessions.
    pub const WORKER_IDLE_US: &str = "host.worker_idle_us";
    /// Program-cache lookups answered without compiling.
    pub const PROGRAM_CACHE_HITS: &str = "host.program_cache.hits";
    /// Program-cache lookups that compiled a new version.
    pub const PROGRAM_CACHE_MISSES: &str = "host.program_cache.misses";
    /// Sessions created over the host's lifetime.
    pub const SESSIONS_CREATED: &str = "host.sessions_created";
}

/// Pre-resolved host-level handles. Session-level metrics live in each
/// session's own [`Registry`] (see [`Slot`]); everything here is what
/// only the host can observe.
#[derive(Debug, Clone)]
struct HostMetrics {
    registry: Registry,
    clock: Arc<dyn Clock>,
    ready_queue_hwm: Gauge,
    worker_busy_us: Counter,
    worker_idle_us: Counter,
    program_cache_hits: Counter,
    program_cache_misses: Counter,
    sessions_created: Counter,
}

impl HostMetrics {
    fn new(clock: Arc<dyn Clock>) -> Self {
        let registry = Registry::with_clock(Arc::clone(&clock));
        HostMetrics {
            ready_queue_hwm: registry.gauge(names::READY_QUEUE_HWM),
            worker_busy_us: registry.counter(names::WORKER_BUSY_US),
            worker_idle_us: registry.counter(names::WORKER_IDLE_US),
            program_cache_hits: registry.counter(names::PROGRAM_CACHE_HITS),
            program_cache_misses: registry.counter(names::PROGRAM_CACHE_MISSES),
            sessions_created: registry.counter(names::SESSIONS_CREATED),
            clock,
            registry,
        }
    }
}

/// Identifies one hosted session for the lifetime of the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Host configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Worker threads draining session mailboxes. Zero is clamped to 1.
    pub workers: usize,
    /// System configuration handed to every hosted session.
    pub system: SystemConfig,
    /// Whether hosted sessions enable the §5 render memo cache.
    pub memo: bool,
    /// Whether the host records metrics (host-level and per-session).
    /// Off, no [`Registry`] exists anywhere: sessions run exactly as
    /// before this field did — the bench's baseline arm.
    pub metrics: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            system: SystemConfig::default(),
            memo: false,
            metrics: true,
        }
    }
}

impl HostConfig {
    /// A config with an explicit worker count (other fields default).
    pub fn with_workers(workers: usize) -> Self {
        HostConfig {
            workers,
            ..HostConfig::default()
        }
    }
}

/// Errors surfaced by host entry points.
#[derive(Debug)]
pub enum HostError {
    /// The session id is unknown (never created, or removed).
    UnknownSession(SessionId),
    /// The session's source failed to compile.
    Compile(Diagnostics),
    /// The host's workers are gone (shut down mid-request).
    Stopped,
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::UnknownSession(id) => write!(f, "unknown {id}"),
            HostError::Compile(ds) => write!(f, "source does not compile:\n{ds}"),
            HostError::Stopped => f.write_str("host is stopped"),
        }
    }
}

impl std::error::Error for HostError {}

/// Lock recovering from poisoning: a worker that panicked (only
/// possible in test builds) either took the session out of its slot or
/// left it intact — the shared maps and queues themselves are always
/// structurally sound, so continuing is safe and required by the
/// no-panic discipline.
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One command in flight, with its reply channel.
struct Envelope {
    command: SessionCommand,
    reply: Sender<Vec<SessionEffect>>,
}

/// Per-session state: the mailbox, the session itself (present when no
/// worker holds it), the scheduling flag, and the published frame.
struct Slot {
    mailbox: Mutex<VecDeque<Envelope>>,
    /// `Some` while parked; taken by the worker that drains the mailbox.
    session: Mutex<Option<LiveSession>>,
    /// True while the session sits in the ready queue or a worker's
    /// hands. At most one worker drains a session at a time, which is
    /// what makes the mailbox a total order per session.
    scheduled: AtomicBool,
    /// The most recent settled frame, whole-or-nothing for observers.
    latest: Mutex<Option<Arc<FrameSnapshot>>>,
    /// The session's registry — the same one its `LiveSession` records
    /// into, so `SessionCommand::Metrics` and host snapshots agree.
    /// `None` when the host runs with metrics disabled.
    registry: Option<Registry>,
    /// Pre-resolved per-session handles (see [`names`]).
    cmd_latency: Option<Histogram>,
    mailbox_depth_hwm: Option<Gauge>,
}

impl Slot {
    /// Try to transition unscheduled → scheduled; true on success.
    fn try_schedule(&self) -> bool {
        self.scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

struct HostInner {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Source text → its compiled program, one entry per version.
    programs: Mutex<HashMap<String, Arc<Program>>>,
    /// Number of actual compiles performed (cache misses) — observable
    /// so tests can pin "compile once per version, not per session".
    compiles: AtomicU64,
    ready_tx: Sender<u64>,
    ready_rx: Mutex<Receiver<u64>>,
    shutdown: AtomicBool,
    config: HostConfig,
    next_id: AtomicU64,
    /// Host-level metric handles; `None` disables recording everywhere.
    metrics: Option<HostMetrics>,
    /// Sessions currently in the ready queue — maintained only when
    /// metrics are on, to feed the ready-queue high-water gauge.
    ready_len: AtomicU64,
}

impl HostInner {
    fn slot(&self, id: u64) -> Option<Arc<Slot>> {
        lock(&self.slots).get(&id).cloned()
    }

    /// Send a session to the ready queue, tracking its length high-water
    /// mark. Every ready send must go through here so the gauge and the
    /// `ready_len` counter stay paired with the worker-side decrement.
    fn enqueue_ready(&self, id: u64) {
        if let Some(metrics) = &self.metrics {
            let len = self.ready_len.fetch_add(1, Ordering::AcqRel) + 1;
            metrics
                .ready_queue_hwm
                .observe_max(i64::try_from(len).unwrap_or(i64::MAX));
        }
        // The workers only disconnect on shutdown; a failed send
        // surfaces as `Stopped` when the ticket is waited on.
        let _ = self.ready_tx.send(id);
    }

    /// Drain one session's mailbox to empty, then park the session.
    fn drain_session(&self, id: u64) {
        let Some(slot) = self.slot(id) else { return };
        let Some(mut session) = lock(&slot.session).take() else {
            // Unreachable by the scheduling protocol; recover by
            // unscheduling so the slot cannot wedge.
            slot.scheduled.store(false, Ordering::Release);
            return;
        };
        let clock = slot.registry.as_ref().map(Registry::clock);
        loop {
            let envelope = lock(&slot.mailbox).pop_front();
            let Some(envelope) = envelope else { break };
            let started = clock.as_ref().map(|clock| clock.now_us());
            let effects = session.apply(envelope.command);
            if let (Some(latency), Some(clock), Some(started)) =
                (&slot.cmd_latency, &clock, started)
            {
                latency.record(clock.now_us().saturating_sub(started));
            }
            // Publish the last frame among the effects: observers see
            // whole settled frames, in per-session order.
            if let Some(frame) = effects.iter().rev().find_map(|effect| match effect {
                SessionEffect::Frame(frame) => Some(frame.clone()),
                _ => None,
            }) {
                *lock(&slot.latest) = Some(Arc::new(frame));
            }
            // The submitter may have dropped its ticket; fine.
            let _ = envelope.reply.send(effects);
        }
        *lock(&slot.session) = Some(session);
        slot.scheduled.store(false, Ordering::Release);
        // Close the lost-wakeup window: a submit that landed between
        // the final pop and the flag store saw `scheduled == true` and
        // did not enqueue — re-enqueue on its behalf.
        if !lock(&slot.mailbox).is_empty() && slot.try_schedule() {
            self.enqueue_ready(id);
        }
    }
}

fn worker_loop(inner: &HostInner) {
    let clock = inner.metrics.as_ref().map(|m| Arc::clone(&m.clock));
    loop {
        let wait_started = clock.as_ref().map(|clock| clock.now_us());
        let next = {
            let rx = lock(&inner.ready_rx);
            rx.recv_timeout(Duration::from_millis(20))
        };
        if let (Some(metrics), Some(clock), Some(started)) = (&inner.metrics, &clock, wait_started)
        {
            metrics
                .worker_idle_us
                .add(clock.now_us().saturating_sub(started));
        }
        match next {
            Ok(id) => {
                if let (Some(metrics), Some(clock)) = (&inner.metrics, &clock) {
                    inner.ready_len.fetch_sub(1, Ordering::AcqRel);
                    let started = clock.now_us();
                    inner.drain_session(id);
                    metrics
                        .worker_busy_us
                        .add(clock.now_us().saturating_sub(started));
                } else {
                    inner.drain_session(id);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// A pending reply to a submitted command. Dropping it abandons the
/// reply (the command still runs).
#[derive(Debug)]
pub struct EffectTicket {
    rx: Receiver<Vec<SessionEffect>>,
}

impl EffectTicket {
    /// Block until the command has been applied and return its effects.
    ///
    /// # Errors
    ///
    /// [`HostError::Stopped`] if the host shut down (or the session was
    /// removed) before the command ran.
    pub fn wait(self) -> Result<Vec<SessionEffect>, HostError> {
        self.rx.recv().map_err(|_| HostError::Stopped)
    }
}

/// A concurrent multi-session host: N live sessions behind per-session
/// mailboxes, drained by a fixed worker pool. See the crate docs for
/// the scheduling protocol.
pub struct SessionHost {
    inner: Arc<HostInner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for SessionHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHost")
            .field("workers", &self.workers.len())
            .field("sessions", &self.session_count())
            .finish()
    }
}

impl SessionHost {
    /// Start a host with the given configuration (spawns the workers).
    /// When `config.metrics` is on, metrics run against real monotonic
    /// time; see [`SessionHost::with_clock`] for deterministic tests.
    pub fn new(config: HostConfig) -> Self {
        let clock: Option<Arc<dyn Clock>> = config
            .metrics
            .then(|| Arc::new(MonotonicClock::new()) as Arc<dyn Clock>);
        SessionHost::start(config, clock)
    }

    /// Start a host whose metrics (host-level and per-session) all time
    /// against `clock` — an [`alive_obs::ManualClock`] with an auto-step
    /// makes every duration and snapshot deterministic. Implies
    /// `config.metrics = true`.
    pub fn with_clock(config: HostConfig, clock: Arc<dyn Clock>) -> Self {
        SessionHost::start(
            HostConfig {
                metrics: true,
                ..config
            },
            Some(clock),
        )
    }

    fn start(config: HostConfig, clock: Option<Arc<dyn Clock>>) -> Self {
        let workers = config.workers.max(1);
        let (ready_tx, ready_rx) = mpsc::channel();
        let inner = Arc::new(HostInner {
            slots: Mutex::new(HashMap::new()),
            programs: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            ready_tx,
            ready_rx: Mutex::new(ready_rx),
            shutdown: AtomicBool::new(false),
            config: HostConfig { workers, ..config },
            next_id: AtomicU64::new(1),
            metrics: clock.map(HostMetrics::new),
            ready_len: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        SessionHost {
            inner,
            workers: handles,
        }
    }

    /// Start a host with default configuration (one worker per
    /// available CPU).
    pub fn with_default_config() -> Self {
        SessionHost::new(HostConfig::default())
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The number of live sessions.
    pub fn session_count(&self) -> usize {
        lock(&self.inner.slots).len()
    }

    /// How many distinct source versions have been compiled. With K
    /// sessions on one source this stays 1 — the host's whole point.
    pub fn programs_compiled(&self) -> u64 {
        self.inner.compiles.load(Ordering::Acquire)
    }

    /// The shared compiled program for `source`, compiling it on first
    /// sight and answering from the per-version cache afterwards.
    ///
    /// # Errors
    ///
    /// [`HostError::Compile`] with the program's diagnostics.
    pub fn program_for(&self, source: &str) -> Result<Arc<Program>, HostError> {
        if let Some(program) = lock(&self.inner.programs).get(source) {
            if let Some(metrics) = &self.inner.metrics {
                metrics.program_cache_hits.inc();
            }
            return Ok(Arc::clone(program));
        }
        // Compile outside the lock: other sessions keep being served
        // while a new version compiles. A racing duplicate compile is
        // possible and harmless (last insert wins; both Arcs are the
        // same program by value).
        let program = Arc::new(compile(source).map_err(HostError::Compile)?);
        self.inner.compiles.fetch_add(1, Ordering::AcqRel);
        if let Some(metrics) = &self.inner.metrics {
            metrics.program_cache_misses.inc();
        }
        Ok(Arc::clone(
            lock(&self.inner.programs)
                .entry(source.to_string())
                .or_insert(program),
        ))
    }

    /// Create a session from source text, sharing the compiled program
    /// with every other session on the same version. The session is
    /// settled to its first frame before the id is returned, so
    /// [`SessionHost::latest_frame`] is immediately meaningful.
    ///
    /// # Errors
    ///
    /// [`HostError::Compile`] if the source does not compile.
    pub fn create_session(&self, source: &str) -> Result<SessionId, HostError> {
        let program = self.program_for(source)?;
        // Each session gets its own registry on the host's clock, so
        // per-session snapshots are independent and the host snapshot
        // is their merge — counters sum exactly across sessions.
        let registry = self
            .inner
            .metrics
            .as_ref()
            .map(|metrics| Registry::with_clock(Arc::clone(&metrics.clock)));
        let mut session = LiveSession::with_shared_program_observed(
            source,
            program,
            self.inner.config.system,
            self.inner.config.memo,
            registry.as_ref(),
        );
        if let Some(metrics) = &self.inner.metrics {
            metrics.sessions_created.inc();
        }
        let first = Arc::new(session.frame_snapshot());
        let id = self.inner.next_id.fetch_add(1, Ordering::AcqRel);
        let slot = Arc::new(Slot {
            mailbox: Mutex::new(VecDeque::new()),
            session: Mutex::new(Some(session)),
            scheduled: AtomicBool::new(false),
            latest: Mutex::new(Some(first)),
            cmd_latency: registry
                .as_ref()
                .map(|registry| registry.histogram(names::CMD_LATENCY_US)),
            mailbox_depth_hwm: registry
                .as_ref()
                .map(|registry| registry.gauge(names::MAILBOX_DEPTH_HWM)),
            registry,
        });
        lock(&self.inner.slots).insert(id, slot);
        Ok(SessionId(id))
    }

    /// Remove a session. Commands still queued are abandoned (their
    /// tickets report [`HostError::Stopped`]); a worker currently
    /// holding the session finishes its drain first.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live.
    pub fn remove_session(&self, id: SessionId) -> Result<(), HostError> {
        lock(&self.inner.slots)
            .remove(&id.0)
            .map(|_| ())
            .ok_or(HostError::UnknownSession(id))
    }

    /// Queue a command on a session's mailbox and return a ticket for
    /// its effects. Commands submitted to the same session apply in
    /// submission order; different sessions proceed in parallel.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live.
    pub fn submit(
        &self,
        id: SessionId,
        command: SessionCommand,
    ) -> Result<EffectTicket, HostError> {
        let slot = self.inner.slot(id.0).ok_or(HostError::UnknownSession(id))?;
        let (reply, rx) = mpsc::channel();
        {
            let mut mailbox = lock(&slot.mailbox);
            mailbox.push_back(Envelope { command, reply });
            if let Some(gauge) = &slot.mailbox_depth_hwm {
                gauge.observe_max(i64::try_from(mailbox.len()).unwrap_or(i64::MAX));
            }
        }
        if slot.try_schedule() {
            self.inner.enqueue_ready(id.0);
        }
        Ok(EffectTicket { rx })
    }

    /// Submit a command and block for its effects — the synchronous
    /// convenience used by frontends that drive one session.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] / [`HostError::Stopped`].
    pub fn apply(
        &self,
        id: SessionId,
        command: SessionCommand,
    ) -> Result<Vec<SessionEffect>, HostError> {
        self.submit(id, command)?.wait()
    }

    /// The session's most recently published frame — the fan-out path.
    /// The returned `Arc` is a consistent whole-frame snapshot: workers
    /// publish frames atomically after each command, so observers never
    /// see a torn or mid-settle view, and a thousand observers share
    /// one allocation.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live.
    pub fn latest_frame(&self, id: SessionId) -> Result<Option<Arc<FrameSnapshot>>, HostError> {
        let slot = self.inner.slot(id.0).ok_or(HostError::UnknownSession(id))?;
        let frame = lock(&slot.latest).clone();
        Ok(frame)
    }

    /// Whether this host records metrics.
    pub fn metrics_enabled(&self) -> bool {
        self.inner.metrics.is_some()
    }

    /// One hosted session's metrics snapshot — the same registry the
    /// session itself answers [`SessionCommand::Metrics`] from, read
    /// without queueing a command. Empty when metrics are disabled.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownSession`] if the id is not live.
    pub fn session_metrics(&self, id: SessionId) -> Result<MetricsSnapshot, HostError> {
        let slot = self.inner.slot(id.0).ok_or(HostError::UnknownSession(id))?;
        Ok(slot
            .registry
            .as_ref()
            .map(Registry::snapshot)
            .unwrap_or_default())
    }

    /// The host-wide snapshot: the host's own `host.*` metrics merged
    /// with every live session's snapshot. Counters add, gauges keep
    /// the maximum (high-water marks), histograms add bucket-wise — so
    /// for every session-sourced counter the host total is exactly the
    /// sum over live sessions. Empty when metrics are disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self
            .inner
            .metrics
            .as_ref()
            .map(|metrics| metrics.registry.snapshot())
            .unwrap_or_default();
        // Clone the slot Arcs out so snapshotting (which takes each
        // registry's table lock) happens outside the slot-map lock.
        let slots: Vec<Arc<Slot>> = lock(&self.inner.slots).values().cloned().collect();
        for slot in slots {
            if let Some(registry) = &slot.registry {
                snapshot.merge(&registry.snapshot());
            }
        }
        snapshot
    }

    /// Stop the workers and join them. Queued commands that have not
    /// run are abandoned (tickets report [`HostError::Stopped`]).
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for SessionHost {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// A host must be shareable across the threads that submit to it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionHost>();
    assert_send_sync::<FrameSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = r#"
global count : number = 0
page start() {
    init { count := count + 1; }
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 10; }
        }
    }
}
"#;

    #[test]
    fn host_serves_one_session_like_a_local_one() {
        let host = SessionHost::new(HostConfig::with_workers(2));
        let id = host.create_session(APP).expect("compiles");
        let mut solo = LiveSession::new(APP).expect("starts");

        let hosted = host.apply(id, SessionCommand::Frame).expect("applies");
        let local = solo.apply(SessionCommand::Frame);
        assert_eq!(hosted, local);

        let hosted = host
            .apply(id, SessionCommand::TapPath(vec![0]))
            .expect("applies");
        let local = solo.apply(SessionCommand::TapPath(vec![0]));
        assert_eq!(hosted, local);
        host.shutdown();
    }

    #[test]
    fn commands_on_one_session_apply_in_submission_order() {
        let host = SessionHost::new(HostConfig::with_workers(4));
        let id = host.create_session(APP).expect("compiles");
        // Queue a burst of taps without waiting, then read the frame:
        // count must reflect every tap exactly once, in order.
        let tickets: Vec<_> = (0..16)
            .map(|_| {
                host.submit(id, SessionCommand::TapPath(vec![0]))
                    .expect("live")
            })
            .collect();
        for ticket in tickets {
            ticket.wait().expect("applied");
        }
        let effects = host.apply(id, SessionCommand::Frame).expect("applies");
        let SessionEffect::Frame(frame) = &effects[0] else {
            panic!("expected frame");
        };
        assert_eq!(frame.view, format!("count is {}\n", 1 + 16 * 10));
        host.shutdown();
    }

    #[test]
    fn sessions_share_one_compiled_program_per_version() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        let ids: Vec<_> = (0..8)
            .map(|_| host.create_session(APP).expect("compiles"))
            .collect();
        assert_eq!(host.session_count(), 8);
        assert_eq!(host.programs_compiled(), 1, "one compile for 8 sessions");
        let program = host.program_for(APP).expect("cached");
        // Every session's system points at the same allocation.
        for id in ids {
            let effects = host.apply(id, SessionCommand::Frame).expect("applies");
            assert!(matches!(effects[0], SessionEffect::Frame(_)));
        }
        assert!(Arc::ptr_eq(
            &program,
            &host.program_for(APP).expect("cached")
        ));
    }

    #[test]
    fn latest_frame_fans_out_without_copying() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        let id = host.create_session(APP).expect("compiles");
        let first = host.latest_frame(id).expect("live").expect("settled");
        assert_eq!(first.view, "count is 1\n");
        // Two observers share the same snapshot allocation.
        let second = host.latest_frame(id).expect("live").expect("settled");
        assert!(Arc::ptr_eq(&first, &second));
        // A command moves the published frame forward.
        host.apply(id, SessionCommand::TapPath(vec![0]))
            .expect("applies");
        let third = host.latest_frame(id).expect("live").expect("settled");
        assert_eq!(third.view, "count is 11\n");
    }

    #[test]
    fn unknown_and_removed_sessions_are_typed_errors() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        let bogus = SessionId(999);
        assert!(matches!(
            host.apply(bogus, SessionCommand::Frame),
            Err(HostError::UnknownSession(_))
        ));
        let id = host.create_session(APP).expect("compiles");
        host.remove_session(id).expect("removes");
        assert!(matches!(
            host.submit(id, SessionCommand::Frame),
            Err(HostError::UnknownSession(_))
        ));
        assert!(matches!(
            host.remove_session(id),
            Err(HostError::UnknownSession(id2)) if id2 == id
        ));
    }

    #[test]
    fn host_metrics_reconcile_with_session_history() {
        use alive_live::ManualClock;
        let clock = Arc::new(ManualClock::with_auto_step(7));
        let host = SessionHost::with_clock(HostConfig::with_workers(2), clock);
        assert!(host.metrics_enabled());
        let a = host.create_session(APP).expect("compiles");
        let b = host.create_session(APP).expect("compiles");
        for _ in 0..3 {
            host.apply(a, SessionCommand::TapPath(vec![0]))
                .expect("applies");
        }
        host.apply(b, SessionCommand::Frame).expect("applies");

        let snap_a = host.session_metrics(a).expect("live");
        let snap_b = host.session_metrics(b).expect("live");
        assert_eq!(snap_a.counter("session.commands"), 3);
        assert_eq!(snap_b.counter("session.commands"), 1);
        let latency = snap_a.histogram(names::CMD_LATENCY_US).expect("recorded");
        assert_eq!(latency.count, 3, "one latency sample per command");
        assert!(latency.sum > 0, "auto-step clock yields nonzero latencies");

        let host_snap = host.metrics_snapshot();
        assert_eq!(
            host_snap.counter("session.commands"),
            4,
            "host counters are the sum over live sessions"
        );
        assert_eq!(host_snap.counter(names::SESSIONS_CREATED), 2);
        assert_eq!(host_snap.counter(names::PROGRAM_CACHE_MISSES), 1);
        assert_eq!(host_snap.counter(names::PROGRAM_CACHE_HITS), 1);
        assert!(host_snap.gauge(names::MAILBOX_DEPTH_HWM) >= 1);
        assert!(host_snap.gauge(names::READY_QUEUE_HWM) >= 1);

        // The hosted session answers the same protocol command local
        // frontends use, from the same registry the host snapshots.
        let effects = host.apply(a, SessionCommand::Metrics).expect("applies");
        let SessionEffect::Metrics(wire) = &effects[0] else {
            panic!("expected a metrics effect");
        };
        assert_eq!(wire.counter("session.commands"), 4);
        host.shutdown();
    }

    #[test]
    fn metrics_disabled_means_empty_snapshots() {
        let config = HostConfig {
            metrics: false,
            ..HostConfig::with_workers(1)
        };
        let host = SessionHost::new(config);
        assert!(!host.metrics_enabled());
        let id = host.create_session(APP).expect("compiles");
        host.apply(id, SessionCommand::Frame).expect("applies");
        assert_eq!(
            host.session_metrics(id).expect("live"),
            MetricsSnapshot::default()
        );
        assert_eq!(host.metrics_snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn bad_source_is_a_compile_error_not_a_dead_host() {
        let host = SessionHost::new(HostConfig::with_workers(1));
        assert!(matches!(
            host.create_session("not a program"),
            Err(HostError::Compile(_))
        ));
        // The host keeps serving.
        let id = host.create_session(APP).expect("compiles");
        assert!(host.apply(id, SessionCommand::Frame).is_ok());
    }
}
