//! Three-way differential testing of the bytecode VM (ROADMAP item 3).
//!
//! The VM is an optimization of the bigstep tree walker, which in turn
//! refines the small-step substitution calculus. This suite holds all
//! three together on randomly generated well-typed programs:
//!
//! 1. **Bodies** — page init/render bodies evaluate to the same values,
//!    stores, queues, and box trees under smallstep, bigstep, and the
//!    VM, with identical prim-call accounting.
//! 2. **Systems** — a 256-step random walk (taps, backs, cascades)
//!    drives one `System` per engine; after every step the stores,
//!    queues, page stacks, view state, and rendered frames must be
//!    byte-identical, and the VM must never have silently fallen back.
//! 3. **Faults** — the same walk under a deterministically injected
//!    prim-fault schedule: both engines fault on the same calls and
//!    roll back to byte-identical checkpoints.
//!
//! Every case is seed-replayable: a failure prints the seed and
//! `ALIVE_TESTKIT_SEED=<seed>` reruns it, fault schedule included.

use alive_core::event::EventQueue;
use alive_core::prim::Prim;
use alive_core::store::Store;
use alive_core::system::{EvalEngine, System, SystemConfig};
use alive_core::widget::WidgetStore;
use alive_core::{bigstep, compile, smallstep, vm};
use alive_testkit::{prop, prop_assert, prop_assert_eq, FaultPlan, NoShrink, Rng};

const FUEL: u64 = 5_000_000;

// ---------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------

/// A well-typed numeric expression over globals `ga`/`gb`, the pure
/// helper `inc`, and whatever `let`-bound names are in scope.
fn num_expr(rng: &mut Rng, vars: &[&str], depth: usize) -> String {
    if depth == 0 || rng.chance(2, 5) {
        match rng.below(4) {
            0 => rng.below(100).to_string(),
            1 => "ga".to_string(),
            2 => "gb".to_string(),
            _ => {
                let mut pool: Vec<&str> = vars.to_vec();
                pool.push("ga");
                rng.choose(&pool).to_string()
            }
        }
    } else {
        match rng.below(8) {
            0 => {
                let op = *rng.choose(&["+", "-", "*"]);
                format!(
                    "({} {op} {})",
                    num_expr(rng, vars, depth - 1),
                    num_expr(rng, vars, depth - 1)
                )
            }
            1 => format!("inc({})", num_expr(rng, vars, depth - 1)),
            2 => format!("math.abs({})", num_expr(rng, vars, depth - 1)),
            3 => format!(
                "(if ({}) > 10 {{ {} }} else {{ {} }})",
                num_expr(rng, vars, depth - 1),
                num_expr(rng, vars, depth - 1),
                num_expr(rng, vars, depth - 1)
            ),
            4 => format!(
                "({}, {}).2",
                num_expr(rng, vars, depth - 1),
                num_expr(rng, vars, depth - 1)
            ),
            5 => format!("list.nth([{}], 0)", num_expr(rng, vars, depth - 1)),
            6 => format!(
                "(fn(k: number) -> k + {})({})",
                rng.below(10),
                num_expr(rng, vars, depth - 1)
            ),
            _ => format!(
                "(fn(k: number, j: number) -> k * j)({}, {})",
                num_expr(rng, vars, depth - 1),
                num_expr(rng, vars, depth - 1)
            ),
        }
    }
}

/// A random sequence of init statements: lets, global writes, bounded
/// while loops, foreach over a literal list, lambda binding and calls.
/// With `kernel` set, stays inside the small-step kernel (no local
/// assignment, so `while` counts on a global instead).
fn init_stmts(rng: &mut Rng, kernel: bool) -> String {
    let mut out = String::new();
    let e1 = num_expr(rng, &[], 3);
    let e2 = num_expr(rng, &["x1"], 3);
    out.push_str(&format!("let x1 = {e1};\nlet x2 = {e2};\n"));
    for _ in 0..rng.below(3) {
        match rng.below(5) {
            0 => out.push_str(&format!("ga := {};\n", num_expr(rng, &["x1", "x2"], 3))),
            1 => {
                if kernel {
                    out.push_str(&format!(
                        "gb := 0;\nwhile gb < {} {{ gb := gb + inc(1); }}\n",
                        rng.below(6)
                    ));
                } else {
                    out.push_str(&format!(
                        "let i = 0;\nwhile i < {} {{ gb := gb + inc(i); i := i + 1; }}\n",
                        rng.below(6)
                    ));
                }
            }
            2 => out.push_str(&format!(
                "foreach v in [{}, {}, {}] {{ ga := ga + v; }}\n",
                num_expr(rng, &["x1"], 2),
                num_expr(rng, &["x2"], 2),
                rng.below(20)
            )),
            3 => out.push_str(&format!(
                "let f = fn(k: number) -> k + {};\ngb := f({});\n",
                rng.below(9),
                num_expr(rng, &["x1", "x2"], 2)
            )),
            _ => out.push_str(&format!(
                "for j in 0 .. {} {{ ga := ga + j; }}\n",
                rng.below(5)
            )),
        }
    }
    out.push_str("ga := x1 + x2;\n");
    out
}

/// Render statements without `remember` or handlers — the subset the
/// small-step machine also evaluates, for the three-way body check.
fn render_stmts_plain(rng: &mut Rng) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "boxed {{ post \"g \" ++ ga ++ \"/\" ++ gb; box.margin := {}; }}\n",
        rng.below(4)
    ));
    out.push_str(&format!(
        "for i in 0 .. {} {{ boxed {{ post i * gb + {}; }} }}\n",
        rng.below(4) + 1,
        num_expr(rng, &[], 2)
    ));
    if rng.chance(1, 2) {
        out.push_str(&format!(
            "foreach s in [\"a\", \"b\"] {{ boxed {{ post s ++ {}; }} }}\n",
            num_expr(rng, &[], 2)
        ));
    }
    out
}

/// A whole program for the body-level three-way check (smallstep does
/// not evaluate `remember` or handler closures, so they are left out).
fn arb_plain_program(rng: &mut Rng) -> String {
    let ga = rng.below(50);
    let gb = rng.below(50);
    let init = init_stmts(rng, true);
    let render = render_stmts_plain(rng);
    format!(
        "global ga : number = {ga}
         global gb : number = {gb}
         fun inc(x: number): number pure {{ x + 1 }}
         page start() {{
             init {{ {init} }}
             render {{ {render} }}
         }}"
    )
}

/// A whole program for the system-level walk: the plain subset plus
/// `remember`, tap handlers (global writes, prim calls, push/pop), and
/// a parameterized second page.
fn arb_walk_program(rng: &mut Rng) -> String {
    let ga = rng.below(50);
    let gb = rng.below(50);
    let init = init_stmts(rng, false);
    let render = render_stmts_plain(rng);
    let hits0 = rng.below(5);
    let h1 = num_expr(rng, &[], 2);
    let h2 = num_expr(rng, &[], 2);
    format!(
        "global ga : number = {ga}
         global gb : number = {gb}
         fun inc(x: number): number pure {{ x + 1 }}
         page start() {{
             init {{ {init} }}
             render {{
                 {render}
                 boxed {{
                     remember hits : number = {hits0};
                     post \"hits \" ++ hits;
                     on tap {{ ga := ga + math.abs({h1}); }}
                 }}
                 boxed {{
                     post \"go\";
                     on tap {{ push detail(gb + math.abs({h2})); }}
                 }}
             }}
         }}
         page detail(n : number) {{
             render {{
                 boxed {{ post \"detail \" ++ n; on tap {{ pop; }} }}
                 boxed {{ post \"bump\"; on tap {{ gb := gb + inc(n); }} }}
             }}
         }}"
    )
}

// ---------------------------------------------------------------------
// 1. Body-level three-way agreement
// ---------------------------------------------------------------------

#[test]
fn vm_bigstep_smallstep_agree_on_generated_bodies() {
    prop::check(
        "vm_bigstep_smallstep_agree_on_generated_bodies",
        prop::Config::with_cases(96),
        |rng| NoShrink(arb_plain_program(rng)),
        |src: &NoShrink<String>| {
            let program = compile(&src.0).expect("generated programs are well-typed");
            let page = program.page("start").expect("page").clone();
            let vmp = program
                .vm()
                .expect("generated programs compile to bytecode");
            let mut scratch = vm::Scratch::new();

            // init under all three machines.
            let mut ss_store = Store::new();
            let mut ss_queue = EventQueue::new();
            let ss =
                smallstep::eval_state(&program, &mut ss_store, &mut ss_queue, FUEL, &page.init)
                    .expect("small-step init");
            let mut bs_store = Store::new();
            let mut bs_queue = EventQueue::new();
            let (bs, bs_cost) = bigstep::run_state(
                &program,
                &mut bs_store,
                &mut bs_queue,
                0,
                FUEL,
                vec![],
                &page.init,
            )
            .expect("big-step init");
            let mut vm_store = Store::new();
            let mut vm_queue = EventQueue::new();
            let mut vm_widgets = WidgetStore::new();
            let run = vm::transition_page_init(
                &vmp,
                &mut scratch,
                &mut vm_store,
                &mut vm_queue,
                0,
                FUEL,
                "start",
                &[],
                Some(&mut vm_widgets),
                None,
            )
            .expect("start page is compiled");
            let vm_value = run.result.expect("vm init");

            prop_assert_eq!(&ss.value, &bs, "smallstep/bigstep init values");
            prop_assert_eq!(&vm_value, &bs, "vm/bigstep init values");
            prop_assert_eq!(&ss_store, &bs_store, "smallstep/bigstep stores");
            prop_assert_eq!(&vm_store, &bs_store, "vm/bigstep stores");
            prop_assert_eq!(&ss_queue, &bs_queue, "smallstep/bigstep queues");
            prop_assert_eq!(&vm_queue, &bs_queue, "vm/bigstep queues");
            // Prim accounting must agree exactly — fault injection
            // counts prim calls, so this is the fault-parity invariant.
            prop_assert_eq!(run.cost.prim, bs_cost.prim, "vm/bigstep prim accounting");
            prop_assert!(run.stats.instructions > 0, "vm actually executed");

            // render under all three, from the agreed store.
            let ss_render = smallstep::eval_render(&program, &mut ss_store, FUEL, &page.render)
                .expect("small-step render");
            let bs_render = bigstep::run_render(&program, &bs_store, 0, FUEL, vec![], &page.render)
                .expect("big-step render");
            let render_run = vm::transition_page_render(
                &vmp,
                &mut scratch,
                &vm_store,
                0,
                FUEL,
                "start",
                &[],
                None,
                Some(&mut vm_widgets),
                None,
            )
            .expect("start page is compiled");
            let vm_root = render_run.result.expect("vm render");

            let ss_root = ss_render.root.expect("box content");
            prop_assert_eq!(&ss_root, &bs_render.root, "smallstep/bigstep box trees");
            prop_assert_eq!(&vm_root, &bs_render.root, "vm/bigstep box trees");
            // Byte-identity, not just structural equality.
            prop_assert_eq!(
                format!("{vm_root:?}"),
                format!("{:?}", bs_render.root),
                "vm/bigstep frame bytes"
            );
            prop_assert_eq!(
                render_run.cost.boxes_created,
                bs_render.cost.boxes_created,
                "vm/bigstep boxes created"
            );
            prop_assert_eq!(
                render_run.cost.posts,
                bs_render.cost.posts,
                "vm/bigstep posts"
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// 2. System-level 256-step walk
// ---------------------------------------------------------------------

/// Byte-level comparison key: generated programs are free to overflow
/// to `inf`/`NaN` over a long walk, and `f64`'s `PartialEq` would call
/// two byte-identical NaN frames unequal — so all walk comparisons go
/// through the `Debug` rendering, which is the byte-identity the VM
/// contract promises anyway.
fn dbg<T: std::fmt::Debug>(t: T) -> String {
    format!("{t:?}")
}

/// A fault's identity minus its step accounting: `fuel_spent` is
/// `cost.steps`, which the parity contract deliberately excludes (the
/// VM ticks per instruction, the walker per AST node). Everything else
/// — kind, page, error, version — must agree exactly.
fn dbg_fault(f: &alive_core::fault::Fault) -> String {
    format!(
        "Fault {{ kind: {:?}, page: {:?}, error: {:?}, version: {:?} }}",
        f.kind, f.page, f.error, f.version
    )
}

/// Comparison key for a fallible outcome, fault steps normalized out.
fn dbg_outcome<T: std::fmt::Debug>(r: &Result<T, alive_core::fault::Fault>) -> String {
    match r {
        Ok(v) => format!("Ok({v:?})"),
        Err(f) => format!("Err({})", dbg_fault(f)),
    }
}

/// Assert every observable piece of state agrees between the VM-engine
/// and bigstep-engine systems.
fn assert_systems_agree(vm_sys: &System, bs_sys: &System, step: usize) -> Result<(), String> {
    prop_assert_eq!(
        dbg(vm_sys.store()),
        dbg(bs_sys.store()),
        "stores at step {}",
        step
    );
    prop_assert_eq!(
        dbg(vm_sys.queue()),
        dbg(bs_sys.queue()),
        "queues at step {}",
        step
    );
    prop_assert_eq!(
        dbg(vm_sys.page_stack()),
        dbg(bs_sys.page_stack()),
        "page stacks at step {}",
        step
    );
    prop_assert_eq!(
        dbg(vm_sys.widgets()),
        dbg(bs_sys.widgets()),
        "view state at step {}",
        step
    );
    Ok(())
}

/// Drive both systems through one action + cascade + render, asserting
/// agreement at every point. `step` labels failures; `width` is the tap
/// fan (how many top-level boxes the random taps may address — misses
/// included on purpose, both engines must agree on the error too).
fn walk_step_wide(
    rng: &mut Rng,
    vm_sys: &mut System,
    bs_sys: &mut System,
    step: usize,
    width: usize,
) -> Result<(), String> {
    match rng.below(6) {
        // Tap a random (possibly nonexistent) box: both engines must
        // agree on the error too.
        0..=3 => {
            let path = [rng.below(width)];
            let a = vm_sys.tap(&path);
            let b = bs_sys.tap(&path);
            prop_assert_eq!(a, b, "tap outcome at step {}", step);
        }
        4 => {
            vm_sys.back();
            bs_sys.back();
        }
        _ => {} // plain re-render below
    }
    let a = vm_sys.run_to_stable();
    let b = bs_sys.run_to_stable();
    prop_assert_eq!(
        dbg_outcome(&a),
        dbg_outcome(&b),
        "cascade outcome at step {}",
        step
    );
    assert_systems_agree(vm_sys, bs_sys, step)?;

    let vm_frame = vm_sys.rendered().cloned();
    let bs_frame = bs_sys.rendered().cloned();
    prop_assert_eq!(
        dbg_outcome(&vm_frame),
        dbg_outcome(&bs_frame),
        "frame bytes at step {}",
        step
    );
    assert_systems_agree(vm_sys, bs_sys, step)
}

/// The generated-program walk: a six-box tap fan.
fn walk_step(
    rng: &mut Rng,
    vm_sys: &mut System,
    bs_sys: &mut System,
    step: usize,
) -> Result<(), String> {
    walk_step_wide(rng, vm_sys, bs_sys, step, 6)
}

#[test]
fn vm_system_walk_matches_bigstep_system() {
    prop::check(
        "vm_system_walk_matches_bigstep_system",
        prop::Config::with_cases(24),
        |rng| NoShrink((arb_walk_program(rng), rng.fork())),
        |case: &NoShrink<(String, Rng)>| {
            let (src, walk_rng) = &case.0;
            let mut rng = walk_rng.clone();
            let program = compile(src).expect("generated programs are well-typed");
            let config = SystemConfig {
                fuel: 200_000,
                max_transitions: 500,
                ..SystemConfig::default()
            };
            let mut vm_sys = System::with_config(program.clone(), config);
            let mut bs_sys = System::with_config(
                program,
                SystemConfig {
                    engine: EvalEngine::Bigstep,
                    ..config
                },
            );
            for step in 0..256 {
                walk_step(&mut rng, &mut vm_sys, &mut bs_sys, step)?;
            }
            let stats = vm_sys.vm_stats();
            prop_assert!(stats.runs > 0, "the VM actually ran: {:?}", stats);
            prop_assert_eq!(stats.fallbacks, 0, "no silent fallbacks: {:?}", stats);
            let bs_stats = bs_sys.vm_stats();
            prop_assert_eq!(bs_stats.runs, 0, "bigstep engine never ran the VM");
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// 3. Fault injection: identical faults, byte-identical rollbacks
// ---------------------------------------------------------------------

#[test]
fn injected_faults_roll_back_identically_on_both_engines() {
    prop::check(
        "injected_faults_roll_back_identically_on_both_engines",
        prop::Config::with_cases(24),
        |rng| {
            // The fault schedule is part of the case, so a replayed seed
            // reproduces the injections exactly. Prim-call schedules
            // only: fuel throttling is engine-visible (the VM ticks per
            // instruction, the walker per AST node), so it is exactly
            // the kind of fault the engines may *not* agree on.
            let fail_at: Vec<u64> = (0..3).map(|_| rng.below(40) as u64 + 1).collect();
            NoShrink((arb_walk_program(rng), rng.fork(), fail_at))
        },
        |case: &NoShrink<(String, Rng, Vec<u64>)>| {
            let (src, walk_rng, fail_at) = &case.0;
            let mut rng = walk_rng.clone();
            let program = compile(src).expect("generated programs are well-typed");
            let config = SystemConfig {
                fuel: 200_000,
                max_transitions: 500,
                ..SystemConfig::default()
            };
            let mut vm_sys = System::with_config(program.clone(), config);
            let mut bs_sys = System::with_config(
                program,
                SystemConfig {
                    engine: EvalEngine::Bigstep,
                    ..config
                },
            );
            // One plan per system (each advances its own call counter),
            // built from the same schedule.
            let make_plan = || {
                let mut plan = FaultPlan::new();
                for &n in fail_at {
                    plan = plan.fail_prim(Prim::MathAbs, n);
                }
                plan.shared()
            };
            let vm_plan = make_plan();
            let bs_plan = make_plan();
            vm_sys.set_fault_injector(vm_plan.clone());
            bs_sys.set_fault_injector(bs_plan.clone());

            for step in 0..64 {
                walk_step(&mut rng, &mut vm_sys, &mut bs_sys, step)?;
            }

            // Both engines saw the identical prim-call sequence, so the
            // schedules fired identically.
            let (vp, bp) = (
                lock_plan(&vm_plan).injected(),
                lock_plan(&bs_plan).injected(),
            );
            prop_assert_eq!(vp, bp, "identical injection counts");
            let (vc, bc) = (
                lock_plan(&vm_plan).prim_calls(),
                lock_plan(&bs_plan).prim_calls(),
            );
            prop_assert_eq!(vc, bc, "identical prim-call counts");
            prop_assert_eq!(vm_sys.vm_stats().fallbacks, 0, "no silent fallbacks");

            // Checkpoint byte-identity: the persisted snapshots of both
            // systems serialize to the same bytes after all rollbacks.
            let vm_snap = vm_sys.snapshot().expect("snapshots");
            let bs_snap = bs_sys.snapshot().expect("snapshots");
            prop_assert_eq!(vm_snap, bs_snap, "post-rollback snapshot bytes");
            Ok(())
        },
    );
}

fn lock_plan(
    plan: &std::sync::Arc<std::sync::Mutex<FaultPlan>>,
) -> std::sync::MutexGuard<'_, FaultPlan> {
    plan.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// 4. Corpus: every scenario program, walked differentially
// ---------------------------------------------------------------------

/// Every program of the scenario corpus — 5 kinds × 4 sizes — drives a
/// VM-engine and a bigstep-engine system through the same seeded walk;
/// stores, queues, stacks, view state, and frames must stay
/// byte-identical, and the example probes must agree value-for-value on
/// the walked store. Seed-replayable per program: a failure prints the
/// seed and `ALIVE_TESTKIT_SEED=<seed>` reruns the identical walk.
#[test]
fn vm_system_walk_matches_bigstep_on_every_corpus_program() {
    for entry in alive_corpus::corpus() {
        let name = entry.spec.name();
        // Tap fan sized to the program: header + rows + trailing
        // buttons, plus deliberate misses past the end.
        let width = entry.spec.size.rows() + 4;
        let program = compile(&entry.source)
            .unwrap_or_else(|e| panic!("{name}: corpus programs are well-typed: {e}"));
        prop::check(
            &format!("corpus_walk_{name}"),
            prop::Config::with_cases(2),
            |rng| NoShrink(rng.fork()),
            |case: &NoShrink<Rng>| {
                let mut rng = case.0.clone();
                let config = SystemConfig {
                    fuel: 2_000_000,
                    max_transitions: 500,
                    ..SystemConfig::default()
                };
                let mut vm_sys = System::with_config(program.clone(), config);
                let mut bs_sys = System::with_config(
                    program.clone(),
                    SystemConfig {
                        engine: EvalEngine::Bigstep,
                        ..config
                    },
                );
                for step in 0..48 {
                    walk_step_wide(&mut rng, &mut vm_sys, &mut bs_sys, step, width)?;
                }
                prop_assert!(vm_sys.vm_stats().runs > 0, "the VM actually ran");
                prop_assert_eq!(vm_sys.vm_stats().fallbacks, 0, "no silent fallbacks");

                // Example probes: byte-identical VM vs bigstep values
                // against the walked (not initial) store.
                let vmp = program.vm().expect("corpus programs compile to bytecode");
                let mut scratch = vm::Scratch::new();
                for (index, def) in program.examples().iter().enumerate() {
                    for (expect, expr) in [(false, Some(&def.body)), (true, def.expect.as_ref())] {
                        let Some(expr) = expr else { continue };
                        let vm_run = vm::run_example(
                            &vmp,
                            &mut scratch,
                            vm_sys.store(),
                            vm_sys.version(),
                            FUEL,
                            index,
                            expect,
                        )
                        .expect("example slot exists");
                        let bs = bigstep::run_pure(
                            &program,
                            bs_sys.store(),
                            bs_sys.version(),
                            FUEL,
                            expr,
                        )
                        .map(|(v, _)| v);
                        prop_assert_eq!(
                            dbg(&vm_run.result),
                            dbg(&bs),
                            "probe `{}` (expect={}) diverged",
                            def.name,
                            expect
                        );
                    }
                }
                Ok(())
            },
        );
    }
}
