//! Quick smoke: VM engine actually runs (no silent all-fallback).
use alive_core::system::{EvalEngine, System, SystemConfig};

fn compile(src: &str) -> alive_core::program::Program {
    alive_core::compile(src).expect("compiles")
}

#[test]
fn vm_runs_and_never_falls_back() {
    let src = "
        global total : number = 0
        fun bump(n : number) : number state {
            total := total + n;
            total
        }
        page start() {
            init { bump(1); bump(2); }
            render { boxed { post \"total is \" ++ total; } }
        }";
    let mut sys = System::with_config(compile(src), SystemConfig::default());
    sys.run_to_stable().expect("stable");
    let frame = sys.rendered().expect("renders").clone();
    let stats = sys.vm_stats();
    eprintln!("vm_stats = {stats:?}");
    eprintln!("frame = {frame:?}");
    assert!(
        stats.runs >= 2,
        "VM should have run init + render: {stats:?}"
    );
    assert_eq!(stats.fallbacks, 0, "no fallbacks expected: {stats:?}");
    assert_eq!(stats.compiles, 1);
    assert!(stats.instructions > 0);

    let mut tw = System::with_config(
        compile(src),
        SystemConfig {
            engine: EvalEngine::Bigstep,
            ..SystemConfig::default()
        },
    );
    tw.run_to_stable().expect("stable");
    let frame2 = tw.rendered().expect("renders").clone();
    assert_eq!(
        format!("{frame:?}"),
        format!("{frame2:?}"),
        "frames must be byte-identical"
    );
}
