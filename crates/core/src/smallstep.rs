//! The faithful small-step substitution machine — the paper's Figure 8.
//!
//! Expressions reduce by textual substitution exactly as in the calculus:
//!
//! * `→p` (pure): EP-FUN (global function unfolding), EP-APP (β by
//!   substitution), EP-TUPLE (projection), EP-GLOBAL-1/2 (global reads);
//! * `→s` (standard): ES-PURE, ES-ASSIGN, ES-PUSH, ES-POP;
//! * `→r` (render): ER-PURE, ER-POST, ER-ATTR, ER-BOXED (which performs
//!   the nested `→r*` reduction of the box body).
//!
//! The conservative extensions reduce by their standard rules (`if` on
//! a boolean value, `while` by unfolding to `if`, `let` by substitution,
//! loops by unrolling); local *assignment* is the one construct that has
//! no substitution semantics and is rejected with
//! [`RuntimeError::NotInKernel`].
//!
//! This machine exists for fidelity, not speed: tests cross-check it
//! against [`crate::bigstep`] and the E7 ablation bench measures the
//! cost of faithfulness.

use crate::boxtree::{BoxItem, BoxNode};
use crate::error::RuntimeError;
use crate::event::{Event, EventQueue};
use crate::expr::{Expr, ExprKind, LambdaExpr};
use crate::program::Program;
use crate::store::Store;
use crate::types::{Effect, Name};
use crate::value::{Closure, Value};
use alive_syntax::ast::{BinOp, UnOp};
use alive_syntax::Span;
use std::sync::Arc;

/// Per-mode step counters, for the ablation bench and for tests that
/// assert e.g. "render evaluation performs no state steps".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepCounts {
    /// `→p` steps (EP-* rules and pure extension rules).
    pub pure: u64,
    /// `→s`-only steps (ES-ASSIGN, ES-PUSH, ES-POP).
    pub state: u64,
    /// `→r`-only steps (ER-POST, ER-ATTR, ER-BOXED).
    pub render: u64,
}

impl StepCounts {
    /// Total steps across all modes.
    pub fn total(&self) -> u64 {
        self.pure + self.state + self.render
    }
}

/// The reduction rule applied by one small step, for tracing
/// derivations. The `Ep*`/`Es*`/`Er*` rules are the paper's Figure 8
/// verbatim; the `X*` rules are the documented conservative extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Rule {
    EpFun,
    EpApp,
    EpTuple,
    EpGlobal1,
    EpGlobal2,
    EsAssign,
    EsPush,
    EsPop,
    ErPost,
    ErAttr,
    ErBoxed,
    XLet,
    XSeq,
    XIf,
    XWhile,
    XFor,
    XForeach,
    XShortCircuit,
    XOp,
}

impl Rule {
    /// The rule's name as written in the paper (or `X-*` for
    /// extensions).
    pub fn name(self) -> &'static str {
        match self {
            Rule::EpFun => "EP-FUN",
            Rule::EpApp => "EP-APP",
            Rule::EpTuple => "EP-TUPLE",
            Rule::EpGlobal1 => "EP-GLOBAL-1",
            Rule::EpGlobal2 => "EP-GLOBAL-2",
            Rule::EsAssign => "ES-ASSIGN",
            Rule::EsPush => "ES-PUSH",
            Rule::EsPop => "ES-POP",
            Rule::ErPost => "ER-POST",
            Rule::ErAttr => "ER-ATTR",
            Rule::ErBoxed => "ER-BOXED",
            Rule::XLet => "X-LET",
            Rule::XSeq => "X-SEQ",
            Rule::XIf => "X-IF",
            Rule::XWhile => "X-WHILE",
            Rule::XFor => "X-FOR",
            Rule::XForeach => "X-FOREACH",
            Rule::XShortCircuit => "X-SHORTCIRCUIT",
            Rule::XOp => "X-OP",
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a small-step run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallStepOutput {
    /// The final value.
    pub value: Value,
    /// Steps taken, by mode.
    pub steps: StepCounts,
    /// Box content built (render runs only).
    pub root: Option<BoxNode>,
    /// The rules applied, in order (traced runs only).
    pub trace: Option<Vec<Rule>>,
}

/// Reduce `expr` to a value in state mode (`→s*`).
///
/// # Errors
///
/// [`RuntimeError::FuelExhausted`] on divergence, or kernel violations.
pub fn eval_state(
    program: &Program,
    store: &mut Store,
    queue: &mut EventQueue,
    fuel: u64,
    expr: &Expr,
) -> Result<SmallStepOutput, RuntimeError> {
    let mut machine = Machine {
        program,
        store,
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        fuel,
        steps: StepCounts::default(),
        trace: None,
    };
    let value = machine.reduce_to_value(expr.clone())?;
    Ok(SmallStepOutput {
        value,
        steps: machine.steps,
        root: None,
        trace: machine.trace,
    })
}

/// Reduce `expr` to a value in render mode (`→r*`), building box content.
///
/// # Errors
///
/// See [`eval_state`].
pub fn eval_render(
    program: &Program,
    store: &mut Store,
    fuel: u64,
    expr: &Expr,
) -> Result<SmallStepOutput, RuntimeError> {
    let mut machine = Machine {
        program,
        store,
        queue: None,
        mode: Effect::Render,
        boxes: vec![BoxNode::new(None)],
        fuel,
        steps: StepCounts::default(),
        trace: None,
    };
    let value = machine.reduce_to_value(expr.clone())?;
    let root = machine
        .boxes
        .pop()
        .ok_or(RuntimeError::Internal("no open box frame in render"))?;
    Ok(SmallStepOutput {
        value,
        steps: machine.steps,
        root: Some(root),
        trace: machine.trace,
    })
}

/// Reduce `expr` to a value in pure mode (`→p*`).
///
/// # Errors
///
/// See [`eval_state`].
pub fn eval_pure(
    program: &Program,
    store: &mut Store,
    fuel: u64,
    expr: &Expr,
) -> Result<SmallStepOutput, RuntimeError> {
    let mut machine = Machine {
        program,
        store,
        queue: None,
        mode: Effect::Pure,
        boxes: Vec::new(),
        fuel,
        steps: StepCounts::default(),
        trace: None,
    };
    let value = machine.reduce_to_value(expr.clone())?;
    Ok(SmallStepOutput {
        value,
        steps: machine.steps,
        root: None,
        trace: machine.trace,
    })
}

/// Like [`eval_state`], but records the [`Rule`] applied by every step
/// — a machine-checked derivation of the Fig. 8 reduction sequence.
///
/// # Errors
///
/// See [`eval_state`].
pub fn eval_state_traced(
    program: &Program,
    store: &mut Store,
    queue: &mut EventQueue,
    fuel: u64,
    expr: &Expr,
) -> Result<SmallStepOutput, RuntimeError> {
    let mut machine = Machine {
        program,
        store,
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        fuel,
        steps: StepCounts::default(),
        trace: Some(Vec::new()),
    };
    let value = machine.reduce_to_value(expr.clone())?;
    Ok(SmallStepOutput {
        value,
        steps: machine.steps,
        root: None,
        trace: machine.trace,
    })
}

/// Like [`eval_render`], but records the [`Rule`] applied by every step.
///
/// # Errors
///
/// See [`eval_state`].
pub fn eval_render_traced(
    program: &Program,
    store: &mut Store,
    fuel: u64,
    expr: &Expr,
) -> Result<SmallStepOutput, RuntimeError> {
    let mut machine = Machine {
        program,
        store,
        queue: None,
        mode: Effect::Render,
        boxes: vec![BoxNode::new(None)],
        fuel,
        steps: StepCounts::default(),
        trace: Some(Vec::new()),
    };
    let value = machine.reduce_to_value(expr.clone())?;
    let root = machine
        .boxes
        .pop()
        .ok_or(RuntimeError::Internal("no open box frame in render"))?;
    Ok(SmallStepOutput {
        value,
        steps: machine.steps,
        root: Some(root),
        trace: machine.trace,
    })
}

/// An interactive single-stepper over the substitution machine — the
/// §5 "future work" debugger angle made concrete: watch a batch
/// computation reduce rule by rule, with the intermediate expressions
/// visible ([`crate::pretty::pretty_expr`] renders them).
pub struct Stepper<'a> {
    machine: Machine<'a>,
    current: Expr,
}

impl<'a> Stepper<'a> {
    /// A stepper over `expr` in state mode.
    pub fn new_state(
        program: &'a Program,
        store: &'a mut Store,
        queue: &'a mut EventQueue,
        fuel: u64,
        expr: Expr,
    ) -> Self {
        Stepper {
            machine: Machine {
                program,
                store,
                queue: Some(queue),
                mode: Effect::State,
                boxes: Vec::new(),
                fuel,
                steps: StepCounts::default(),
                trace: Some(Vec::new()),
            },
            current: expr,
        }
    }

    /// A stepper over `expr` in pure mode.
    pub fn new_pure(program: &'a Program, store: &'a mut Store, fuel: u64, expr: Expr) -> Self {
        Stepper {
            machine: Machine {
                program,
                store,
                queue: None,
                mode: Effect::Pure,
                boxes: Vec::new(),
                fuel,
                steps: StepCounts::default(),
                trace: Some(Vec::new()),
            },
            current: expr,
        }
    }

    /// The expression as reduced so far.
    pub fn current(&self) -> &Expr {
        &self.current
    }

    /// Whether the expression is fully reduced to a value.
    pub fn is_done(&self) -> bool {
        is_value(&self.current)
    }

    /// The final value, once done.
    pub fn value(&self) -> Option<Value> {
        if self.is_done() {
            expr_to_value(&self.current).ok()
        } else {
            None
        }
    }

    /// Take one small step; returns the rule applied, or `None` if the
    /// expression was already a value. (A congruence descent may apply
    /// several inner rules in one visible rewrite — e.g. ER-BOXED fully
    /// reduces its body — in which case the *last* rule is reported and
    /// the full sequence is available from [`Stepper::trace`].)
    ///
    /// # Errors
    ///
    /// See [`eval_state`].
    pub fn step(&mut self) -> Result<Option<Rule>, RuntimeError> {
        if self.is_done() {
            return Ok(None);
        }
        let expr = std::mem::replace(&mut self.current, Expr::unit(Span::DUMMY));
        self.current = self.machine.step(expr)?;
        Ok(self.machine.trace.as_ref().and_then(|t| t.last()).copied())
    }

    /// All rules applied so far.
    pub fn trace(&self) -> &[Rule] {
        self.machine.trace.as_deref().unwrap_or(&[])
    }

    /// Per-mode step counts so far.
    pub fn counts(&self) -> StepCounts {
        self.machine.steps
    }
}

/// Is this expression a value of the calculus (Fig. 6 `v`)?
pub fn is_value(expr: &Expr) -> bool {
    match &expr.kind {
        ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::ColorLit(_)
        | ExprKind::Lambda(_)
        | ExprKind::PrimRef(_) => true,
        ExprKind::Tuple(elems) | ExprKind::ListLit(elems) => elems.iter().all(is_value),
        _ => false,
    }
}

/// Convert a value-expression to a [`Value`].
///
/// # Errors
///
/// [`RuntimeError::NotInKernel`] if the expression is not a value.
pub fn expr_to_value(expr: &Expr) -> Result<Value, RuntimeError> {
    match &expr.kind {
        ExprKind::Num(n) => Ok(Value::Number(*n)),
        ExprKind::Str(s) => Ok(Value::Str(s.clone())),
        ExprKind::Bool(b) => Ok(Value::Bool(*b)),
        ExprKind::ColorLit(c) => Ok(Value::Color(*c)),
        ExprKind::PrimRef(p) => Ok(Value::Prim(*p)),
        ExprKind::Tuple(elems) => {
            let vs: Result<Vec<Value>, _> = elems.iter().map(expr_to_value).collect();
            Ok(Value::tuple(vs?))
        }
        ExprKind::ListLit(elems) => {
            let vs: Result<Vec<Value>, _> = elems.iter().map(expr_to_value).collect();
            Ok(Value::list(vs?))
        }
        // A substitution-machine lambda is closed over by substitution;
        // it corresponds to a closure with an empty environment.
        ExprKind::Lambda(lam) => Ok(Value::Closure(Arc::new(Closure {
            params: lam.params.clone(),
            effect: lam.effect,
            body: lam.body.clone(),
            env: Arc::new(Vec::new()),
            version: 0,
        }))),
        _ => Err(RuntimeError::NotInKernel("non-value expression")),
    }
}

/// Convert a [`Value`] to a value-expression (for EP-GLOBAL reads).
pub fn value_to_expr(value: &Value, span: Span) -> Expr {
    let kind = match value {
        Value::Number(n) => ExprKind::Num(*n),
        Value::Str(s) => ExprKind::Str(s.clone()),
        Value::Bool(b) => ExprKind::Bool(*b),
        Value::Color(c) => ExprKind::ColorLit(*c),
        Value::Prim(p) => ExprKind::PrimRef(*p),
        Value::Tuple(vs) => ExprKind::Tuple(vs.iter().map(|v| value_to_expr(v, span)).collect()),
        Value::List(vs) => ExprKind::ListLit(vs.iter().map(|v| value_to_expr(v, span)).collect()),
        Value::WidgetRef(_) => {
            // View-state references have no substitution semantics; the
            // kernel machine rejects `remember` before one can appear.
            unreachable!("widget references never reach the kernel machine")
        }
        Value::Closure(c) => {
            // Closures re-enter the machine as lambdas whose captured
            // environment is substituted into the body.
            let mut body = (*c.body).clone();
            let param_names: Vec<&Name> = c.params.iter().map(|p| &p.name).collect();
            for (name, captured) in c.env.iter() {
                if param_names.contains(&name) {
                    continue; // parameter shadows the captured binding
                }
                body = subst(&body, name, &value_to_expr(captured, span));
            }
            ExprKind::Lambda(Arc::new(LambdaExpr {
                params: c.params.clone(),
                effect: c.effect,
                body: Arc::new(body),
            }))
        }
    };
    Expr::new(kind, span)
}

/// Capture-avoiding substitution `e[v/x]` where `v` is a closed value
/// expression.
pub fn subst(expr: &Expr, name: &Name, replacement: &Expr) -> Expr {
    let span = expr.span;
    let kind = match &expr.kind {
        ExprKind::Local(n) if n == name => return replacement.clone(),
        ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::ColorLit(_)
        | ExprKind::Local(_)
        | ExprKind::Global(_)
        | ExprKind::FunRef(_)
        | ExprKind::PrimRef(_)
        | ExprKind::PopPage => expr.kind.clone(),
        ExprKind::Tuple(es) => {
            ExprKind::Tuple(es.iter().map(|e| subst(e, name, replacement)).collect())
        }
        ExprKind::ListLit(es) => {
            ExprKind::ListLit(es.iter().map(|e| subst(e, name, replacement)).collect())
        }
        ExprKind::Proj(e, i) => ExprKind::Proj(Box::new(subst(e, name, replacement)), *i),
        ExprKind::Call(f, args) => ExprKind::Call(
            Box::new(subst(f, name, replacement)),
            args.iter().map(|a| subst(a, name, replacement)).collect(),
        ),
        ExprKind::Lambda(lam) => {
            if lam.params.iter().any(|p| &p.name == name) {
                // The parameter shadows `name`.
                expr.kind.clone()
            } else {
                ExprKind::Lambda(Arc::new(LambdaExpr {
                    params: lam.params.clone(),
                    effect: lam.effect,
                    body: Arc::new(subst(&lam.body, name, replacement)),
                }))
            }
        }
        ExprKind::Let {
            name: bound,
            ty,
            value,
            body,
        } => {
            let new_value = subst(value, name, replacement);
            let new_body = if bound == name {
                (**body).clone() // shadowed
            } else {
                subst(body, name, replacement)
            };
            ExprKind::Let {
                name: bound.clone(),
                ty: ty.clone(),
                value: Box::new(new_value),
                body: Box::new(new_body),
            }
        }
        ExprKind::Seq(a, b) => ExprKind::Seq(
            Box::new(subst(a, name, replacement)),
            Box::new(subst(b, name, replacement)),
        ),
        ExprKind::If(c, t, e) => ExprKind::If(
            Box::new(subst(c, name, replacement)),
            Box::new(subst(t, name, replacement)),
            Box::new(subst(e, name, replacement)),
        ),
        ExprKind::While(c, b) => ExprKind::While(
            Box::new(subst(c, name, replacement)),
            Box::new(subst(b, name, replacement)),
        ),
        ExprKind::ForRange { var, lo, hi, body } => {
            let new_body = if var == name {
                (**body).clone()
            } else {
                subst(body, name, replacement)
            };
            ExprKind::ForRange {
                var: var.clone(),
                lo: Box::new(subst(lo, name, replacement)),
                hi: Box::new(subst(hi, name, replacement)),
                body: Box::new(new_body),
            }
        }
        ExprKind::Foreach { var, list, body } => {
            let new_body = if var == name {
                (**body).clone()
            } else {
                subst(body, name, replacement)
            };
            ExprKind::Foreach {
                var: var.clone(),
                list: Box::new(subst(list, name, replacement)),
                body: Box::new(new_body),
            }
        }
        ExprKind::LocalAssign(n, e) => {
            ExprKind::LocalAssign(n.clone(), Box::new(subst(e, name, replacement)))
        }
        ExprKind::WidgetRead(n) => ExprKind::WidgetRead(n.clone()),
        ExprKind::WidgetWrite(n, e) => {
            ExprKind::WidgetWrite(n.clone(), Box::new(subst(e, name, replacement)))
        }
        ExprKind::Remember {
            id,
            name: bound,
            ty,
            init,
            body,
        } => {
            let new_init = subst(init, name, replacement);
            let new_body = if bound == name {
                (**body).clone() // shadowed
            } else {
                subst(body, name, replacement)
            };
            ExprKind::Remember {
                id: *id,
                name: bound.clone(),
                ty: ty.clone(),
                init: Box::new(new_init),
                body: Box::new(new_body),
            }
        }
        ExprKind::GlobalAssign(g, e) => {
            ExprKind::GlobalAssign(g.clone(), Box::new(subst(e, name, replacement)))
        }
        ExprKind::PushPage(p, args) => ExprKind::PushPage(
            p.clone(),
            args.iter().map(|a| subst(a, name, replacement)).collect(),
        ),
        ExprKind::Boxed(id, e) => ExprKind::Boxed(*id, Box::new(subst(e, name, replacement))),
        ExprKind::Post(e) => ExprKind::Post(Box::new(subst(e, name, replacement))),
        ExprKind::SetAttr(a, e) => ExprKind::SetAttr(*a, Box::new(subst(e, name, replacement))),
        ExprKind::Binary(op, l, r) => ExprKind::Binary(
            *op,
            Box::new(subst(l, name, replacement)),
            Box::new(subst(r, name, replacement)),
        ),
        ExprKind::Unary(op, e) => ExprKind::Unary(*op, Box::new(subst(e, name, replacement))),
    };
    Expr::new(kind, span)
}

struct Machine<'a> {
    program: &'a Program,
    store: &'a mut Store,
    queue: Option<&'a mut EventQueue>,
    mode: Effect,
    boxes: Vec<BoxNode>,
    fuel: u64,
    steps: StepCounts,
    /// When present, every applied rule is appended here.
    trace: Option<Vec<Rule>>,
}

impl Machine<'_> {
    fn tick(&mut self, class: Effect, rule: Rule) -> Result<(), RuntimeError> {
        match class {
            Effect::Pure => self.steps.pure += 1,
            Effect::State => self.steps.state += 1,
            Effect::Render => self.steps.render += 1,
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push(rule);
        }
        if self.fuel == 0 {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// The innermost open box frame; a missing frame is an interpreter
    /// invariant breach surfaced as a contained runtime error rather
    /// than a panic.
    fn current_box(&mut self) -> Result<&mut BoxNode, RuntimeError> {
        self.boxes
            .last_mut()
            .ok_or(RuntimeError::Internal("no open box frame in render"))
    }

    fn reduce_to_value(&mut self, mut expr: Expr) -> Result<Value, RuntimeError> {
        while !is_value(&expr) {
            expr = self.step(expr)?;
        }
        expr_to_value(&expr)
    }

    /// One small step of `→µ`. The congruence traversal implements the
    /// evaluation contexts `E` of Fig. 6: leftmost-innermost reduction.
    fn step(&mut self, expr: Expr) -> Result<Expr, RuntimeError> {
        let span = expr.span;
        let unit = || Expr::unit(span);
        match expr.kind {
            // -- congruence / redexes for the kernel forms ---------------
            ExprKind::Tuple(elems) => {
                let elems = self.step_first_non_value(elems)?;
                Ok(Expr::new(ExprKind::Tuple(elems), span))
            }
            ExprKind::ListLit(elems) => {
                let elems = self.step_first_non_value(elems)?;
                Ok(Expr::new(ExprKind::ListLit(elems), span))
            }
            ExprKind::Proj(base, index) => {
                if is_value(&base) {
                    // (EP-TUPLE)
                    self.tick(Effect::Pure, Rule::EpTuple)?;
                    let ExprKind::Tuple(elems) = base.kind else {
                        return Err(RuntimeError::TypeMismatch {
                            expected: "tuple",
                            found: format!("{:?}", base.kind),
                        });
                    };
                    let i = index as usize;
                    if i >= 1 && i <= elems.len() {
                        Ok(elems[i - 1].clone())
                    } else {
                        Err(RuntimeError::ProjOutOfRange {
                            index,
                            len: elems.len(),
                        })
                    }
                } else {
                    let base = self.step(*base)?;
                    Ok(Expr::new(ExprKind::Proj(Box::new(base), index), span))
                }
            }
            ExprKind::FunRef(name) => {
                // (EP-FUN): unfold the definition to its lambda.
                self.tick(Effect::Pure, Rule::EpFun)?;
                let f = self
                    .program
                    .fun(&name)
                    .ok_or_else(|| RuntimeError::UnknownFun(name.clone()))?;
                Ok(Expr::new(
                    ExprKind::Lambda(Arc::new(LambdaExpr {
                        params: f.params.clone(),
                        effect: f.effect,
                        body: f.body.clone(),
                    })),
                    span,
                ))
            }
            ExprKind::Global(name) => {
                if let Some(v) = self.store.get(&name).cloned() {
                    // (EP-GLOBAL-1)
                    self.tick(Effect::Pure, Rule::EpGlobal1)?;
                    Ok(value_to_expr(&v, span))
                } else {
                    // (EP-GLOBAL-2)
                    self.tick(Effect::Pure, Rule::EpGlobal2)?;
                    let g = self
                        .program
                        .global(&name)
                        .ok_or_else(|| RuntimeError::UnknownGlobal(name.clone()))?;
                    Ok((*g.init).clone())
                }
            }
            ExprKind::Call(callee, args) => {
                if !is_value(&callee) {
                    let callee = self.step(*callee)?;
                    return Ok(Expr::new(ExprKind::Call(Box::new(callee), args), span));
                }
                if args.iter().any(|a| !is_value(a)) {
                    let args = self.step_first_non_value(args)?;
                    return Ok(Expr::new(ExprKind::Call(callee, args), span));
                }
                self.tick(Effect::Pure, Rule::EpApp)?;
                match &callee.kind {
                    // (EP-APP): β-reduce by substitution.
                    ExprKind::Lambda(lam) => {
                        if lam.params.len() != args.len() {
                            return Err(RuntimeError::ArityMismatch {
                                expected: lam.params.len(),
                                found: args.len(),
                            });
                        }
                        let mut body = (*lam.body).clone();
                        for (p, a) in lam.params.iter().zip(args.iter()) {
                            body = subst(&body, &p.name, a);
                        }
                        Ok(body)
                    }
                    ExprKind::PrimRef(p) => {
                        let argv: Result<Vec<Value>, _> = args.iter().map(expr_to_value).collect();
                        let mut ctx = crate::prim::PrimCtx::default();
                        let result = p.apply(&argv?, &mut ctx)?;
                        Ok(value_to_expr(&result, span))
                    }
                    other => Err(RuntimeError::NotAFunction(format!("{other:?}"))),
                }
            }
            ExprKind::GlobalAssign(name, value) => {
                if is_value(&value) {
                    // (ES-ASSIGN)
                    if self.mode != Effect::State {
                        return Err(RuntimeError::EffectViolation {
                            op: "g := e",
                            mode: self.mode,
                        });
                    }
                    self.tick(Effect::State, Rule::EsAssign)?;
                    if self.program.global(&name).is_none() {
                        return Err(RuntimeError::UnknownGlobal(name));
                    }
                    let v = expr_to_value(&value)?;
                    self.store.set(&*name, v);
                    Ok(unit())
                } else {
                    let value = self.step(*value)?;
                    Ok(Expr::new(
                        ExprKind::GlobalAssign(name, Box::new(value)),
                        span,
                    ))
                }
            }
            ExprKind::PushPage(name, args) => {
                if args.iter().any(|a| !is_value(a)) {
                    let args = self.step_first_non_value(args)?;
                    return Ok(Expr::new(ExprKind::PushPage(name, args), span));
                }
                // (ES-PUSH)
                if self.mode != Effect::State {
                    return Err(RuntimeError::EffectViolation {
                        op: "push",
                        mode: self.mode,
                    });
                }
                self.tick(Effect::State, Rule::EsPush)?;
                let argv: Result<Vec<Value>, _> = args.iter().map(expr_to_value).collect();
                let queue = self
                    .queue
                    .as_deref_mut()
                    .ok_or(RuntimeError::EffectViolation {
                        op: "push",
                        mode: Effect::Render,
                    })?;
                queue.enqueue(Event::Push(name, Value::tuple(argv?)));
                Ok(unit())
            }
            ExprKind::PopPage => {
                // (ES-POP)
                if self.mode != Effect::State {
                    return Err(RuntimeError::EffectViolation {
                        op: "pop",
                        mode: self.mode,
                    });
                }
                self.tick(Effect::State, Rule::EsPop)?;
                let queue = self
                    .queue
                    .as_deref_mut()
                    .ok_or(RuntimeError::EffectViolation {
                        op: "pop",
                        mode: Effect::Render,
                    })?;
                queue.enqueue(Event::Pop);
                Ok(unit())
            }
            ExprKind::Post(value) => {
                if is_value(&value) {
                    // (ER-POST)
                    if self.mode != Effect::Render || self.boxes.is_empty() {
                        return Err(RuntimeError::EffectViolation {
                            op: "post",
                            mode: self.mode,
                        });
                    }
                    self.tick(Effect::Render, Rule::ErPost)?;
                    let v = expr_to_value(&value)?;
                    self.current_box()?.items.push(BoxItem::Leaf(v, None));
                    Ok(unit())
                } else {
                    let value = self.step(*value)?;
                    Ok(Expr::new(ExprKind::Post(Box::new(value)), span))
                }
            }
            ExprKind::SetAttr(attr, value) => {
                if is_value(&value) {
                    // (ER-ATTR)
                    if self.mode != Effect::Render || self.boxes.is_empty() {
                        return Err(RuntimeError::EffectViolation {
                            op: "box.a := e",
                            mode: self.mode,
                        });
                    }
                    self.tick(Effect::Render, Rule::ErAttr)?;
                    let v = expr_to_value(&value)?;
                    self.current_box()?.items.push(BoxItem::Attr(attr, v, None));
                    Ok(unit())
                } else {
                    let value = self.step(*value)?;
                    Ok(Expr::new(ExprKind::SetAttr(attr, Box::new(value)), span))
                }
            }
            ExprKind::Boxed(id, body) => {
                // (ER-BOXED): fully reduce the body with a fresh box
                // content B′, then append ⟨B′⟩ and yield the body value.
                if self.mode != Effect::Render || self.boxes.is_empty() {
                    return Err(RuntimeError::EffectViolation {
                        op: "boxed",
                        mode: self.mode,
                    });
                }
                self.tick(Effect::Render, Rule::ErBoxed)?;
                self.boxes.push(BoxNode::new(Some(id)));
                let result = self.reduce_to_value(*body);
                let node = self
                    .boxes
                    .pop()
                    .ok_or(RuntimeError::Internal("no open box frame in render"))?;
                let value = result?;
                self.current_box()?
                    .items
                    .push(BoxItem::Child(std::sync::Arc::new(node)));
                Ok(value_to_expr(&value, span))
            }
            // -- conservative extensions --------------------------------
            ExprKind::Let {
                name,
                ty,
                value,
                body,
            } => {
                if is_value(&value) {
                    self.tick(Effect::Pure, Rule::XLet)?;
                    Ok(subst(&body, &name, &value))
                } else {
                    let value = self.step(*value)?;
                    Ok(Expr::new(
                        ExprKind::Let {
                            name,
                            ty,
                            value: Box::new(value),
                            body,
                        },
                        span,
                    ))
                }
            }
            ExprKind::Seq(a, b) => {
                if is_value(&a) {
                    self.tick(Effect::Pure, Rule::XSeq)?;
                    Ok(*b)
                } else {
                    let a = self.step(*a)?;
                    Ok(Expr::new(ExprKind::Seq(Box::new(a), b), span))
                }
            }
            ExprKind::If(c, t, e) => {
                if is_value(&c) {
                    self.tick(Effect::Pure, Rule::XIf)?;
                    match c.kind {
                        ExprKind::Bool(true) => Ok(*t),
                        ExprKind::Bool(false) => Ok(*e),
                        other => Err(RuntimeError::TypeMismatch {
                            expected: "bool",
                            found: format!("{other:?}"),
                        }),
                    }
                } else {
                    let c = self.step(*c)?;
                    Ok(Expr::new(ExprKind::If(Box::new(c), t, e), span))
                }
            }
            ExprKind::While(c, body) => {
                // while c { b }  →p  if c { b; while c { b } } else { () }
                self.tick(Effect::Pure, Rule::XWhile)?;
                let unrolled = Expr::new(
                    ExprKind::Seq(
                        body.clone(),
                        Box::new(Expr::new(ExprKind::While(c.clone(), body), span)),
                    ),
                    span,
                );
                Ok(Expr::new(
                    ExprKind::If(c, Box::new(unrolled), Box::new(unit())),
                    span,
                ))
            }
            ExprKind::ForRange { var, lo, hi, body } => {
                if !is_value(&lo) {
                    let lo = self.step(*lo)?;
                    return Ok(Expr::new(
                        ExprKind::ForRange {
                            var,
                            lo: Box::new(lo),
                            hi,
                            body,
                        },
                        span,
                    ));
                }
                if !is_value(&hi) {
                    let hi = self.step(*hi)?;
                    return Ok(Expr::new(
                        ExprKind::ForRange {
                            var,
                            lo,
                            hi: Box::new(hi),
                            body,
                        },
                        span,
                    ));
                }
                self.tick(Effect::Pure, Rule::XFor)?;
                let (ExprKind::Num(lo_n), ExprKind::Num(hi_n)) = (&lo.kind, &hi.kind) else {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "number",
                        found: "non-number loop bound".to_string(),
                    });
                };
                if lo_n < hi_n {
                    let iteration = subst(&body, &var, &lo);
                    let next = Expr::new(
                        ExprKind::ForRange {
                            var,
                            lo: Box::new(Expr::new(ExprKind::Num(lo_n + 1.0), span)),
                            hi,
                            body,
                        },
                        span,
                    );
                    Ok(Expr::new(
                        ExprKind::Seq(Box::new(iteration), Box::new(next)),
                        span,
                    ))
                } else {
                    Ok(unit())
                }
            }
            ExprKind::Foreach { var, list, body } => {
                if !is_value(&list) {
                    let list = self.step(*list)?;
                    return Ok(Expr::new(
                        ExprKind::Foreach {
                            var,
                            list: Box::new(list),
                            body,
                        },
                        span,
                    ));
                }
                self.tick(Effect::Pure, Rule::XForeach)?;
                let ExprKind::ListLit(elems) = &list.kind else {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "list",
                        found: format!("{:?}", list.kind),
                    });
                };
                match elems.split_first() {
                    None => Ok(unit()),
                    Some((head, rest)) => {
                        let iteration = subst(&body, &var, head);
                        let next = Expr::new(
                            ExprKind::Foreach {
                                var,
                                list: Box::new(Expr::new(ExprKind::ListLit(rest.to_vec()), span)),
                                body,
                            },
                            span,
                        );
                        Ok(Expr::new(
                            ExprKind::Seq(Box::new(iteration), Box::new(next)),
                            span,
                        ))
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                if !is_value(&l) {
                    let l = self.step(*l)?;
                    return Ok(Expr::new(ExprKind::Binary(op, Box::new(l), r), span));
                }
                // Short-circuit before reducing the right operand.
                if matches!(op, BinOp::And | BinOp::Or) {
                    self.tick(Effect::Pure, Rule::XShortCircuit)?;
                    return match (&l.kind, op) {
                        (ExprKind::Bool(false), BinOp::And) => {
                            Ok(Expr::new(ExprKind::Bool(false), span))
                        }
                        (ExprKind::Bool(true), BinOp::Or) => {
                            Ok(Expr::new(ExprKind::Bool(true), span))
                        }
                        (ExprKind::Bool(_), _) => Ok(*r),
                        _ => Err(RuntimeError::TypeMismatch {
                            expected: "bool",
                            found: format!("{:?}", l.kind),
                        }),
                    };
                }
                if !is_value(&r) {
                    let r = self.step(*r)?;
                    return Ok(Expr::new(ExprKind::Binary(op, l, Box::new(r)), span));
                }
                self.tick(Effect::Pure, Rule::XOp)?;
                let lv = expr_to_value(&l)?;
                let rv = expr_to_value(&r)?;
                let result = crate::bigstep::apply_binop(op, &lv, &rv)?;
                Ok(value_to_expr(&result, span))
            }
            ExprKind::Unary(op, e) => {
                if !is_value(&e) {
                    let e = self.step(*e)?;
                    return Ok(Expr::new(ExprKind::Unary(op, Box::new(e)), span));
                }
                self.tick(Effect::Pure, Rule::XOp)?;
                match (op, &e.kind) {
                    (UnOp::Neg, ExprKind::Num(n)) => Ok(Expr::new(ExprKind::Num(-n), span)),
                    (UnOp::Not, ExprKind::Bool(b)) => Ok(Expr::new(ExprKind::Bool(!b), span)),
                    (_, other) => Err(RuntimeError::TypeMismatch {
                        expected: "operand",
                        found: format!("{other:?}"),
                    }),
                }
            }
            ExprKind::LocalAssign(..) => Err(RuntimeError::NotInKernel("local assignment")),
            ExprKind::Remember { .. } | ExprKind::WidgetRead(_) | ExprKind::WidgetWrite(..) => {
                Err(RuntimeError::NotInKernel("view state (remember)"))
            }
            ExprKind::Local(name) => Err(RuntimeError::UnknownLocal(name)),
            // Values never reach `step`.
            ExprKind::Num(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::ColorLit(_)
            | ExprKind::Lambda(_)
            | ExprKind::PrimRef(_) => unreachable!("step called on a value"),
        }
    }

    fn step_first_non_value(&mut self, elems: Vec<Expr>) -> Result<Vec<Expr>, RuntimeError> {
        let mut out = Vec::with_capacity(elems.len());
        let mut stepped = false;
        for e in elems {
            if !stepped && !is_value(&e) {
                out.push(self.step(e)?);
                stepped = true;
            } else {
                out.push(e);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigstep;
    use crate::compile;

    const START: &str = "page start() { render { } }";

    fn compiled(src: &str) -> Program {
        compile(src).expect("compiles")
    }

    /// Cross-check: small-step and big-step agree on a nullary
    /// function's result and on the final store.
    fn agree_on_fun(src: &str, fun: &str, expected: Value) {
        let full = format!("{src}\n{START}");
        let p = compiled(&full);
        let f = p.fun(fun).expect("fun exists");
        assert!(
            f.params.is_empty(),
            "agree_on_fun only supports nullary funs"
        );
        let body = (*f.body).clone();

        let mut store1 = Store::new();
        let mut q1 = EventQueue::new();
        let small =
            eval_state(&p, &mut store1, &mut q1, 10_000_000, &body).expect("small-step evaluates");

        let mut store2 = Store::new();
        let mut q2 = EventQueue::new();
        let (big, _) = bigstep::run_state(&p, &mut store2, &mut q2, 0, 10_000_000, vec![], &body)
            .expect("big-step evaluates");

        assert_eq!(small.value, expected, "small-step result");
        assert_eq!(big, expected, "big-step result");
        assert_eq!(store1, store2, "stores agree");
    }

    #[test]
    fn arithmetic_agrees() {
        agree_on_fun(
            "fun f(): number pure { 1 + 2 * 3 - 4 / 2 }",
            "f",
            Value::Number(5.0),
        );
    }

    #[test]
    fn recursion_agrees() {
        agree_on_fun(
            "fun fib(n: number): number pure {
                 if n < 2 { n } else { fib(n - 1) + fib(n - 2) }
             }
             fun f(): number pure { fib(12) }",
            "f",
            Value::Number(144.0),
        );
    }

    #[test]
    fn let_and_lambda_agree() {
        agree_on_fun(
            "fun f(): number pure {
                 let add = fn(a: number, b: number) -> a + b;
                 let inc = fn(x: number) -> add(x, 1);
                 inc(inc(40))
             }",
            "f",
            Value::Number(42.0),
        );
    }

    #[test]
    fn while_loop_agrees_via_unfolding() {
        // Kernel-compatible loop: accumulate through a global, not a local.
        agree_on_fun(
            "global acc : number = 0
             global i : number = 1
             fun f(): number state {
                 while i <= 10 {
                     acc := acc + i;
                     i := i + 1;
                 }
                 acc
             }",
            "f",
            Value::Number(55.0),
        );
    }

    #[test]
    fn for_range_and_foreach_agree() {
        agree_on_fun(
            "global acc : number = 0
             fun f(): number state {
                 for i in 0 .. 5 { acc := acc + i; }
                 foreach x in [10, 20] { acc := acc + x; }
                 acc
             }",
            "f",
            Value::Number(40.0),
        );
    }

    #[test]
    fn render_box_trees_agree() {
        let p = compiled(
            "global items : list string = [\"a\", \"b\"]
             page start() {
                 render {
                     boxed {
                         box.margin := 3;
                         post \"hdr\";
                     }
                     foreach x in items {
                         boxed { post x; }
                     }
                 }
             }",
        );
        let page = p.page("start").expect("page");
        let mut store = Store::new();
        let small =
            eval_render(&p, &mut store, 10_000_000, &page.render).expect("small-step renders");
        let store2 = Store::new();
        let big = bigstep::run_render(&p, &store2, 0, 10_000_000, vec![], &page.render)
            .expect("big-step renders");
        assert_eq!(small.root.as_ref(), Some(&big.root));
        assert!(small.steps.render >= 3, "boxed/post/attr steps counted");
        assert_eq!(small.steps.state, 0, "render takes no state steps");
    }

    #[test]
    fn state_steps_enqueue_like_bigstep() {
        let p = compiled(
            "global n : number = 0
             page start() {
                 init { n := 7; push start(); pop; }
                 render { }
             }",
        );
        let page = p.page("start").expect("page");
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        let out = eval_state(&p, &mut store, &mut queue, 1_000_000, &page.init).expect("evaluates");
        assert!(out.value.is_unit());
        assert_eq!(store.get("n"), Some(&Value::Number(7.0)));
        assert_eq!(queue.len(), 2);
        assert!(out.steps.state >= 3, "assign + push + pop are state steps");
    }

    #[test]
    fn global_read_uses_store_then_init() {
        let p = compiled(&format!("global g : number = 5 {START}"));
        let read = Expr::new(ExprKind::Global(Arc::from("g")), Span::DUMMY);
        // EP-GLOBAL-2: not in store → initializer.
        let mut store = Store::new();
        let out = eval_pure(&p, &mut store, 1000, &read).expect("evaluates");
        assert_eq!(out.value, Value::Number(5.0));
        // EP-GLOBAL-1: store wins.
        let mut store = Store::new();
        store.set("g", Value::Number(9.0));
        let out = eval_pure(&p, &mut store, 1000, &read).expect("evaluates");
        assert_eq!(out.value, Value::Number(9.0));
    }

    #[test]
    fn local_assignment_is_rejected() {
        let p = compiled(&format!(
            "fun f(): number pure {{ let x = 1; x := 2; x }} {START}"
        ));
        let f = p.fun("f").expect("fun");
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        let err =
            eval_state(&p, &mut store, &mut queue, 1_000_000, &f.body).expect_err("not in kernel");
        assert_eq!(err, RuntimeError::NotInKernel("local assignment"));
    }

    #[test]
    fn state_ops_stuck_in_pure_mode() {
        let p = compiled(&format!("global g : number = 0 {START}"));
        let assign = Expr::new(
            ExprKind::GlobalAssign(
                Arc::from("g"),
                Box::new(Expr::new(ExprKind::Num(1.0), Span::DUMMY)),
            ),
            Span::DUMMY,
        );
        let mut store = Store::new();
        let err = eval_pure(&p, &mut store, 1000, &assign).expect_err("stuck");
        assert!(matches!(err, RuntimeError::EffectViolation { .. }));
    }

    #[test]
    fn divergence_exhausts_fuel() {
        let p = compiled(&format!(
            "fun spin(): () pure {{ while true {{ }} }} {START}"
        ));
        let f = p.fun("spin").expect("fun");
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        let err = eval_state(&p, &mut store, &mut queue, 10_000, &f.body).expect_err("diverges");
        assert_eq!(err, RuntimeError::FuelExhausted);
    }

    #[test]
    fn stepper_walks_a_reduction_sequence() {
        let p = compiled(&format!("global g : number = 40 {START}"));
        // g + (1 + 1) reduces: EP-GLOBAL-2, X-OP, X-OP.
        let expr = Expr::new(
            ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr::new(ExprKind::Global(Arc::from("g")), Span::DUMMY)),
                Box::new(Expr::new(
                    ExprKind::Binary(
                        BinOp::Add,
                        Box::new(Expr::new(ExprKind::Num(1.0), Span::DUMMY)),
                        Box::new(Expr::new(ExprKind::Num(1.0), Span::DUMMY)),
                    ),
                    Span::DUMMY,
                )),
            ),
            Span::DUMMY,
        );
        let mut store = Store::new();
        let mut stepper = Stepper::new_pure(&p, &mut store, 1000, expr);
        let mut rules = Vec::new();
        while !stepper.is_done() {
            rules.push(stepper.step().expect("steps").expect("applied a rule"));
        }
        assert_eq!(rules, vec![Rule::EpGlobal2, Rule::XOp, Rule::XOp]);
        assert_eq!(stepper.value(), Some(Value::Number(42.0)));
        assert_eq!(stepper.trace(), &rules[..]);
        assert_eq!(stepper.counts().total(), 3);
        // Stepping a finished expression is a no-op.
        let mut done = stepper;
        assert_eq!(done.step().expect("fine"), None);
    }

    #[test]
    fn subst_respects_shadowing() {
        let x: Name = Arc::from("x");
        let replacement = Expr::new(ExprKind::Num(9.0), Span::DUMMY);
        // (fn(x: number) -> x)  — substituting x must not touch the body.
        let lam = Expr::new(
            ExprKind::Lambda(Arc::new(LambdaExpr {
                params: Arc::from(vec![crate::expr::ParamSig::new("x", crate::Type::Number)]),
                effect: Effect::Pure,
                body: Arc::new(Expr::new(ExprKind::Local(x.clone()), Span::DUMMY)),
            })),
            Span::DUMMY,
        );
        let substituted = subst(&lam, &x, &replacement);
        assert_eq!(substituted, lam);
        // let x = 1; x — inner x shadowed by the binder.
        let let_expr = Expr::new(
            ExprKind::Let {
                name: x.clone(),
                ty: None,
                value: Box::new(Expr::new(ExprKind::Num(1.0), Span::DUMMY)),
                body: Box::new(Expr::new(ExprKind::Local(x.clone()), Span::DUMMY)),
            },
            Span::DUMMY,
        );
        let substituted = subst(&let_expr, &x, &replacement);
        assert_eq!(substituted, let_expr);
    }

    #[test]
    fn closure_roundtrips_through_value_conversion() {
        // A closure with captured environment converts to a lambda with
        // the captures substituted in.
        let p = compiled(&format!(
            "fun make(): number pure {{
                 let k = 32;
                 let f = fn(x: number) -> x + k;
                 f(10)
             }} {START}"
        ));
        let f = p.fun("make").expect("fun");
        let mut store = Store::new();
        let mut q = EventQueue::new();
        let out = eval_state(&p, &mut store, &mut q, 1_000_000, &f.body).expect("evaluates");
        assert_eq!(out.value, Value::Number(42.0));
    }
}
