//! Core expressions — the paper's Figure 6 expression grammar after
//! lowering (names resolved, attributes and primitives identified).
//!
//! The kernel constructs of Fig. 6 are all present: values, application,
//! global function references, tuples and projection, global reads and
//! writes, `push`/`pop`, `boxed`, `post`, and `box.a := e`. The extended
//! constructs (`let`, `if`, loops, operators, local assignment) are the
//! conservative extensions discussed in DESIGN.md; [`crate::smallstep`]
//! shows how each reduces within the paper's evaluation framework.

use crate::attr::Attr;
use crate::prim::Prim;
use crate::types::{Effect, Name, Type};
use crate::value::Color;
pub use alive_syntax::ast::{BinOp, UnOp};
use alive_syntax::Span;
use std::sync::Arc;

/// A typed parameter of a function, page, or lambda.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSig {
    /// Parameter name.
    pub name: Name,
    /// Declared type.
    pub ty: Type,
}

impl ParamSig {
    /// Construct a parameter signature.
    pub fn new(name: impl AsRef<str>, ty: Type) -> Self {
        ParamSig {
            name: Arc::from(name.as_ref()),
            ty,
        }
    }
}

/// Identity of a `remember` statement in the program source. Together
/// with an occurrence counter it keys per-box-instance view state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RememberId(pub u32);

/// Identity of a `boxed` statement in the program source.
///
/// Each syntactic `boxed` gets one id at lowering time; every box the
/// statement creates at run time records it, which is what makes the
/// paper's bidirectional UI↔code navigation (Fig. 2) possible — including
/// the one-to-many case where a `boxed` inside a loop produces many boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoxSourceId(pub u32);

/// A lambda: parameters, latent effect, body.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaExpr {
    /// Parameters.
    pub params: Arc<[ParamSig]>,
    /// Latent effect of the body.
    pub effect: Effect,
    /// Body expression.
    pub body: Arc<Expr>,
}

/// A core expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Shape of the expression.
    pub kind: ExprKind,
    /// Source span (dummy for synthesized nodes).
    pub span: Span,
}

/// The shape of a core [`Expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Number literal.
    Num(f64),
    /// String literal.
    Str(Arc<str>),
    /// Boolean literal.
    Bool(bool),
    /// Color literal (`colors.light_blue` resolves to this).
    ColorLit(Color),
    /// A local variable.
    Local(Name),
    /// Read a global variable (Fig. 6 `g`).
    Global(Name),
    /// Reference a global function (Fig. 6 `f`).
    FunRef(Name),
    /// Reference a primitive.
    PrimRef(Prim),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// List construction.
    ListLit(Vec<Expr>),
    /// 1-based tuple projection (Fig. 6 `e.n`).
    Proj(Box<Expr>, u32),
    /// Application `e(e1, ..., en)`.
    Call(Box<Expr>, Vec<Expr>),
    /// Lambda abstraction.
    Lambda(Arc<LambdaExpr>),
    /// `let x = e1; e2` — scoped binding.
    Let {
        /// Bound name.
        name: Name,
        /// Declared type, if annotated.
        ty: Option<Type>,
        /// Bound value.
        value: Box<Expr>,
        /// Scope of the binding.
        body: Box<Expr>,
    },
    /// Sequencing `e1; e2` (value of `e2`).
    Seq(Box<Expr>, Box<Expr>),
    /// Conditional.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// While loop; evaluates to unit.
    While(Box<Expr>, Box<Expr>),
    /// `for var in lo .. hi { body }`; evaluates to unit.
    ForRange {
        /// Loop variable.
        var: Name,
        /// Inclusive lower bound.
        lo: Box<Expr>,
        /// Exclusive upper bound.
        hi: Box<Expr>,
        /// Body.
        body: Box<Expr>,
    },
    /// `foreach var in list { body }`; evaluates to unit.
    Foreach {
        /// Loop variable.
        var: Name,
        /// List expression.
        list: Box<Expr>,
        /// Body.
        body: Box<Expr>,
    },
    /// Assign a local variable (extension; not in the substitution kernel).
    LocalAssign(Name, Box<Expr>),
    /// Write a global variable (Fig. 6 `g := e`; state effect).
    GlobalAssign(Name, Box<Expr>),
    /// `push p e` (state effect).
    PushPage(Name, Vec<Expr>),
    /// `pop` (state effect).
    PopPage,
    /// `boxed e` — create a nested box (render effect).
    Boxed(BoxSourceId, Box<Expr>),
    /// `remember x : τ = e1; e2` — bind a per-box-instance view-state
    /// slot over the rest of the block (render effect; §7 extension).
    Remember {
        /// Slot identity in the source.
        id: RememberId,
        /// Bound name.
        name: Name,
        /// Declared →-free slot type.
        ty: Type,
        /// Initializer, evaluated only when the slot is new.
        init: Box<Expr>,
        /// Scope of the binding.
        body: Box<Expr>,
    },
    /// Read a `remember` slot through its bound name (any mode).
    WidgetRead(Name),
    /// Write a `remember` slot (state effect — handlers only).
    WidgetWrite(Name, Box<Expr>),
    /// `post e` — append content to the current box (render effect).
    Post(Box<Expr>),
    /// `box.a := e` — set an attribute of the current box (render effect).
    SetAttr(Attr, Box<Expr>),
    /// Binary operator.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operator.
    Unary(UnOp, Box<Expr>),
}

impl Expr {
    /// Construct an expression.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// The unit expression `()`.
    pub fn unit(span: Span) -> Expr {
        Expr::new(ExprKind::Tuple(Vec::new()), span)
    }

    /// Whether the expression is the unit literal.
    pub fn is_unit(&self) -> bool {
        matches!(&self.kind, ExprKind::Tuple(es) if es.is_empty())
    }

    /// Sequence a list of expressions; empty list is unit.
    pub fn seq(exprs: Vec<Expr>, span: Span) -> Expr {
        let mut iter = exprs.into_iter();
        match iter.next() {
            None => Expr::unit(span),
            Some(first) => iter.fold(first, |acc, next| {
                let span = acc.span.merge(next.span);
                Expr::new(ExprKind::Seq(Box::new(acc), Box::new(next)), span)
            }),
        }
    }

    /// Visit this expression and all sub-expressions, outside-in.
    pub fn walk(&self, visit: &mut dyn FnMut(&Expr)) {
        visit(self);
        match &self.kind {
            ExprKind::Num(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::ColorLit(_)
            | ExprKind::Local(_)
            | ExprKind::Global(_)
            | ExprKind::FunRef(_)
            | ExprKind::PrimRef(_)
            | ExprKind::WidgetRead(_)
            | ExprKind::PopPage => {}
            ExprKind::Tuple(es) | ExprKind::ListLit(es) => {
                for e in es {
                    e.walk(visit);
                }
            }
            ExprKind::Proj(e, _)
            | ExprKind::Unary(_, e)
            | ExprKind::LocalAssign(_, e)
            | ExprKind::GlobalAssign(_, e)
            | ExprKind::WidgetWrite(_, e)
            | ExprKind::Boxed(_, e)
            | ExprKind::Post(e)
            | ExprKind::SetAttr(_, e) => e.walk(visit),
            ExprKind::Remember { init, body, .. } => {
                init.walk(visit);
                body.walk(visit);
            }
            ExprKind::Call(callee, args) => {
                callee.walk(visit);
                for a in args {
                    a.walk(visit);
                }
            }
            ExprKind::PushPage(_, args) => {
                for a in args {
                    a.walk(visit);
                }
            }
            ExprKind::Lambda(lam) => lam.body.walk(visit),
            ExprKind::Let { value, body, .. } => {
                value.walk(visit);
                body.walk(visit);
            }
            ExprKind::Seq(a, b) | ExprKind::While(a, b) | ExprKind::Binary(_, a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            ExprKind::If(c, t, e) => {
                c.walk(visit);
                t.walk(visit);
                e.walk(visit);
            }
            ExprKind::ForRange { lo, hi, body, .. } => {
                lo.walk(visit);
                hi.walk(visit);
                body.walk(visit);
            }
            ExprKind::Foreach { list, body, .. } => {
                list.walk(visit);
                body.walk(visit);
            }
        }
    }

    /// Count all nodes in the expression tree (a size metric for benches).
    pub fn node_count(&self) -> usize {
        let mut count = 0;
        self.walk(&mut |_| count += 1);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(n: f64) -> Expr {
        Expr::new(ExprKind::Num(n), Span::DUMMY)
    }

    #[test]
    fn seq_construction() {
        assert!(Expr::seq(vec![], Span::DUMMY).is_unit());
        assert_eq!(Expr::seq(vec![num(1.0)], Span::DUMMY), num(1.0));
        let two = Expr::seq(vec![num(1.0), num(2.0)], Span::DUMMY);
        assert!(matches!(two.kind, ExprKind::Seq(..)));
    }

    #[test]
    fn walk_and_node_count() {
        let e = Expr::new(
            ExprKind::Binary(BinOp::Add, Box::new(num(1.0)), Box::new(num(2.0))),
            Span::DUMMY,
        );
        assert_eq!(e.node_count(), 3);
        let nested = Expr::new(ExprKind::Boxed(BoxSourceId(0), Box::new(e)), Span::DUMMY);
        assert_eq!(nested.node_count(), 4);
    }
}
