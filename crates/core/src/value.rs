//! Runtime values (the paper's `v`).
//!
//! Values are cheap to clone: aggregates are reference-counted and
//! immutable, matching the calculus where values are pure trees.

use crate::expr::{Expr, ParamSig};
use crate::prim::Prim;
use crate::types::{Effect, Name, Type};
use std::fmt;
use std::sync::Arc;

/// An RGB color; a conservative extension used by box attributes
/// (`box.background := colors.light_blue`, paper §3.1 improvement I3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Construct a color from channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// The named color table exposed as the `colors` namespace.
    pub const NAMED: [(&'static str, Color); 12] = [
        ("black", Color::new(0, 0, 0)),
        ("white", Color::new(255, 255, 255)),
        ("red", Color::new(220, 50, 47)),
        ("green", Color::new(60, 160, 60)),
        ("blue", Color::new(38, 110, 200)),
        ("yellow", Color::new(230, 200, 50)),
        ("orange", Color::new(230, 130, 40)),
        ("purple", Color::new(120, 80, 170)),
        ("gray", Color::new(128, 128, 128)),
        ("light_gray", Color::new(210, 210, 210)),
        ("light_blue", Color::new(170, 210, 240)),
        ("transparent", Color::new(1, 2, 3)),
    ];

    /// Look up a named color (`colors.light_blue`).
    pub fn by_name(name: &str) -> Option<Color> {
        Color::NAMED
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
    }

    /// The name of this color if it is one of the named table entries.
    pub fn name(self) -> Option<&'static str> {
        Color::NAMED
            .iter()
            .find(|(_, c)| *c == self)
            .map(|(n, _)| *n)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => f.write_str(n),
            None => write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b),
        }
    }
}

/// The environment captured by a closure: a by-value snapshot of the
/// bindings visible at the lambda, innermost last.
pub type CapturedEnv = Arc<Vec<(Name, Value)>>;

/// A closure value: a lambda plus its captured environment.
///
/// The `version` field records the code version (the system's UPDATE
/// counter) under which the closure was created; the no-stale-code
/// invariant of §4.2 asserts that no closure with an old version is
/// reachable after an UPDATE transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Closure {
    /// Parameter names and types.
    pub params: Arc<[ParamSig]>,
    /// Latent effect of the body.
    pub effect: Effect,
    /// The body expression (from the program's code).
    pub body: Arc<Expr>,
    /// Captured bindings.
    pub env: CapturedEnv,
    /// Code version at creation time.
    pub version: u64,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A number.
    Number(f64),
    /// A string.
    Str(Arc<str>),
    /// A boolean.
    Bool(bool),
    /// A color.
    Color(Color),
    /// A tuple; the empty tuple is the unit value `()`.
    Tuple(Arc<[Value]>),
    /// An immutable list.
    List(Arc<[Value]>),
    /// A closure.
    Closure(Arc<Closure>),
    /// A primitive function as a first-class value.
    Prim(Prim),
    /// A reference to a `remember` view-state slot. Never user-visible:
    /// it only inhabits the local binding a `remember` introduces, and
    /// every read/write site dereferences it.
    WidgetRef(crate::widget::WidgetKey),
}

impl Value {
    /// The unit value `()`.
    pub fn unit() -> Value {
        Value::Tuple(Arc::from(Vec::new()))
    }

    /// A string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// A tuple value.
    pub fn tuple(elems: Vec<Value>) -> Value {
        Value::Tuple(Arc::from(elems))
    }

    /// A list value.
    pub fn list(elems: Vec<Value>) -> Value {
        Value::List(Arc::from(elems))
    }

    /// Whether this is the unit value.
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Tuple(elems) if elems.is_empty())
    }

    /// Structural membership in a type — used by the Fig. 12 fix-up
    /// relations (`C' : S ▷ S'`) and by system-state typing (Fig. 11).
    ///
    /// Closures are checked against their declared parameter types and
    /// effect; the body is trusted because it was type-checked when the
    /// program defining it was accepted. (Closures can never occur where
    /// an →-free type is required, which covers all fix-up cases.)
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Number(_), Type::Number) => true,
            (Value::Str(_), Type::String) => true,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Color(_), Type::Color) => true,
            (Value::Tuple(vs), Type::Tuple(ts)) => {
                vs.len() == ts.len() && vs.iter().zip(ts.iter()).all(|(v, t)| v.has_type(t))
            }
            (Value::List(vs), Type::List(t)) => vs.iter().all(|v| v.has_type(t)),
            (Value::Closure(c), Type::Fn(sig)) => {
                c.params.len() == sig.params.len()
                    && c.effect.subeffect_of(sig.effect)
                    && c.params
                        .iter()
                        .zip(sig.params.iter())
                        .all(|(p, t)| p.ty == *t)
            }
            (Value::Prim(p), Type::Fn(_)) => match p.sig() {
                Some(sig) => Type::Fn(Arc::new(sig)).is_subtype_of(ty),
                None => false,
            },
            // Widget references are an evaluator-internal currency and
            // inhabit no source-level type.
            (Value::WidgetRef(_), _) => false,
            _ => false,
        }
    }

    /// Render a value the way `post` displays it: numbers without a
    /// trailing `.0`, strings bare (no quotes), tuples/lists bracketed.
    pub fn display_text(&self) -> String {
        match self {
            Value::Number(n) => fmt_number(*n),
            Value::Str(s) => s.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Color(c) => c.to_string(),
            Value::Tuple(vs) => {
                let inner: Vec<String> = vs.iter().map(Value::display_text).collect();
                format!("({})", inner.join(", "))
            }
            Value::List(vs) => {
                let inner: Vec<String> = vs.iter().map(Value::display_text).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Closure(_) => "<function>".to_string(),
            Value::Prim(p) => format!("<{p}>"),
            Value::WidgetRef(k) => format!("<{k}>"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_text())
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

/// Format a number the way the language displays it: integers without a
/// decimal point, everything else in shortest-roundtrip form.
pub fn fmt_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_number(42.0), "42");
        assert_eq!(fmt_number(-3.0), "-3");
        assert_eq!(fmt_number(2.5), "2.5");
        assert_eq!(fmt_number(0.0), "0");
    }

    #[test]
    fn display_text_forms() {
        assert_eq!(Value::Number(7.0).display_text(), "7");
        assert_eq!(Value::str("hi").display_text(), "hi");
        assert_eq!(
            Value::tuple(vec![Value::Number(1.0), Value::str("a")]).display_text(),
            "(1, a)"
        );
        assert_eq!(
            Value::list(vec![Value::Bool(true)]).display_text(),
            "[true]"
        );
        assert_eq!(Value::unit().display_text(), "()");
    }

    #[test]
    fn has_type_structural() {
        let v = Value::tuple(vec![Value::str("addr"), Value::Number(100.0)]);
        let t = Type::tuple(vec![Type::String, Type::Number]);
        assert!(v.has_type(&t));
        assert!(!v.has_type(&Type::tuple(vec![Type::Number, Type::Number])));
        assert!(!v.has_type(&Type::Number));
        // Lists check every element.
        let xs = Value::list(vec![Value::Number(1.0), Value::str("no")]);
        assert!(!xs.has_type(&Type::list(Type::Number)));
        // Empty lists inhabit every list type.
        assert!(Value::list(vec![]).has_type(&Type::list(Type::Color)));
    }

    #[test]
    fn named_colors_roundtrip() {
        let c = Color::by_name("light_blue").expect("exists");
        assert_eq!(c.name(), Some("light_blue"));
        assert_eq!(c.to_string(), "light_blue");
        assert_eq!(Color::new(9, 9, 9).to_string(), "#090909");
        assert_eq!(Color::by_name("nope"), None);
    }
}
