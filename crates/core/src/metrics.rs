//! System-level metrics: pre-resolved [`alive_obs`] handles for the
//! transition machine.
//!
//! [`SystemMetrics`] is resolved once from a [`Registry`] and installed
//! into a [`crate::system::System`]; every transition then records with
//! single relaxed atomic ops on shared cells — no name lookups, no
//! locks on the hot path.
//!
//! Handles are `Arc`-shared across [`Clone`], deliberately: the system
//! is cloned as a *transaction checkpoint* (and a quarantine keeps a
//! checkpoint to restore), and a rolled-back transaction must keep its
//! fault and rollback counts — exactly the semantics of the fault log,
//! which also survives the rollback. Metrics count what *happened*, not
//! what *persisted*.

use std::sync::Arc;

use alive_obs::{Clock, Counter, Gauge, Histogram, Registry};

use crate::fault::FaultKind;
use crate::system::StepKind;

/// Metric names recorded by [`crate::system::System`]. Public so tests
/// and dashboards reference the same strings the machine writes.
pub mod names {
    /// STARTUP transitions performed.
    pub const TRANSITIONS_STARTUP: &str = "system.transitions.startup";
    /// THUNK transitions performed (handler thunks executed).
    pub const TRANSITIONS_THUNK: &str = "system.transitions.thunk";
    /// PUSH transitions performed (page inits run).
    pub const TRANSITIONS_PUSH: &str = "system.transitions.push";
    /// POP transitions performed.
    pub const TRANSITIONS_POP: &str = "system.transitions.pop";
    /// RENDER transitions performed (including hooked renders).
    pub const TRANSITIONS_RENDER: &str = "system.transitions.render";
    /// Successful UPDATE transitions (live code swaps).
    pub const UPDATES: &str = "system.updates";
    /// The subset of [`UPDATES`] applied from a host-shared,
    /// pre-type-checked program ([`crate::system::System::update_shared`]
    /// — the fleet fan-out path, where the compile was paid once for the
    /// whole fleet).
    pub const UPDATES_SHARED: &str = "system.updates.shared";
    /// Transactions rolled back by a contained fault.
    pub const ROLLBACKS: &str = "system.rollbacks";
    /// Contained faults in page init code.
    pub const FAULTS_INIT: &str = "system.faults.init";
    /// Contained faults in handler code.
    pub const FAULTS_HANDLER: &str = "system.faults.handler";
    /// Contained faults in render code.
    pub const FAULTS_RENDER: &str = "system.faults.render";
    /// Contained event-cascade overflows.
    pub const FAULTS_CASCADE_OVERFLOW: &str = "system.faults.cascade_overflow";
    /// Runaway cascades contained (queue dropped, display degraded).
    pub const OVERFLOW_CONTAINMENTS: &str = "system.overflow_containments";
    /// Display reassignments — reconciles exactly with
    /// [`crate::system::System::display_generation`] when metrics are
    /// installed at construction.
    pub const DISPLAY_SETS: &str = "system.display_sets";
    /// Transitions executed on the bytecode VM.
    pub const VM_RUNS: &str = "eval.vm.runs";
    /// Transitions that fell back to the tree walker while the VM
    /// engine was selected (uncompilable program, foreign closure).
    pub const VM_FALLBACKS: &str = "eval.vm.fallbacks";
    /// VM dispatches that reused the already-compiled bytecode.
    pub const VM_CACHE_HITS: &str = "eval.vm.cache_hits";
    /// Bytecode compiles performed (once per program version).
    pub const VM_COMPILES: &str = "eval.vm.compiles";
    /// Cumulative microseconds spent compiling bytecode.
    pub const VM_COMPILE_US: &str = "eval.vm.compile_us";
    /// Cumulative VM instructions executed. Monotone across any walk —
    /// `alive-obs` invariant tests rely on this.
    pub const VM_INSTRUCTIONS: &str = "eval.vm.instructions";
    /// High-water bytes of the per-frame register arena (gauge,
    /// observe-max).
    pub const VM_ARENA_BYTES: &str = "eval.vm.arena_bytes";
    /// Size of the compiled program's symbol intern table (gauge).
    pub const VM_INTERN_SYMBOLS: &str = "eval.vm.intern_symbols";
    /// Per-run VM instruction counts (histogram).
    pub const VM_RUN_INSTRUCTIONS: &str = "eval.vm.run_instructions";
}

/// Pre-resolved counter handles for one system (shared by its clones).
#[derive(Debug, Clone)]
pub struct SystemMetrics {
    transitions_startup: Counter,
    transitions_thunk: Counter,
    transitions_push: Counter,
    transitions_pop: Counter,
    transitions_render: Counter,
    updates: Counter,
    updates_shared: Counter,
    rollbacks: Counter,
    faults_init: Counter,
    faults_handler: Counter,
    faults_render: Counter,
    faults_cascade_overflow: Counter,
    overflow_containments: Counter,
    display_sets: Counter,
    vm_runs: Counter,
    vm_fallbacks: Counter,
    vm_cache_hits: Counter,
    vm_compiles: Counter,
    vm_compile_us: Counter,
    vm_instructions: Counter,
    vm_arena_bytes: Gauge,
    vm_intern_symbols: Gauge,
    vm_run_instructions: Histogram,
    /// The registry clock — compile timing flows through it so golden
    /// tests on a [`alive_obs::ManualClock`] stay deterministic.
    clock: Arc<dyn Clock>,
}

impl SystemMetrics {
    /// Resolve every handle from `registry` (get-or-create by name).
    pub fn new(registry: &Registry) -> Self {
        SystemMetrics {
            transitions_startup: registry.counter(names::TRANSITIONS_STARTUP),
            transitions_thunk: registry.counter(names::TRANSITIONS_THUNK),
            transitions_push: registry.counter(names::TRANSITIONS_PUSH),
            transitions_pop: registry.counter(names::TRANSITIONS_POP),
            transitions_render: registry.counter(names::TRANSITIONS_RENDER),
            updates: registry.counter(names::UPDATES),
            updates_shared: registry.counter(names::UPDATES_SHARED),
            rollbacks: registry.counter(names::ROLLBACKS),
            faults_init: registry.counter(names::FAULTS_INIT),
            faults_handler: registry.counter(names::FAULTS_HANDLER),
            faults_render: registry.counter(names::FAULTS_RENDER),
            faults_cascade_overflow: registry.counter(names::FAULTS_CASCADE_OVERFLOW),
            overflow_containments: registry.counter(names::OVERFLOW_CONTAINMENTS),
            display_sets: registry.counter(names::DISPLAY_SETS),
            vm_runs: registry.counter(names::VM_RUNS),
            vm_fallbacks: registry.counter(names::VM_FALLBACKS),
            vm_cache_hits: registry.counter(names::VM_CACHE_HITS),
            vm_compiles: registry.counter(names::VM_COMPILES),
            vm_compile_us: registry.counter(names::VM_COMPILE_US),
            vm_instructions: registry.counter(names::VM_INSTRUCTIONS),
            vm_arena_bytes: registry.gauge(names::VM_ARENA_BYTES),
            vm_intern_symbols: registry.gauge(names::VM_INTERN_SYMBOLS),
            vm_run_instructions: registry.histogram(names::VM_RUN_INSTRUCTIONS),
            clock: registry.clock(),
        }
    }

    /// Microseconds on the registry clock (deterministic under a
    /// manual clock).
    pub(crate) fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Count one performed transition ([`StepKind::Stable`] is the
    /// absence of a transition and is not counted).
    pub(crate) fn record_transition(&self, kind: StepKind) {
        match kind {
            StepKind::Startup => self.transitions_startup.inc(),
            StepKind::Thunk => self.transitions_thunk.inc(),
            StepKind::Push => self.transitions_push.inc(),
            StepKind::Pop => self.transitions_pop.inc(),
            StepKind::Render => self.transitions_render.inc(),
            StepKind::Stable => {}
        }
    }

    /// Count one contained, rolled-back fault of `kind`.
    pub(crate) fn record_fault(&self, kind: FaultKind) {
        self.rollbacks.inc();
        match kind {
            FaultKind::Init => self.faults_init.inc(),
            FaultKind::Handler => self.faults_handler.inc(),
            FaultKind::Render => self.faults_render.inc(),
            FaultKind::CascadeOverflow => self.faults_cascade_overflow.inc(),
        }
    }

    /// Count one contained cascade overflow (the queue was dropped;
    /// nothing was rolled back, so this is not a rollback).
    pub(crate) fn record_overflow_containment(&self) {
        self.overflow_containments.inc();
        self.faults_cascade_overflow.inc();
    }

    /// Count one successful UPDATE.
    pub(crate) fn record_update(&self) {
        self.updates.inc();
    }

    /// Count one successful UPDATE applied from a shared pre-checked
    /// program (always recorded alongside [`SystemMetrics::record_update`]).
    pub(crate) fn record_shared_update(&self) {
        self.updates_shared.inc();
    }

    /// Count one display reassignment.
    pub(crate) fn record_display_set(&self) {
        self.display_sets.inc();
    }

    /// Record one transition executed on the bytecode VM.
    pub(crate) fn record_vm_run(&self, stats: crate::vm::RunStats) {
        self.vm_runs.inc();
        self.vm_instructions.add(stats.instructions);
        self.vm_run_instructions.record(stats.instructions);
        self.vm_arena_bytes
            .observe_max(i64::try_from(stats.arena_bytes).unwrap_or(i64::MAX));
    }

    /// Record one fallback to the tree walker while the VM engine was
    /// selected.
    pub(crate) fn record_vm_fallback(&self) {
        self.vm_fallbacks.inc();
    }

    /// Record one reuse of already-compiled bytecode.
    pub(crate) fn record_vm_cache_hit(&self) {
        self.vm_cache_hits.inc();
    }

    /// Record one bytecode compile: its wall time and the resulting
    /// intern-table size.
    pub(crate) fn record_vm_compile(&self, compile_us: u64, intern_symbols: usize) {
        self.vm_compiles.inc();
        self.vm_compile_us.add(compile_us);
        self.vm_intern_symbols
            .set(i64::try_from(intern_symbols).unwrap_or(i64::MAX));
    }

    /// Contained faults of `kind` recorded so far.
    pub fn faults(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::Init => self.faults_init.get(),
            FaultKind::Handler => self.faults_handler.get(),
            FaultKind::Render => self.faults_render.get(),
            FaultKind::CascadeOverflow => self.faults_cascade_overflow.get(),
        }
    }
}
