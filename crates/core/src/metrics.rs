//! System-level metrics: pre-resolved [`alive_obs`] handles for the
//! transition machine.
//!
//! [`SystemMetrics`] is resolved once from a [`Registry`] and installed
//! into a [`crate::system::System`]; every transition then records with
//! single relaxed atomic ops on shared cells — no name lookups, no
//! locks on the hot path.
//!
//! Handles are `Arc`-shared across [`Clone`], deliberately: the system
//! is cloned as a *transaction checkpoint* (and a quarantine keeps a
//! checkpoint to restore), and a rolled-back transaction must keep its
//! fault and rollback counts — exactly the semantics of the fault log,
//! which also survives the rollback. Metrics count what *happened*, not
//! what *persisted*.

use alive_obs::{Counter, Registry};

use crate::fault::FaultKind;
use crate::system::StepKind;

/// Metric names recorded by [`crate::system::System`]. Public so tests
/// and dashboards reference the same strings the machine writes.
pub mod names {
    /// STARTUP transitions performed.
    pub const TRANSITIONS_STARTUP: &str = "system.transitions.startup";
    /// THUNK transitions performed (handler thunks executed).
    pub const TRANSITIONS_THUNK: &str = "system.transitions.thunk";
    /// PUSH transitions performed (page inits run).
    pub const TRANSITIONS_PUSH: &str = "system.transitions.push";
    /// POP transitions performed.
    pub const TRANSITIONS_POP: &str = "system.transitions.pop";
    /// RENDER transitions performed (including hooked renders).
    pub const TRANSITIONS_RENDER: &str = "system.transitions.render";
    /// Successful UPDATE transitions (live code swaps).
    pub const UPDATES: &str = "system.updates";
    /// The subset of [`UPDATES`] applied from a host-shared,
    /// pre-type-checked program ([`crate::system::System::update_shared`]
    /// — the fleet fan-out path, where the compile was paid once for the
    /// whole fleet).
    pub const UPDATES_SHARED: &str = "system.updates.shared";
    /// Transactions rolled back by a contained fault.
    pub const ROLLBACKS: &str = "system.rollbacks";
    /// Contained faults in page init code.
    pub const FAULTS_INIT: &str = "system.faults.init";
    /// Contained faults in handler code.
    pub const FAULTS_HANDLER: &str = "system.faults.handler";
    /// Contained faults in render code.
    pub const FAULTS_RENDER: &str = "system.faults.render";
    /// Contained event-cascade overflows.
    pub const FAULTS_CASCADE_OVERFLOW: &str = "system.faults.cascade_overflow";
    /// Runaway cascades contained (queue dropped, display degraded).
    pub const OVERFLOW_CONTAINMENTS: &str = "system.overflow_containments";
    /// Display reassignments — reconciles exactly with
    /// [`crate::system::System::display_generation`] when metrics are
    /// installed at construction.
    pub const DISPLAY_SETS: &str = "system.display_sets";
}

/// Pre-resolved counter handles for one system (shared by its clones).
#[derive(Debug, Clone)]
pub struct SystemMetrics {
    transitions_startup: Counter,
    transitions_thunk: Counter,
    transitions_push: Counter,
    transitions_pop: Counter,
    transitions_render: Counter,
    updates: Counter,
    updates_shared: Counter,
    rollbacks: Counter,
    faults_init: Counter,
    faults_handler: Counter,
    faults_render: Counter,
    faults_cascade_overflow: Counter,
    overflow_containments: Counter,
    display_sets: Counter,
}

impl SystemMetrics {
    /// Resolve every handle from `registry` (get-or-create by name).
    pub fn new(registry: &Registry) -> Self {
        SystemMetrics {
            transitions_startup: registry.counter(names::TRANSITIONS_STARTUP),
            transitions_thunk: registry.counter(names::TRANSITIONS_THUNK),
            transitions_push: registry.counter(names::TRANSITIONS_PUSH),
            transitions_pop: registry.counter(names::TRANSITIONS_POP),
            transitions_render: registry.counter(names::TRANSITIONS_RENDER),
            updates: registry.counter(names::UPDATES),
            updates_shared: registry.counter(names::UPDATES_SHARED),
            rollbacks: registry.counter(names::ROLLBACKS),
            faults_init: registry.counter(names::FAULTS_INIT),
            faults_handler: registry.counter(names::FAULTS_HANDLER),
            faults_render: registry.counter(names::FAULTS_RENDER),
            faults_cascade_overflow: registry.counter(names::FAULTS_CASCADE_OVERFLOW),
            overflow_containments: registry.counter(names::OVERFLOW_CONTAINMENTS),
            display_sets: registry.counter(names::DISPLAY_SETS),
        }
    }

    /// Count one performed transition ([`StepKind::Stable`] is the
    /// absence of a transition and is not counted).
    pub(crate) fn record_transition(&self, kind: StepKind) {
        match kind {
            StepKind::Startup => self.transitions_startup.inc(),
            StepKind::Thunk => self.transitions_thunk.inc(),
            StepKind::Push => self.transitions_push.inc(),
            StepKind::Pop => self.transitions_pop.inc(),
            StepKind::Render => self.transitions_render.inc(),
            StepKind::Stable => {}
        }
    }

    /// Count one contained, rolled-back fault of `kind`.
    pub(crate) fn record_fault(&self, kind: FaultKind) {
        self.rollbacks.inc();
        match kind {
            FaultKind::Init => self.faults_init.inc(),
            FaultKind::Handler => self.faults_handler.inc(),
            FaultKind::Render => self.faults_render.inc(),
            FaultKind::CascadeOverflow => self.faults_cascade_overflow.inc(),
        }
    }

    /// Count one contained cascade overflow (the queue was dropped;
    /// nothing was rolled back, so this is not a rollback).
    pub(crate) fn record_overflow_containment(&self) {
        self.overflow_containments.inc();
        self.faults_cascade_overflow.inc();
    }

    /// Count one successful UPDATE.
    pub(crate) fn record_update(&self) {
        self.updates.inc();
    }

    /// Count one successful UPDATE applied from a shared pre-checked
    /// program (always recorded alongside [`SystemMetrics::record_update`]).
    pub(crate) fn record_shared_update(&self) {
        self.updates_shared.inc();
    }

    /// Count one display reassignment.
    pub(crate) fn record_display_set(&self) {
        self.display_sets.inc();
    }

    /// Contained faults of `kind` recorded so far.
    pub fn faults(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::Init => self.faults_init.get(),
            FaultKind::Handler => self.faults_handler.get(),
            FaultKind::Render => self.faults_render.get(),
            FaultKind::CascadeOverflow => self.faults_cascade_overflow.get(),
        }
    }
}
