//! The system model — the paper's Figure 9.
//!
//! A [`System`] is the state tuple `σ = (C, D, S, P, Q)` plus the global
//! transition relation `→g`:
//!
//! * **STARTUP** — empty page stack enqueues `[push start ()]`;
//! * **TAP** / **BACK** — user actions enqueue `[exec v]` / `[pop]` and
//!   invalidate the display;
//! * **THUNK** / **PUSH** / **POP** — event handling runs state code;
//! * **RENDER** — an invalid display is rebuilt from the top page's
//!   render body;
//! * **UPDATE** — new code replaces old, the store and page stack are
//!   fixed up (Fig. 12), and the display is invalidated.
//!
//! The system is *live*: in any unstable state some transition is
//! enabled, and in a stable state it waits for user actions or code
//! updates (§4.2).

use crate::attr::Attr;
use crate::bigstep::{self, Cost, DEFAULT_FUEL};
use crate::boxtree::{BoxNode, Display};
use crate::error::RuntimeError;
use crate::event::{Event, EventQueue};
use crate::fault::{Fault, FaultInjector, FaultKind, TransitionKind};
use crate::fixup::{fixup_pages, fixup_store, FixupReport};
use crate::program::{Program, START_PAGE};
use crate::store::Store;
use crate::types::Name;
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Which transition a [`System::step`] performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// STARTUP — enqueued `[push start ()]`.
    Startup,
    /// THUNK — executed a handler thunk.
    Thunk,
    /// PUSH — ran a page's init body and pushed it.
    Push,
    /// POP — popped the current page (or did nothing on empty).
    Pop,
    /// RENDER — rebuilt the display.
    Render,
    /// No transition is enabled: the state is stable.
    Stable,
}

/// Errors surfaced by user-action entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionError {
    /// The display is stale (`⊥`); TAP's premise `[ontap = v] ∈ B` fails.
    DisplayInvalid,
    /// No box exists at the given path.
    NoSuchBox(Vec<usize>),
    /// The box at the path has no handler for this interaction.
    NoHandler(Attr),
    /// BACK was requested with no page to pop (already at the root).
    NoPageToPop,
    /// UPDATE requires a stable state.
    NotStable,
    /// The new program failed its checks (`C' ⊢ C'` does not hold).
    IllTyped(alive_syntax::Diagnostics),
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::DisplayInvalid => f.write_str("display is invalid (⊥)"),
            ActionError::NoSuchBox(p) => write!(f, "no box at path {p:?}"),
            ActionError::NoHandler(a) => write!(f, "box has no `{a}` handler"),
            ActionError::NoPageToPop => f.write_str("no page to pop (already at the root)"),
            ActionError::NotStable => f.write_str("code updates require a drained event queue"),
            ActionError::IllTyped(ds) => write!(f, "new code is ill-typed:\n{ds}"),
        }
    }
}

impl std::error::Error for ActionError {}

/// Which engine evaluates INIT/HANDLER/RENDER transitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EvalEngine {
    /// The register-based bytecode VM ([`crate::vm`]), with automatic
    /// per-transition fallback to the tree walker for anything outside
    /// the VM subset. The default: same semantics, much faster.
    #[default]
    Vm,
    /// The bigstep tree walker only ([`crate::bigstep`]) — the
    /// reference engine the VM is differentially tested against.
    Bigstep,
}

/// Configuration of a [`System`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Step budget per transition (models divergence detection).
    pub fuel: u64,
    /// Safety bound for [`System::run_to_stable`] (an event cascade
    /// longer than this is reported as divergence).
    pub max_transitions: u64,
    /// Which evaluation engine runs transitions.
    pub engine: EvalEngine,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            fuel: DEFAULT_FUEL,
            max_transitions: 10_000,
            engine: EvalEngine::Vm,
        }
    }
}

/// Cumulative bytecode-VM accounting for one system — the source for
/// `eval.vm.*` metrics and the repl `:stats` VM line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Transitions executed on the VM.
    pub runs: u64,
    /// Transitions that fell back to the tree walker while the VM
    /// engine was selected.
    pub fallbacks: u64,
    /// VM dispatches that reused already-compiled bytecode.
    pub cache_hits: u64,
    /// Bytecode compiles performed (once per program version; shared
    /// program `Arc`s share the compile across a whole fleet).
    pub compiles: u64,
    /// Cumulative microseconds spent compiling bytecode.
    pub compile_us: u64,
    /// Cumulative VM instructions executed.
    pub instructions: u64,
    /// High-water bytes of the per-frame register arena.
    pub arena_bytes: u64,
}

/// The system state `σ = (C, D, S, P, Q)` with its transitions.
#[derive(Debug, Clone)]
pub struct System {
    program: Arc<Program>,
    display: Display,
    store: Store,
    page_stack: Vec<(Name, Value)>,
    queue: EventQueue,
    config: SystemConfig,
    /// View-state slots (`remember`), cleared by UPDATE.
    widgets: crate::widget::WidgetStore,
    /// Incremented by every UPDATE; stamped into closures.
    version: u64,
    /// Accumulated cost over the system's lifetime.
    cost: Cost,
    /// Bumped every time `display` is reassigned (even to `⊥`), so
    /// downstream caches can key rendered output on it.
    display_generation: u64,
    /// The most recent successfully rendered box tree, kept so a
    /// faulting transition can leave *something* on screen
    /// ([`Display::Stale`]). Cleared by UPDATE (no stale code). Shared:
    /// degrading the display is a refcount bump, not a tree copy.
    last_good: Option<Arc<BoxNode>>,
    /// Deterministic fault injection, when a harness installed one.
    /// Shared (not deep-cloned) across [`Clone`], so a cloned system
    /// advances the same injection schedule. Mutex-guarded so a system
    /// (and its sessions) can move across host worker threads.
    injector: Option<Arc<Mutex<dyn FaultInjector>>>,
    /// Observability handles, when a host installed them. Shared (not
    /// forked) across [`Clone`] — a rolled-back transaction keeps its
    /// fault counts, exactly like the fault log keeps its entries.
    metrics: Option<crate::metrics::SystemMetrics>,
    /// Pooled VM register/arena storage, reused across transitions.
    /// Clones start with a fresh pool (capacity is a cache, not state).
    scratch: crate::vm::Scratch,
    /// Cumulative VM accounting (runs, fallbacks, compiles, …).
    vm_stats: VmStats,
}

/// Lock an injector, recovering from poisoning: injector state is a
/// monotone counter bundle, so a poisoned lock is still usable and the
/// no-panic discipline of this crate forbids propagating the poison.
fn lock_injector<'a>(
    injector: &'a Mutex<dyn FaultInjector + 'static>,
) -> MutexGuard<'a, dyn FaultInjector + 'static> {
    injector.lock().unwrap_or_else(PoisonError::into_inner)
}

impl System {
    /// Create the initial system state `(C, ⊥, ε, ε, ε)`.
    pub fn new(program: Program) -> Self {
        System::with_config(program, SystemConfig::default())
    }

    /// Create a system with explicit configuration.
    pub fn with_config(program: Program, config: SystemConfig) -> Self {
        System::with_shared_program(Arc::new(program), config)
    }

    /// Create a system around an already-compiled shared program. Hosts
    /// compile each source version once and hand every session the same
    /// `Arc` — parse, lower, and typecheck run once per version, not
    /// once per session.
    pub fn with_shared_program(program: Arc<Program>, config: SystemConfig) -> Self {
        System {
            program,
            display: Display::Invalid,
            store: Store::new(),
            page_stack: Vec::new(),
            queue: EventQueue::new(),
            config,
            widgets: crate::widget::WidgetStore::new(),
            version: 0,
            cost: Cost::default(),
            display_generation: 0,
            last_good: None,
            injector: None,
            metrics: None,
            scratch: crate::vm::Scratch::new(),
            vm_stats: VmStats::default(),
        }
    }

    /// Install a deterministic [`FaultInjector`] consulted before every
    /// transition and primitive application. Pass-through by default
    /// (no injector).
    pub fn set_fault_injector(&mut self, injector: Arc<Mutex<dyn FaultInjector>>) {
        self.injector = Some(injector);
    }

    /// Remove any installed fault injector.
    pub fn clear_fault_injector(&mut self) {
        self.injector = None;
    }

    /// Install pre-resolved observability handles. Recording is a
    /// relaxed atomic op per event; without this call every record is
    /// a no-op. Install *at construction* (before the first `step`) if
    /// `system.display_sets` should reconcile exactly with
    /// [`System::display_generation`].
    pub fn set_metrics(&mut self, metrics: crate::metrics::SystemMetrics) {
        self.metrics = Some(metrics);
    }

    /// The installed observability handles, if any.
    pub fn metrics(&self) -> Option<&crate::metrics::SystemMetrics> {
        self.metrics.as_ref()
    }

    /// Count one performed transition, when metrics are installed.
    fn record_transition(&self, kind: StepKind) {
        if let Some(metrics) = &self.metrics {
            metrics.record_transition(kind);
        }
    }

    /// The configuration this system runs under.
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Cumulative bytecode-VM accounting (runs, fallbacks, compile and
    /// instruction counts) for this system.
    pub fn vm_stats(&self) -> VmStats {
        self.vm_stats
    }

    /// The compiled bytecode for the current program, when the VM
    /// engine is selected and the program is inside the VM subset.
    /// Books the compile or cache hit it observes.
    fn vm_program(&mut self) -> Option<Arc<crate::vm::VmProgram>> {
        if self.config.engine != EvalEngine::Vm {
            return None;
        }
        let cached = self.program.vm_ready();
        let started_us = match &self.metrics {
            Some(metrics) if !cached => metrics.now_us(),
            _ => 0,
        };
        let vmp = self.program.vm();
        if let Some(vmp) = &vmp {
            if cached {
                self.vm_stats.cache_hits += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.record_vm_cache_hit();
                }
            } else {
                self.vm_stats.compiles += 1;
                // Time the compile on the registry clock when one is
                // installed (deterministic in golden tests); otherwise
                // use the compiler's own wall-clock measure.
                let compile_us = match &self.metrics {
                    Some(metrics) => metrics.now_us().saturating_sub(started_us),
                    None => vmp.compile_us(),
                };
                self.vm_stats.compile_us += compile_us;
                if let Some(metrics) = &self.metrics {
                    metrics.record_vm_compile(compile_us, vmp.symbol_count());
                }
            }
        }
        vmp
    }

    /// Book one transition executed on the VM.
    fn note_vm_run(&mut self, stats: crate::vm::RunStats) {
        self.vm_stats.runs += 1;
        self.vm_stats.instructions += stats.instructions;
        if stats.arena_bytes > self.vm_stats.arena_bytes {
            self.vm_stats.arena_bytes = stats.arena_bytes;
        }
        if let Some(metrics) = &self.metrics {
            metrics.record_vm_run(stats);
        }
    }

    /// Book one fallback to the tree walker (only meaningful while the
    /// VM engine is selected).
    fn note_vm_fallback(&mut self) {
        if self.config.engine != EvalEngine::Vm {
            return;
        }
        self.vm_stats.fallbacks += 1;
        if let Some(metrics) = &self.metrics {
            metrics.record_vm_fallback();
        }
    }

    /// The current code `C`.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The current code as its shared handle — lets hosts verify (and
    /// reuse) program sharing across sessions via `Arc::ptr_eq`.
    pub fn program_shared(&self) -> &Arc<Program> {
        &self.program
    }

    /// The current display `D`.
    pub fn display(&self) -> &Display {
        &self.display
    }

    /// A counter bumped every time the display is reassigned — including
    /// invalidations and degradations, not just successful renders. Two
    /// reads under the same generation are guaranteed to see the same
    /// [`Display`], so a rendered string (or layout) cached against this
    /// number can be reused without inspecting the tree.
    pub fn display_generation(&self) -> u64 {
        self.display_generation
    }

    /// The single write path for `display`: every reassignment bumps the
    /// generation so [`System::display_generation`] never lies.
    fn set_display(&mut self, display: Display) {
        self.display = display;
        self.display_generation = self.display_generation.wrapping_add(1);
        if let Some(metrics) = &self.metrics {
            metrics.record_display_set();
        }
    }

    /// The store `S` (the model).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The page stack `P`, bottom first.
    pub fn page_stack(&self) -> &[(Name, Value)] {
        &self.page_stack
    }

    /// The event queue `Q`.
    pub fn queue(&self) -> &EventQueue {
        &self.queue
    }

    /// The `remember` view-state slots.
    pub fn widgets(&self) -> &crate::widget::WidgetStore {
        &self.widgets
    }

    /// The UPDATE counter (how many code swaps have happened).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total accumulated cost (steps, boxes, simulated latency).
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Fold external cost into this system's counter — used by harness
    /// code that replaces a system but accounts for a whole session
    /// (e.g. the restart baseline carrying cost across restarts).
    pub fn add_external_cost(&mut self, cost: Cost) {
        self.cost.absorb(cost);
    }

    /// The page currently on top of the stack.
    pub fn current_page(&self) -> Option<(&str, &Value)> {
        self.page_stack.last().map(|(n, v)| (&**n, v))
    }

    /// A state is *stable* iff the event queue is empty, the page stack
    /// is non-empty, and the display shows content — the system is
    /// waiting for the user.
    ///
    /// (The paper defines stability as "queue empty ∧ stack non-empty";
    /// rendering is the only transition left from such a state, so we
    /// fold it in: `run_to_stable` always leaves a displayable tree. A
    /// [`Display::Stale`] last-good tree counts: the machine is degraded
    /// by a contained fault but still alive and waiting.)
    pub fn is_stable(&self) -> bool {
        self.queue.is_empty() && !self.page_stack.is_empty() && self.display.content().is_some()
    }

    /// The fuel budget for the next transition of `kind`, consulting
    /// the installed [`FaultInjector`] if any.
    fn transition_fuel(&mut self, kind: TransitionKind) -> u64 {
        match &self.injector {
            Some(injector) => lock_injector(injector).fuel_for(kind, self.config.fuel),
            None => self.config.fuel,
        }
    }

    /// Build a [`Fault`] record for a failed transition.
    fn fault(
        &self,
        kind: FaultKind,
        page: Option<Name>,
        error: RuntimeError,
        cost: Cost,
        fuel_limit: u64,
    ) -> Fault {
        if let Some(metrics) = &self.metrics {
            metrics.record_fault(kind);
        }
        Fault {
            kind,
            page,
            error,
            fuel_spent: cost.steps,
            fuel_limit,
            version: self.version,
        }
    }

    /// After a rolled-back transition: show the last good tree (tagged
    /// stale), or `⊥` if nothing was ever rendered.
    fn degrade_display(&mut self) {
        let degraded = match &self.last_good {
            Some(tree) => Display::Stale(Arc::clone(tree)),
            None => Display::Invalid,
        };
        self.set_display(degraded);
    }

    /// Perform one enabled transition of `→g`, in the deterministic
    /// order: STARTUP, event handling, RENDER.
    ///
    /// Every transition is *transactional*: the mutable state it may
    /// touch (store, page stack, queue, `remember` slots) is
    /// snapshotted first and restored on error, so a fault can never
    /// leave the machine half-mutated. The faulting event is dropped
    /// (its effects rolled back) and the display falls back to the last
    /// good tree, tagged [`Display::Stale`].
    ///
    /// # Errors
    ///
    /// A structured [`Fault`] when user code fails (divergence via
    /// fuel, partial primitives). The machine survives: state is as it
    /// was before the transition and further transitions stay enabled.
    pub fn step(&mut self) -> Result<StepKind, Fault> {
        // (STARTUP)
        if self.page_stack.is_empty() && self.queue.is_empty() {
            self.set_display(Display::Invalid);
            self.queue
                .enqueue(Event::Push(Arc::from(START_PAGE), Value::unit()));
            self.record_transition(StepKind::Startup);
            return Ok(StepKind::Startup);
        }
        // (THUNK) / (PUSH) / (POP)
        if let Some(event) = self.queue.dequeue() {
            self.set_display(Display::Invalid);
            // The transaction checkpoint: everything an event transition
            // may mutate, snapshotted *after* the event was consumed —
            // rollback drops the faulting event and all its effects.
            let checkpoint = (
                self.store.clone(),
                self.page_stack.clone(),
                self.queue.clone(),
                self.widgets.clone(),
            );
            let (kind, page, result, cost, fuel) = match event {
                Event::Exec(thunk, args) => {
                    let fuel = self.transition_fuel(TransitionKind::Handler);
                    let vmp = self.vm_program();
                    let injector = self.injector.clone();
                    let mut guard = injector.as_deref().map(lock_injector);
                    let vm_run = vmp.and_then(|vmp| {
                        crate::vm::transition_thunk(
                            &vmp,
                            &mut self.scratch,
                            &mut self.store,
                            &mut self.queue,
                            self.version,
                            fuel,
                            &thunk,
                            &args,
                            Some(&mut self.widgets),
                            guard.as_deref_mut().map(|g| g as &mut dyn FaultInjector),
                        )
                    });
                    let (result, cost) = match vm_run {
                        Some(run) => {
                            self.note_vm_run(run.stats);
                            (run.result, run.cost)
                        }
                        None => {
                            self.note_vm_fallback();
                            bigstep::transition_thunk(
                                &self.program,
                                &mut self.store,
                                &mut self.queue,
                                self.version,
                                fuel,
                                &thunk,
                                args,
                                Some(&mut self.widgets),
                                guard.as_deref_mut().map(|g| g as &mut dyn FaultInjector),
                            )
                        }
                    };
                    let page = self.page_stack.last().map(|(n, _)| n.clone());
                    (StepKind::Thunk, page, result.map(|_| ()), cost, fuel)
                }
                Event::Push(page_name, arg) => {
                    let fuel = self.transition_fuel(TransitionKind::Init);
                    let prepared = self
                        .program
                        .page(&page_name)
                        .map(|page| (bind_page_params(page, &arg), page.init.clone()));
                    let outcome = match prepared {
                        None => (
                            Err(RuntimeError::UnknownPage(page_name.clone())),
                            Cost::default(),
                        ),
                        Some((bindings, init)) => {
                            let vmp = self.vm_program();
                            let injector = self.injector.clone();
                            let mut guard = injector.as_deref().map(lock_injector);
                            let vm_run = vmp.and_then(|vmp| {
                                crate::vm::transition_page_init(
                                    &vmp,
                                    &mut self.scratch,
                                    &mut self.store,
                                    &mut self.queue,
                                    self.version,
                                    fuel,
                                    &page_name,
                                    &bindings,
                                    Some(&mut self.widgets),
                                    guard.as_deref_mut().map(|g| g as &mut dyn FaultInjector),
                                )
                            });
                            match vm_run {
                                Some(run) => {
                                    self.note_vm_run(run.stats);
                                    (run.result, run.cost)
                                }
                                None => {
                                    self.note_vm_fallback();
                                    bigstep::transition_state(
                                        &self.program,
                                        &mut self.store,
                                        &mut self.queue,
                                        self.version,
                                        fuel,
                                        bindings,
                                        &init,
                                        Some(&mut self.widgets),
                                        guard.as_deref_mut().map(|g| g as &mut dyn FaultInjector),
                                    )
                                }
                            }
                        }
                    };
                    let (result, cost) = outcome;
                    if result.is_ok() {
                        self.page_stack.push((page_name.clone(), arg));
                    }
                    (
                        StepKind::Push,
                        Some(page_name),
                        result.map(|_| ()),
                        cost,
                        fuel,
                    )
                }
                Event::Pop => {
                    // (POP): pops the top page, or does nothing if empty.
                    self.page_stack.pop();
                    self.record_transition(StepKind::Pop);
                    return Ok(StepKind::Pop);
                }
            };
            self.cost.absorb(cost);
            return match result {
                Ok(_) => {
                    self.record_transition(kind);
                    Ok(kind)
                }
                Err(error) => {
                    // Roll the transaction back: the event is dropped,
                    // every side effect (store writes, enqueued events,
                    // pushed pages, widget writes) is undone.
                    let (store, page_stack, queue, widgets) = checkpoint;
                    self.store = store;
                    self.page_stack = page_stack;
                    self.queue = queue;
                    self.widgets = widgets;
                    self.degrade_display();
                    let fault_kind = match kind {
                        StepKind::Push => FaultKind::Init,
                        _ => FaultKind::Handler,
                    };
                    Err(self.fault(fault_kind, page, error, cost, fuel))
                }
            };
        }
        // (RENDER) — only from `⊥`; a stale last-good tree stays until
        // something invalidates the display again.
        if matches!(self.display, Display::Invalid) {
            if let Some((page_name, _)) = self.page_stack.last() {
                let page_name = page_name.clone();
                return match self.render_transition(None) {
                    Ok(()) => {
                        self.record_transition(StepKind::Render);
                        Ok(StepKind::Render)
                    }
                    Err((error, cost, fuel)) => {
                        self.degrade_display();
                        Err(self.fault(FaultKind::Render, Some(page_name), error, cost, fuel))
                    }
                };
            }
        }
        Ok(StepKind::Stable)
    }

    /// The RENDER transition body, shared by [`System::step`] and
    /// [`System::render_with_hook`]. On success the display is valid
    /// and `last_good` updated; on error the `remember` slots are
    /// rolled back and the error returned with the cost it burned (the
    /// display is left untouched for the caller to degrade).
    fn render_transition(
        &mut self,
        hook: Option<&mut dyn bigstep::RenderHook>,
    ) -> Result<(), (RuntimeError, Cost, u64)> {
        let Some((page_name, arg)) = self.page_stack.last().cloned() else {
            return Err((
                RuntimeError::Internal("RENDER with an empty page stack"),
                Cost::default(),
                0,
            ));
        };
        let fuel = self.transition_fuel(TransitionKind::Render);
        let Some(page) = self.program.page(&page_name) else {
            return Err((RuntimeError::UnknownPage(page_name), Cost::default(), fuel));
        };
        let bindings = bind_page_params(page, &arg);
        let render = page.render.clone();
        // RENDER's transaction checkpoint: render code cannot touch the
        // store, stack, or queue (enforced by mode and borrows), so only
        // the `remember` slots need snapshotting.
        let widgets_checkpoint = self.widgets.clone();
        self.widgets.begin_render();
        let vmp = self.vm_program();
        let injector = self.injector.clone();
        let mut guard = injector.as_deref().map(lock_injector);
        let mut hook = hook;
        let vm_run = vmp.and_then(|vmp| {
            crate::vm::transition_page_render(
                &vmp,
                &mut self.scratch,
                &self.store,
                self.version,
                fuel,
                &page_name,
                &bindings,
                hook.as_deref_mut(),
                Some(&mut self.widgets),
                guard.as_deref_mut().map(|g| g as &mut dyn FaultInjector),
            )
        });
        let (result, cost) = match vm_run {
            Some(run) => {
                self.note_vm_run(run.stats);
                (run.result, run.cost)
            }
            None => {
                self.note_vm_fallback();
                bigstep::transition_render(
                    &self.program,
                    &self.store,
                    self.version,
                    fuel,
                    bindings,
                    &render,
                    hook,
                    Some(&mut self.widgets),
                    guard.as_deref_mut().map(|g| g as &mut dyn FaultInjector),
                )
            }
        };
        drop(guard);
        self.cost.absorb(cost);
        match result {
            Ok(root) => {
                let root = Arc::new(root);
                self.last_good = Some(Arc::clone(&root));
                self.set_display(Display::Valid(root));
                Ok(())
            }
            Err(error) => {
                self.widgets = widgets_checkpoint;
                Err((error, cost, fuel))
            }
        }
    }

    /// Run transitions until the system is stable. Returns the kinds of
    /// transitions performed.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from a transition, or — if the event cascade
    /// exceeds [`SystemConfig::max_transitions`] (e.g. pages that push
    /// pages forever) — a [`FaultKind::CascadeOverflow`] fault. On
    /// overflow the runaway queue is dropped so the machine stays
    /// usable: the next `run_to_stable` renders whatever the stack
    /// holds.
    pub fn run_to_stable(&mut self) -> Result<Vec<StepKind>, Fault> {
        let mut kinds = Vec::new();
        for _ in 0..self.config.max_transitions {
            let kind = self.step()?;
            if kind == StepKind::Stable {
                return Ok(kinds);
            }
            kinds.push(kind);
        }
        // Cascade overflow: contain it like any other fault — drop the
        // runaway events and fall back to the last good tree.
        Err(self.contain_overflow())
    }

    /// Contain a runaway event cascade: drop the queue, degrade the
    /// display to the last good tree, and return the structured
    /// [`FaultKind::CascadeOverflow`] fault. Used by
    /// [`System::run_to_stable`] when its transition budget runs out,
    /// and by external drivers (e.g. a memoizing render loop) that
    /// enforce the same bound while stepping the system themselves.
    pub fn contain_overflow(&mut self) -> Fault {
        self.queue.clear();
        self.degrade_display();
        if let Some(metrics) = &self.metrics {
            metrics.record_overflow_containment();
        }
        let page = self.page_stack.last().map(|(n, _)| n.clone());
        Fault {
            kind: FaultKind::CascadeOverflow,
            page,
            error: RuntimeError::FuelExhausted,
            fuel_spent: self.config.max_transitions,
            fuel_limit: self.config.max_transitions,
            version: self.version,
        }
    }

    /// (TAP) — the user taps the box at `path` in the display. Requires
    /// a valid display (the rule's premise `[ontap = v] ∈ B`); enqueues
    /// the handler and invalidates the display.
    ///
    /// # Errors
    ///
    /// [`ActionError`] if the display is stale, the path is bad, or the
    /// box has no `ontap` handler.
    pub fn tap(&mut self, path: &[usize]) -> Result<(), ActionError> {
        let handler = self.interaction_handler(path, Attr::OnTap)?;
        self.set_display(Display::Invalid);
        self.queue.enqueue(Event::Exec(handler, vec![]));
        Ok(())
    }

    /// Like [`System::tap`] but for the `onedit` handler, passing the
    /// edited text. Models the user editing a box's content.
    ///
    /// # Errors
    ///
    /// See [`System::tap`].
    pub fn edit_box(&mut self, path: &[usize], text: &str) -> Result<(), ActionError> {
        let handler = self.interaction_handler(path, Attr::OnEdit)?;
        self.set_display(Display::Invalid);
        self.queue
            .enqueue(Event::Exec(handler, vec![Value::str(text)]));
        Ok(())
    }

    fn interaction_handler(&self, path: &[usize], attr: Attr) -> Result<Value, ActionError> {
        // A stale (last-good) tree stays interactive: the machine is
        // degraded, not dead. Only `⊥` refuses interactions.
        let Some(root) = self.display.content() else {
            return Err(ActionError::DisplayInvalid);
        };
        let node = root
            .descendant(path)
            .ok_or_else(|| ActionError::NoSuchBox(path.to_vec()))?;
        let handler = node
            .attr(attr)
            .cloned()
            .ok_or(ActionError::NoHandler(attr))?;
        // The rule's premise wants a callable `v`; a non-function here
        // means a corrupted tree — report it as a typed error instead of
        // letting the THUNK transition abort later.
        if !matches!(handler, Value::Closure(_) | Value::Prim(_)) {
            return Err(ActionError::NoHandler(attr));
        }
        Ok(handler)
    }

    /// (BACK) — the user presses the back button: enqueue `[pop]` and
    /// invalidate the display.
    pub fn back(&mut self) {
        self.set_display(Display::Invalid);
        self.queue.enqueue(Event::Pop);
    }

    /// (UPDATE) — swap in new code. The store and page stack are fixed
    /// up per Fig. 12, the display is invalidated, and the version
    /// counter increments so that stale closures are detectable.
    ///
    /// The paper enables UPDATE only in stable states; we relax the
    /// premise to "the event queue is drained": a *degraded* machine
    /// (stale or even `⊥` display after a contained fault) must still
    /// accept the edit that fixes it, or fault containment would brick
    /// the session. In-flight events still block the update — running
    /// them against swapped code is exactly the staleness UPDATE's
    /// stability premise exists to prevent.
    ///
    /// ```
    /// use alive_core::{compile, Value};
    /// use alive_core::system::System;
    ///
    /// let code_v1 = "global n : number = 0
    ///     page start() {
    ///         init { n := 41; }
    ///         render { boxed { post n; } }
    ///     }";
    /// let mut system = System::new(compile(code_v1)?);
    /// system.run_to_stable()?;
    ///
    /// // A code change is just one more transition: the model survives,
    /// // init does NOT re-run, only the render code is re-executed.
    /// let code_v2 = code_v1.replace("post n;", "post \"n = \" ++ n;");
    /// let report = system.update(compile(&code_v2)?).expect("stable");
    /// assert!(report.kept_globals.iter().any(|g| &**g == "n"));
    /// system.run_to_stable()?;
    /// assert_eq!(system.store().get("n"), Some(&Value::Number(41.0)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`ActionError::NotStable`] while events are in flight;
    /// [`ActionError::IllTyped`] if `C' ⊢ C'` fails (the old program
    /// keeps running).
    pub fn update(&mut self, new_program: Program) -> Result<FixupReport, ActionError> {
        if !self.queue.is_empty() {
            return Err(ActionError::NotStable);
        }
        let diags = crate::typeck::check_program(&new_program);
        if diags.has_errors() {
            return Err(ActionError::IllTyped(diags));
        }
        let report = self.update_checked(Arc::new(new_program));
        if let Some(metrics) = &self.metrics {
            metrics.record_update();
        }
        Ok(report)
    }

    /// The UPDATE transition with an *already type-checked* shared
    /// program — the fleet fan-out path. A host that compiled (and thus
    /// type-checked) a new version exactly once hands every subscribed
    /// session the same `Arc<Program>`; each session re-runs only the
    /// parts of UPDATE that genuinely depend on its own state — the
    /// store and page-stack fix-ups — and skips the per-session
    /// re-typecheck and the `Program` clone that [`System::update`]
    /// would pay. The caller vouches that `new_program` passed
    /// `check_program` (the same contract as
    /// [`System::with_shared_program`]); handing over an unchecked
    /// program shows up as runtime faults, never unsoundness — the
    /// machine still contains them.
    ///
    /// # Errors
    ///
    /// [`ActionError::NotStable`] while events are in flight.
    pub fn update_shared(&mut self, new_program: Arc<Program>) -> Result<FixupReport, ActionError> {
        if !self.queue.is_empty() {
            return Err(ActionError::NotStable);
        }
        let report = self.update_checked(new_program);
        if let Some(metrics) = &self.metrics {
            metrics.record_update();
            metrics.record_shared_update();
        }
        Ok(report)
    }

    /// The shared tail of [`System::update`] / [`System::update_shared`]:
    /// fix up the model, swap the code, invalidate the view. The queue
    /// has been checked empty and the program type-checked by the caller.
    fn update_checked(&mut self, new_program: Arc<Program>) -> FixupReport {
        let (store, mut report) = fixup_store(&new_program, &self.store);
        let page_stack = fixup_pages(&new_program, &self.page_stack, &mut report);
        self.program = new_program;
        self.store = store;
        self.page_stack = page_stack;
        self.set_display(Display::Invalid);
        self.queue.clear();
        // View state dies with the view's code (§4.2 discipline applied
        // to the `remember` extension) — and so does the last good tree:
        // keeping it would let a fault resurrect stale code's boxes.
        self.widgets.clear();
        self.last_good = None;
        self.version += 1;
        report
    }

    /// Snapshot the model (store) as persistent text — the "persistent
    /// data" half of the paper's program = code + data (§1).
    ///
    /// # Errors
    ///
    /// [`crate::persist::PersistError::Unpersistable`] if the store
    /// holds a value with no literal form (impossible for type-checked
    /// programs: T-C-GLOBAL keeps globals function-free).
    pub fn snapshot(&self) -> Result<String, crate::persist::PersistError> {
        crate::persist::save_store(&self.store)
    }

    /// Restore a model snapshot against the *current* code. Entries that
    /// no longer type-check are skipped (the persistence analogue of the
    /// Fig. 12 fix-up). The display is invalidated so the restored model
    /// is rendered.
    ///
    /// # Errors
    ///
    /// [`crate::persist::PersistError`] on malformed snapshot syntax.
    pub fn restore(
        &mut self,
        snapshot: &str,
    ) -> Result<crate::persist::LoadReport, crate::persist::PersistError> {
        let (store, report) = crate::persist::load_store(&self.program, snapshot)?;
        self.store = store;
        self.set_display(Display::Invalid);
        Ok(report)
    }

    /// Perform the RENDER transition with a [`bigstep::RenderHook`]
    /// intercepting `boxed` evaluation — the §5 reuse optimization.
    /// Does nothing (returns `false`) if the display is not `⊥`, the
    /// queue is non-empty, or the page stack is empty (i.e. RENDER is
    /// not the enabled transition).
    ///
    /// # Errors
    ///
    /// A contained [`Fault`] — transactional like [`System::step`]'s
    /// RENDER: `remember` slots roll back and the display degrades to
    /// the last good tree.
    pub fn render_with_hook(
        &mut self,
        hook: &mut dyn crate::bigstep::RenderHook,
    ) -> Result<bool, Fault> {
        if !matches!(self.display, Display::Invalid) || !self.queue.is_empty() {
            return Ok(false);
        }
        let Some((page_name, _)) = self.page_stack.last() else {
            return Ok(false);
        };
        let page_name = page_name.clone();
        match self.render_transition(Some(hook)) {
            Ok(()) => {
                self.record_transition(StepKind::Render);
                Ok(true)
            }
            Err((error, cost, fuel)) => {
                self.degrade_display();
                Err(self.fault(FaultKind::Render, Some(page_name), error, cost, fuel))
            }
        }
    }

    /// Mutable access to the store, for tests that need to corrupt or
    /// probe the model directly. Not part of the semantic model: user
    /// code can only reach the store through the transitions.
    #[doc(hidden)]
    pub fn debug_store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Mutable access to the `remember` slots, for harness code that
    /// reconstructs equivalent systems. Not part of the semantic model.
    #[doc(hidden)]
    pub fn debug_widgets_mut(&mut self) -> &mut crate::widget::WidgetStore {
        &mut self.widgets
    }

    /// Replace the page stack wholesale — escape hatch for harness code
    /// modelling *other* systems (the fix-and-continue baseline). Not
    /// part of the semantic model.
    #[doc(hidden)]
    pub fn debug_set_pages(&mut self, pages: Vec<(Name, Value)>) {
        self.page_stack = pages;
        self.set_display(Display::Invalid);
    }

    /// Convenience: the rendered box tree, rendering first if needed.
    ///
    /// # Errors
    ///
    /// Propagates contained [`Fault`]s from pending transitions.
    pub fn rendered(&mut self) -> Result<&BoxNode, Fault> {
        self.run_to_stable()?;
        self.display.content().ok_or(Fault {
            kind: FaultKind::Render,
            page: None,
            error: RuntimeError::Internal("stable state has no display content"),
            fuel_spent: 0,
            fuel_limit: self.config.fuel,
            version: self.version,
        })
    }
}

/// Bind a page's parameters from its argument tuple.
fn bind_page_params(page: &crate::program::PageDef, arg: &Value) -> Vec<(Name, Value)> {
    match arg {
        Value::Tuple(vs) if vs.len() == page.params.len() => page
            .params
            .iter()
            .zip(vs.iter())
            .map(|(p, v)| (p.name.clone(), v.clone()))
            .collect(),
        // Degenerate (ill-typed) argument: bind nothing; the evaluator
        // will report unbound locals if the body uses parameters.
        _ => Vec::new(),
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "System(v{}, display: {}, store: {} globals, stack: [{}], queue: {} events)",
            self.version,
            self.display,
            self.store.len(),
            self.page_stack
                .iter()
                .map(|(n, _)| n.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.queue.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::value::Value;

    const COUNTER: &str = "
        global count : number = 0
        page start() {
            init { count := count + 1; }
            render {
                boxed {
                    post \"count is \" ++ count;
                    on tap { count := count + 10; }
                }
            }
        }";

    fn counter_system() -> System {
        System::new(compile(COUNTER).expect("compiles"))
    }

    #[test]
    fn startup_reaches_stable_render() {
        let mut sys = counter_system();
        assert!(!sys.is_stable());
        let kinds = sys.run_to_stable().expect("runs");
        assert_eq!(
            kinds,
            vec![StepKind::Startup, StepKind::Push, StepKind::Render]
        );
        assert!(sys.is_stable());
        assert_eq!(sys.store().get("count"), Some(&Value::Number(1.0)));
        let root = sys.display().content().expect("valid");
        assert_eq!(
            root.descendant(&[0]).expect("box").leaves().next(),
            Some(&Value::str("count is 1"))
        );
    }

    #[test]
    fn tap_runs_handler_and_rerenders() {
        let mut sys = counter_system();
        sys.run_to_stable().expect("starts");
        sys.tap(&[0]).expect("tap lands");
        assert!(!sys.display().is_valid(), "tap invalidates the display");
        let kinds = sys.run_to_stable().expect("handles tap");
        assert_eq!(kinds, vec![StepKind::Thunk, StepKind::Render]);
        assert_eq!(sys.store().get("count"), Some(&Value::Number(11.0)));
        let root = sys.display().content().expect("valid");
        assert_eq!(
            root.descendant(&[0]).expect("box").leaves().next(),
            Some(&Value::str("count is 11"))
        );
    }

    #[test]
    fn display_generation_tracks_every_reassignment() {
        let mut sys = counter_system();
        let g0 = sys.display_generation();
        sys.run_to_stable().expect("starts");
        let g1 = sys.display_generation();
        assert!(g1 > g0, "startup + render both reassign the display");
        // A stable system left alone keeps its generation: cached
        // rendered output stays valid.
        sys.run_to_stable().expect("idles");
        assert_eq!(sys.display_generation(), g1);
        // A tap invalidates (bump), the re-render validates (bump).
        sys.tap(&[0]).expect("tap");
        let g2 = sys.display_generation();
        assert!(g2 > g1);
        sys.run_to_stable().expect("re-renders");
        assert!(sys.display_generation() > g2);
    }

    #[test]
    fn tap_requires_valid_display() {
        let mut sys = counter_system();
        assert_eq!(sys.tap(&[0]), Err(ActionError::DisplayInvalid));
        sys.run_to_stable().expect("starts");
        assert_eq!(sys.tap(&[9]), Err(ActionError::NoSuchBox(vec![9])));
    }

    #[test]
    fn back_pops_and_startup_reenters() {
        let mut sys = counter_system();
        sys.run_to_stable().expect("starts");
        sys.back();
        let kinds = sys.run_to_stable().expect("pops and restarts");
        // Pop empties the stack; STARTUP pushes start again (re-running
        // init — the paper's model restarts an empty stack).
        assert_eq!(
            kinds,
            vec![
                StepKind::Pop,
                StepKind::Startup,
                StepKind::Push,
                StepKind::Render
            ]
        );
        assert_eq!(sys.store().get("count"), Some(&Value::Number(2.0)));
    }

    #[test]
    fn update_preserves_model_and_rerenders() {
        let mut sys = counter_system();
        sys.run_to_stable().expect("starts");
        sys.tap(&[0]).expect("tap");
        sys.run_to_stable().expect("handles");
        assert_eq!(sys.store().get("count"), Some(&Value::Number(11.0)));

        // Live edit: change the label text (the paper's I2-style tweak).
        let new_code = COUNTER.replace("count is ", "the count: ");
        let new_program = compile(&new_code).expect("new code compiles");
        let report = sys.update(new_program).expect("update applies");
        assert!(!report.dropped_anything());
        assert_eq!(sys.version(), 1);
        assert!(!sys.display().is_valid());

        let kinds = sys.run_to_stable().expect("re-renders");
        // Crucially: only RENDER runs. Init does NOT re-run; the model
        // (count = 11) is preserved.
        assert_eq!(kinds, vec![StepKind::Render]);
        assert_eq!(sys.store().get("count"), Some(&Value::Number(11.0)));
        let root = sys.display().content().expect("valid");
        assert_eq!(
            root.descendant(&[0]).expect("box").leaves().next(),
            Some(&Value::str("the count: 11"))
        );
    }

    #[test]
    fn update_requires_a_drained_queue() {
        let mut sys = counter_system();
        // Step once: STARTUP enqueues [push start ()] — an in-flight
        // event, so UPDATE is blocked.
        sys.step().expect("startup");
        assert!(!sys.queue().is_empty());
        let p = compile(COUNTER).expect("compiles");
        assert!(matches!(sys.update(p), Err(ActionError::NotStable)));
        // Drained (even pre-startup or degraded) states accept updates.
        sys.run_to_stable().expect("settles");
        let p = compile(COUNTER).expect("compiles");
        assert!(sys.update(p).is_ok());
    }

    #[test]
    fn ill_typed_update_is_rejected_and_old_code_keeps_running() {
        let mut sys = counter_system();
        sys.run_to_stable().expect("starts");
        let bad = "global g : number = 0
                   page start() { render { g := 1; } }";
        // The bad program fails `compile` already; build it via parse +
        // lower then feed to update to exercise the `C' ⊢ C'` premise.
        let parsed = alive_syntax::parse_program(bad);
        let lowered = crate::lower::lower_program(&parsed.program);
        let err = sys.update(lowered.program).expect_err("rejected");
        assert!(matches!(err, ActionError::IllTyped(_)));
        assert_eq!(sys.version(), 0);
        assert!(sys.is_stable(), "old program keeps running");
    }

    #[test]
    fn update_dropping_global_reinitializes_it() {
        let mut sys = counter_system();
        sys.run_to_stable().expect("starts");
        // Retype `count` as a string; fix-up drops the old value and the
        // initializer supplies the new one on first read (EP-GLOBAL-2).
        let retyped = "
            global count : string = \"zero\"
            page start() {
                init { count := count ++ \"!\"; }
                render { boxed { post count; } }
            }";
        let report = sys
            .update(compile(retyped).expect("compiles"))
            .expect("update applies");
        assert_eq!(report.dropped_globals.len(), 1);
        sys.run_to_stable().expect("re-renders");
        // Init does not re-run on update, so no "!" is appended; the
        // render reads the initializer value.
        let root = sys.display().content().expect("valid");
        let leaf = root.descendant(&[0]).expect("box").leaves().next().cloned();
        assert_eq!(leaf, Some(Value::str("zero")));
    }

    #[test]
    fn page_navigation_push_and_pop() {
        let two_pages = "
            global picked : number = 0
            page start() {
                render {
                    for i in 0 .. 3 {
                        boxed {
                            post i;
                            on tap { push detail(i); }
                        }
                    }
                }
            }
            page detail(n: number) {
                init { picked := n; }
                render {
                    boxed { post \"detail \" ++ n; on tap { pop; } }
                }
            }";
        let mut sys = System::new(compile(two_pages).expect("compiles"));
        sys.run_to_stable().expect("starts");
        assert_eq!(sys.current_page().map(|(n, _)| n), Some("start"));

        sys.tap(&[1]).expect("tap second entry");
        sys.run_to_stable().expect("navigates");
        assert_eq!(sys.current_page().map(|(n, _)| n), Some("detail"));
        assert_eq!(sys.store().get("picked"), Some(&Value::Number(1.0)));
        let root = sys.display().content().expect("valid");
        assert_eq!(
            root.descendant(&[0]).expect("box").leaves().next(),
            Some(&Value::str("detail 1"))
        );

        sys.tap(&[0]).expect("tap to pop");
        sys.run_to_stable().expect("pops");
        assert_eq!(sys.current_page().map(|(n, _)| n), Some("start"));
        assert_eq!(sys.page_stack().len(), 1);
    }

    #[test]
    fn edit_handler_receives_text() {
        let editable = "
            global term : string = \"30\"
            page start() {
                render {
                    boxed {
                        post term;
                        on edited(text: string) { term := text; }
                    }
                }
            }";
        let mut sys = System::new(compile(editable).expect("compiles"));
        sys.run_to_stable().expect("starts");
        sys.edit_box(&[0], "15").expect("edit lands");
        sys.run_to_stable().expect("handles edit");
        assert_eq!(sys.store().get("term"), Some(&Value::str("15")));
    }

    #[test]
    fn snapshot_and_restore_roundtrip_the_model() {
        let mut sys = counter_system();
        sys.run_to_stable().expect("starts");
        sys.tap(&[0]).expect("tap");
        sys.run_to_stable().expect("handles");
        let snapshot = sys.snapshot().expect("store is function-free");
        assert!(snapshot.contains("count := 11"), "{snapshot}");

        // A fresh system restores the model without re-running init.
        let mut fresh = counter_system();
        fresh.run_to_stable().expect("starts"); // count = 1
        let report = fresh.restore(&snapshot).expect("restores");
        assert_eq!(report.restored, vec!["count".to_string()]);
        fresh.run_to_stable().expect("re-renders");
        let root = fresh.display().content().expect("valid");
        assert_eq!(
            root.descendant(&[0]).expect("box").leaves().next(),
            Some(&Value::str("count is 11"))
        );
    }

    #[test]
    fn infinite_push_cascade_is_bounded() {
        let loopy = "
            page start() {
                init { push start(); }
                render { }
            }";
        let mut sys = System::with_config(
            compile(loopy).expect("compiles"),
            SystemConfig {
                fuel: DEFAULT_FUEL,
                max_transitions: 50,
                ..SystemConfig::default()
            },
        );
        let fault = sys.run_to_stable().expect_err("cascade overflows");
        // Cascade overflow is its own fault kind, distinguishable from
        // in-transition divergence, and carries the configured bound.
        assert_eq!(fault.kind, FaultKind::CascadeOverflow);
        assert_eq!(fault.error, RuntimeError::FuelExhausted);
        assert_eq!(fault.fuel_limit, 50);
        // Containment dropped the runaway queue: the machine recovers by
        // rendering the page the cascade left on top.
        assert!(sys.queue().is_empty());
        sys.run_to_stable().expect("machine survives the overflow");
        assert!(sys.is_stable());
    }

    #[test]
    fn faulting_handler_rolls_back_the_store() {
        // `list.nth` out of range — the paper's partial-primitive
        // failure — after the handler already wrote the store.
        let partial = "
            global count : number = 0
            global xs : list number = []
            page start() {
                render {
                    boxed {
                        post count;
                        on tap { count := count + 1; count := list.nth(xs, 5); }
                    }
                }
            }";
        let mut sys = System::new(compile(partial).expect("compiles"));
        sys.run_to_stable().expect("starts");
        let before_store = sys.store().clone();
        let before_view = sys.display().content().expect("valid").clone();
        sys.tap(&[0]).expect("tap lands");
        let fault = sys.run_to_stable().expect_err("handler faults");
        assert_eq!(fault.kind, FaultKind::Handler);
        assert!(matches!(fault.error, RuntimeError::Prim(_)));
        // Transaction rollback: the half-applied `count := count + 1`
        // is undone; the store is byte-identical to the pre-event state.
        assert_eq!(sys.store(), &before_store);
        // The event was dropped and the last good tree is still shown.
        assert!(sys.queue().is_empty());
        assert!(sys.display().is_stale());
        assert_eq!(sys.display().content(), Some(&before_view));
        assert!(sys.is_stable(), "degraded but alive");
    }

    #[test]
    fn faulting_init_rolls_back_stack_and_store() {
        let faulty_detail = "
            global trace : number = 0
            page start() {
                render {
                    boxed { post \"go\"; on tap { push detail(); } }
                }
            }
            page detail() {
                init { trace := 1; trace := list.nth([0], 5); }
                render { post trace; }
            }";
        let mut sys = System::new(compile(faulty_detail).expect("compiles"));
        sys.run_to_stable().expect("starts");
        sys.tap(&[0]).expect("tap lands");
        // The tap's THUNK succeeds (it only enqueues the push); the
        // push's INIT faults.
        let fault = sys.run_to_stable().expect_err("init faults");
        assert_eq!(fault.kind, FaultKind::Init);
        assert_eq!(fault.page.as_deref(), Some("detail"));
        // Rollback: the page was not pushed, the store write undone.
        assert_eq!(sys.page_stack().len(), 1);
        assert_eq!(sys.current_page().map(|(n, _)| n), Some("start"));
        assert_eq!(sys.store().get("trace"), None);
        assert!(sys.is_stable(), "degraded but alive");
    }

    #[test]
    fn render_fault_keeps_last_good_view_and_recovers() {
        let sometimes = "
            global n : number = 0
            global xs : list number = [7]
            page start() {
                render {
                    boxed {
                        post list.nth(xs, n);
                        on tap { n := n + 1; }
                    }
                }
            }";
        let mut sys = System::new(compile(sometimes).expect("compiles"));
        sys.run_to_stable().expect("starts");
        let good = sys.display().content().expect("valid").clone();
        // Tap pushes n to 1; the re-render indexes out of range.
        sys.tap(&[0]).expect("tap lands");
        let fault = sys.run_to_stable().expect_err("render faults");
        assert_eq!(fault.kind, FaultKind::Render);
        // The handler's store write *committed* (it was a good
        // transition); only the render failed, and the last good tree
        // is still on screen.
        assert_eq!(sys.store().get("n"), Some(&Value::Number(1.0)));
        assert!(sys.display().is_stale());
        assert_eq!(sys.display().content(), Some(&good));
        // The stale tree stays interactive: tapping it again (n := 2)
        // still faults, then a model fix recovers the display.
        sys.tap(&[0]).expect("stale tree is interactive");
        assert!(sys.run_to_stable().is_err());
        sys.debug_store_mut().set("n", Value::Number(0.0));
        sys.back();
        sys.run_to_stable().expect("recovers");
        assert!(sys.display().is_valid());
    }

    #[test]
    fn injected_fuel_throttle_faults_the_chosen_transition() {
        use crate::fault::TransitionKind;
        use std::sync::Arc;

        #[derive(Debug)]
        struct ThrottleSecondRender {
            renders: u64,
        }
        impl crate::fault::FaultInjector for ThrottleSecondRender {
            fn fuel_for(&mut self, kind: TransitionKind, default_fuel: u64) -> u64 {
                if kind == TransitionKind::Render {
                    self.renders += 1;
                    if self.renders == 2 {
                        return 1;
                    }
                }
                default_fuel
            }
        }

        let mut sys = counter_system();
        sys.set_fault_injector(Arc::new(Mutex::new(ThrottleSecondRender { renders: 0 })));
        sys.run_to_stable().expect("first render has full fuel");
        sys.tap(&[0]).expect("tap");
        let fault = sys.run_to_stable().expect_err("second render throttled");
        assert_eq!(fault.kind, FaultKind::Render);
        assert_eq!(fault.error, RuntimeError::FuelExhausted);
        assert_eq!(fault.fuel_limit, 1);
        // Third render gets full fuel again: the machine recovers.
        sys.back();
        sys.run_to_stable().expect("recovers");
        assert!(sys.is_stable());
    }
}
