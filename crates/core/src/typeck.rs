//! The type and effect system — the paper's Figure 10 (expression
//! typing `C; Γ ⊢µ e : τ`) and the program part of Figure 11 (`C ⊢ C`).
//!
//! Effects are checked exactly as in the paper: state operations
//! (`g := e`, `push`, `pop`) require mode `s`; render operations
//! (`boxed`, `post`, `box.a := e`) require mode `r`; pure code runs in
//! any mode (T-SUB). Globals and page arguments must be →-free so that
//! no closure — hence no stale code — survives an UPDATE (§4.2).

use crate::expr::{Expr, ExprKind, ParamSig};
use crate::prim::Prim;
use crate::program::{Program, START_PAGE};
use crate::types::{Effect, Name, Type};
use alive_syntax::ast::{BinOp, UnOp};
use alive_syntax::{Diagnostic, Diagnostics, Span};

/// A typing context Γ: lexically scoped local variable types.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    scopes: Vec<Vec<(Name, Type)>>,
}

impl TypeEnv {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter a scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Leave the innermost scope.
    pub fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    /// Bind a name in the innermost scope.
    pub fn bind(&mut self, name: Name, ty: Type) {
        match self.scopes.last_mut() {
            Some(scope) => scope.push((name, ty)),
            None => self.scopes.push(vec![(name, ty)]),
        }
    }

    /// Look up a name, innermost binding first.
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| &**n == name))
            .map(|(_, t)| t)
    }
}

/// Type-check a whole program (`C ⊢ C`, Fig. 11). Returns all
/// diagnostics; the program is accepted iff none are errors.
pub fn check_program(program: &Program) -> Diagnostics {
    let mut checker = Checker {
        program,
        diags: Diagnostics::new(),
    };
    checker.check();
    checker.diags
}

/// Infer the type of a closed expression in the given mode — exposed for
/// tests and tooling.
pub fn infer_expr(program: &Program, mode: Effect, expr: &Expr) -> Result<Type, Diagnostics> {
    let mut checker = Checker {
        program,
        diags: Diagnostics::new(),
    };
    let mut env = TypeEnv::new();
    let ty = checker.infer(&mut env, mode, expr, None);
    match ty {
        Some(t) if !checker.diags.has_errors() => Ok(t),
        _ => Err(checker.diags),
    }
}

struct Checker<'p> {
    program: &'p Program,
    diags: Diagnostics,
}

impl Checker<'_> {
    fn error(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic::error(span, message));
    }

    fn check(&mut self) {
        // T-SYS: the start page must exist (and takes no arguments, since
        // STARTUP pushes the unit value).
        match self.program.page(START_PAGE) {
            None => self.error(
                Span::DUMMY,
                "program must define `page start()` (rule T-SYS)",
            ),
            Some(p) if !p.params.is_empty() => {
                self.error(p.span, "`page start` must take no parameters");
            }
            Some(_) => {}
        }

        for g in self.program.globals() {
            // T-C-GLOBAL: →-free type, pure initializer of that type.
            if !g.ty.is_arrow_free() {
                self.error(
                    g.span,
                    format!(
                        "global `{}` has type `{}`, but globals must be \
                         function-free (T-C-GLOBAL)",
                        g.name, g.ty
                    ),
                );
            }
            let mut env = TypeEnv::new();
            self.check_expect(&mut env, Effect::Pure, &g.init, &g.ty);
        }

        for e in self.program.examples() {
            // Examples are closed pure probes; an `expect` clause must
            // produce the same type as the probed body.
            let mut env = TypeEnv::new();
            let body_ty = self.infer(&mut env, Effect::Pure, &e.body, None);
            if let Some(expect) = &e.expect {
                match &body_ty {
                    Some(t) => {
                        let mut env = TypeEnv::new();
                        self.check_expect(&mut env, Effect::Pure, expect, t);
                    }
                    None => {
                        let mut env = TypeEnv::new();
                        self.infer(&mut env, Effect::Pure, expect, None);
                    }
                }
            }
        }

        for f in self.program.funs() {
            // T-C-FUN: body types under the declared effect and returns
            // the declared type.
            let mut env = TypeEnv::new();
            env.push_scope();
            for p in f.params.iter() {
                env.bind(p.name.clone(), p.ty.clone());
            }
            self.check_expect(&mut env, f.effect, &f.body, &f.ret);
        }

        for page in self.program.pages() {
            // T-C-PAGE: →-free argument; init : τ →s (); render : τ →r ().
            for p in page.params.iter() {
                if !p.ty.is_arrow_free() {
                    self.error(
                        page.span,
                        format!(
                            "page parameter `{}` has type `{}`, but page \
                             arguments must be function-free (T-C-PAGE)",
                            p.name, p.ty
                        ),
                    );
                }
            }
            let bind_params = |env: &mut TypeEnv| {
                env.push_scope();
                for p in page.params.iter() {
                    env.bind(p.name.clone(), p.ty.clone());
                }
            };
            let mut env = TypeEnv::new();
            bind_params(&mut env);
            self.check_expect(&mut env, Effect::State, &page.init, &Type::unit());
            let mut env = TypeEnv::new();
            bind_params(&mut env);
            self.check_expect(&mut env, Effect::Render, &page.render, &Type::unit());
        }

        self.lint_unused();
    }

    /// Warn (never reject) about globals and functions unreachable from
    /// any page — dead model state and dead code are prime suspects
    /// during a live editing session.
    fn lint_unused(&mut self) {
        use std::collections::HashSet;
        let mut used_globals: HashSet<Name> = HashSet::new();
        let mut used_funs: HashSet<Name> = HashSet::new();
        let mut pending: Vec<Name> = Vec::new();
        let scan = |root: &Expr,
                    used_globals: &mut HashSet<Name>,
                    used_funs: &mut HashSet<Name>,
                    pending: &mut Vec<Name>| {
            root.walk(&mut |e| match &e.kind {
                ExprKind::Global(g) | ExprKind::GlobalAssign(g, _) => {
                    used_globals.insert(g.clone());
                }
                ExprKind::FunRef(f) if used_funs.insert(f.clone()) => {
                    pending.push(f.clone());
                }
                _ => {}
            });
        };
        for page in self.program.pages() {
            scan(&page.init, &mut used_globals, &mut used_funs, &mut pending);
            scan(
                &page.render,
                &mut used_globals,
                &mut used_funs,
                &mut pending,
            );
        }
        // A probed definition is a used definition: live examples keep
        // the code they observe out of the dead-code lint.
        for e in self.program.examples() {
            scan(&e.body, &mut used_globals, &mut used_funs, &mut pending);
            if let Some(expect) = &e.expect {
                scan(expect, &mut used_globals, &mut used_funs, &mut pending);
            }
        }
        while let Some(name) = pending.pop() {
            if let Some(def) = self.program.fun(&name) {
                let body = def.body.clone();
                scan(&body, &mut used_globals, &mut used_funs, &mut pending);
            }
        }
        for g in self.program.globals() {
            if !used_globals.contains(&g.name) {
                self.diags.push(Diagnostic::warning(
                    g.span,
                    format!("global `{}` is never read or written by any page", g.name),
                ));
            }
        }
        for f in self.program.funs() {
            if !used_funs.contains(&f.name) {
                self.diags.push(Diagnostic::warning(
                    f.span,
                    format!("function `{}` is never called from any page", f.name),
                ));
            }
        }
    }

    /// Check `e` against an expected type (with subsumption).
    fn check_expect(&mut self, env: &mut TypeEnv, mode: Effect, expr: &Expr, expected: &Type) {
        if let Some(found) = self.infer(env, mode, expr, Some(expected)) {
            if !found.is_subtype_of(expected) {
                self.error(
                    expr.span,
                    format!("expected type `{expected}`, found `{found}`"),
                );
            }
        }
    }

    /// Require that the current mode is exactly `needed` for an
    /// effectful operation.
    fn require_mode(&mut self, span: Span, mode: Effect, needed: Effect, op: &str) {
        if mode != needed {
            self.error(
                span,
                format!("`{op}` requires {needed} mode, but this is {mode} code"),
            );
        }
    }

    /// Infer a type; `None` means an error was already reported. The
    /// `hint` propagates expected types inward (for empty list literals
    /// and lambda bodies).
    fn infer(
        &mut self,
        env: &mut TypeEnv,
        mode: Effect,
        expr: &Expr,
        hint: Option<&Type>,
    ) -> Option<Type> {
        let span = expr.span;
        match &expr.kind {
            ExprKind::Num(_) => Some(Type::Number),
            ExprKind::Str(_) => Some(Type::String),
            ExprKind::Bool(_) => Some(Type::Bool),
            ExprKind::ColorLit(_) => Some(Type::Color),
            ExprKind::Local(name) => match env.lookup(name) {
                Some(t) => Some(t.clone()),
                None => {
                    self.error(span, format!("unbound local `{name}`"));
                    None
                }
            },
            ExprKind::Global(name) => match self.program.global(name) {
                Some(g) => Some(g.ty.clone()),
                None => {
                    self.error(span, format!("unknown global `{name}`"));
                    None
                }
            },
            ExprKind::FunRef(name) => match self.program.fun(name) {
                Some(f) => Some(Type::Fn(std::sync::Arc::new(f.fn_type()))),
                None => {
                    self.error(span, format!("unknown function `{name}`"));
                    None
                }
            },
            ExprKind::PrimRef(p) => match p.sig() {
                Some(sig) => Some(Type::Fn(std::sync::Arc::new(sig))),
                None => {
                    self.error(
                        span,
                        format!(
                            "polymorphic primitive `{p}` can only be called \
                             directly, not used as a value"
                        ),
                    );
                    None
                }
            },
            ExprKind::Tuple(elems) => {
                let hints: Vec<Option<&Type>> = match hint {
                    Some(Type::Tuple(ts)) if ts.len() == elems.len() => {
                        ts.iter().map(Some).collect()
                    }
                    _ => vec![None; elems.len()],
                };
                let mut tys = Vec::with_capacity(elems.len());
                for (e, h) in elems.iter().zip(hints) {
                    tys.push(self.infer(env, mode, e, h)?);
                }
                Some(Type::tuple(tys))
            }
            ExprKind::ListLit(elems) => {
                let elem_hint = match hint {
                    Some(Type::List(t)) => Some(&**t),
                    _ => None,
                };
                if elems.is_empty() {
                    return match elem_hint {
                        Some(t) => Some(Type::list(t.clone())),
                        None => {
                            self.error(
                                span,
                                "cannot infer the element type of an empty list; \
                                 add a type annotation",
                            );
                            None
                        }
                    };
                }
                let first = self.infer(env, mode, &elems[0], elem_hint)?;
                for e in &elems[1..] {
                    let t = self.infer(env, mode, e, Some(&first))?;
                    if !t.is_subtype_of(&first) {
                        self.error(
                            e.span,
                            format!(
                                "list elements must have one type: expected \
                                 `{first}`, found `{t}`"
                            ),
                        );
                    }
                }
                Some(Type::list(first))
            }
            ExprKind::Proj(base, index) => {
                let base_ty = self.infer(env, mode, base, None)?;
                match &base_ty {
                    Type::Tuple(ts) => {
                        let i = *index as usize;
                        if i >= 1 && i <= ts.len() {
                            Some(ts[i - 1].clone())
                        } else {
                            self.error(
                                span,
                                format!("projection .{index} out of range for `{base_ty}`"),
                            );
                            None
                        }
                    }
                    _ => {
                        self.error(
                            base.span,
                            format!("projection requires a tuple, found `{base_ty}`"),
                        );
                        None
                    }
                }
            }
            ExprKind::Call(callee, args) => {
                // Polymorphic list primitives are typed structurally.
                if let ExprKind::PrimRef(p) = &callee.kind {
                    if p.sig().is_none() {
                        return self.infer_poly_prim(env, mode, span, *p, args);
                    }
                }
                let callee_ty = self.infer(env, mode, callee, None)?;
                let Type::Fn(sig) = &callee_ty else {
                    self.error(
                        callee.span,
                        format!("cannot call a value of type `{callee_ty}`"),
                    );
                    return None;
                };
                // T-APP + T-SUB: the latent effect must fit this mode.
                if !sig.effect.subeffect_of(mode) {
                    self.error(
                        span,
                        format!("cannot call a {} function from {} code", sig.effect, mode),
                    );
                }
                if args.len() != sig.params.len() {
                    self.error(
                        span,
                        format!(
                            "expected {} argument(s), found {}",
                            sig.params.len(),
                            args.len()
                        ),
                    );
                    return None;
                }
                for (arg, pty) in args.iter().zip(sig.params.iter()) {
                    self.check_expect(env, mode, arg, pty);
                }
                Some(sig.ret.clone())
            }
            ExprKind::Lambda(lam) => {
                env.push_scope();
                for p in lam.params.iter() {
                    env.bind(p.name.clone(), p.ty.clone());
                }
                let ret_hint = match hint {
                    Some(Type::Fn(sig)) if sig.params.len() == lam.params.len() => {
                        Some(sig.ret.clone())
                    }
                    _ => None,
                };
                let body_ty = self.infer(env, lam.effect, &lam.body, ret_hint.as_ref());
                env.pop_scope();
                let ret = body_ty?;
                Some(Type::func(
                    lam.params.iter().map(|p| p.ty.clone()).collect(),
                    lam.effect,
                    ret,
                ))
            }
            ExprKind::Let {
                name,
                ty,
                value,
                body,
            } => {
                let value_ty = match ty {
                    Some(declared) => {
                        self.check_expect(env, mode, value, declared);
                        Some(declared.clone())
                    }
                    None => self.infer(env, mode, value, None),
                };
                env.push_scope();
                if let Some(t) = value_ty {
                    env.bind(name.clone(), t);
                } else {
                    // Recovery: bind to unit so the body still checks.
                    env.bind(name.clone(), Type::unit());
                }
                let body_ty = self.infer(env, mode, body, hint);
                env.pop_scope();
                body_ty
            }
            ExprKind::Seq(a, b) => {
                self.infer(env, mode, a, None)?;
                self.infer(env, mode, b, hint)
            }
            ExprKind::If(c, t, e) => {
                self.check_expect(env, mode, c, &Type::Bool);
                let then_ty = self.infer(env, mode, t, hint)?;
                let else_ty = self.infer(env, mode, e, hint.or(Some(&then_ty)))?;
                if else_ty.is_subtype_of(&then_ty) {
                    Some(then_ty)
                } else if then_ty.is_subtype_of(&else_ty) {
                    Some(else_ty)
                } else {
                    self.error(
                        span,
                        format!("branches of `if` disagree: `{then_ty}` vs `{else_ty}`"),
                    );
                    None
                }
            }
            ExprKind::While(c, body) => {
                self.check_expect(env, mode, c, &Type::Bool);
                self.infer(env, mode, body, None)?;
                Some(Type::unit())
            }
            ExprKind::ForRange { var, lo, hi, body } => {
                self.check_expect(env, mode, lo, &Type::Number);
                self.check_expect(env, mode, hi, &Type::Number);
                env.push_scope();
                env.bind(var.clone(), Type::Number);
                self.infer(env, mode, body, None);
                env.pop_scope();
                Some(Type::unit())
            }
            ExprKind::Foreach { var, list, body } => {
                let list_ty = self.infer(env, mode, list, None)?;
                let Type::List(elem) = &list_ty else {
                    self.error(
                        list.span,
                        format!("`foreach` requires a list, found `{list_ty}`"),
                    );
                    return None;
                };
                env.push_scope();
                env.bind(var.clone(), (**elem).clone());
                self.infer(env, mode, body, None);
                env.pop_scope();
                Some(Type::unit())
            }
            ExprKind::LocalAssign(name, value) => {
                // Local mutation is mode-agnostic: it cannot escape the
                // model-view separation (locals die with the activation).
                let Some(declared) = env.lookup(name).cloned() else {
                    self.error(span, format!("unbound local `{name}`"));
                    return None;
                };
                self.check_expect(env, mode, value, &declared);
                Some(Type::unit())
            }
            ExprKind::GlobalAssign(name, value) => {
                // T-ASSIGN: only in state mode.
                self.require_mode(span, mode, Effect::State, "g := e");
                let Some(g) = self.program.global(name) else {
                    self.error(span, format!("unknown global `{name}`"));
                    return None;
                };
                let declared = g.ty.clone();
                self.check_expect(env, mode, value, &declared);
                Some(Type::unit())
            }
            ExprKind::PushPage(name, args) => {
                // T-PUSH: only in state mode; argument types match.
                self.require_mode(span, mode, Effect::State, "push");
                let Some(page) = self.program.page(name) else {
                    self.error(span, format!("unknown page `{name}`"));
                    return None;
                };
                let params: Vec<ParamSig> = page.params.to_vec();
                if args.len() != params.len() {
                    self.error(
                        span,
                        format!(
                            "page `{name}` takes {} argument(s), found {}",
                            params.len(),
                            args.len()
                        ),
                    );
                    return Some(Type::unit());
                }
                for (arg, p) in args.iter().zip(params.iter()) {
                    self.check_expect(env, mode, arg, &p.ty);
                }
                Some(Type::unit())
            }
            ExprKind::PopPage => {
                // T-POP: only in state mode.
                self.require_mode(span, mode, Effect::State, "pop");
                Some(Type::unit())
            }
            ExprKind::Boxed(_, body) => {
                // T-BOXED: render mode; the box's value is the body's.
                self.require_mode(span, mode, Effect::Render, "boxed");
                self.infer(env, Effect::Render, body, hint)
            }
            ExprKind::Post(value) => {
                // T-POST: render mode; any value type.
                self.require_mode(span, mode, Effect::Render, "post");
                self.infer(env, Effect::Render, value, None)?;
                Some(Type::unit())
            }
            ExprKind::SetAttr(attr, value) => {
                // T-ATTR: render mode; value must match Γa(a).
                self.require_mode(span, mode, Effect::Render, "box.a := e");
                let expected = attr.ty();
                self.check_expect(env, Effect::Render, value, &expected);
                Some(Type::unit())
            }
            ExprKind::Remember {
                name,
                ty,
                init,
                body,
                ..
            } => {
                // View-state slots exist only in render code; the slot
                // type must be →-free so no code hides in view state.
                self.require_mode(span, mode, Effect::Render, "remember");
                if !ty.is_arrow_free() {
                    self.error(
                        span,
                        format!(
                            "`remember {name}` has type `{ty}`, but view-state \
                             slots must be function-free"
                        ),
                    );
                }
                self.check_expect(env, Effect::Pure, init, ty);
                env.push_scope();
                env.bind(name.clone(), ty.clone());
                let body_ty = self.infer(env, mode, body, hint);
                env.pop_scope();
                body_ty
            }
            ExprKind::WidgetRead(name) => match env.lookup(name) {
                Some(t) => Some(t.clone()),
                None => {
                    self.error(span, format!("unbound view-state slot `{name}`"));
                    None
                }
            },
            ExprKind::WidgetWrite(name, value) => {
                // Only handlers (state code) may mutate view state; the
                // view itself stays a function of model + view-state.
                self.require_mode(span, mode, Effect::State, "widget slot assignment");
                let Some(declared) = env.lookup(name).cloned() else {
                    self.error(span, format!("unbound view-state slot `{name}`"));
                    return None;
                };
                self.check_expect(env, mode, value, &declared);
                Some(Type::unit())
            }
            ExprKind::Binary(op, lhs, rhs) => self.infer_binary(env, mode, span, *op, lhs, rhs),
            ExprKind::Unary(op, inner) => match op {
                UnOp::Neg => {
                    self.check_expect(env, mode, inner, &Type::Number);
                    Some(Type::Number)
                }
                UnOp::Not => {
                    self.check_expect(env, mode, inner, &Type::Bool);
                    Some(Type::Bool)
                }
            },
        }
    }

    fn infer_binary(
        &mut self,
        env: &mut TypeEnv,
        mode: Effect,
        span: Span,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Option<Type> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Mod => {
                self.check_expect(env, mode, lhs, &Type::Number);
                self.check_expect(env, mode, rhs, &Type::Number);
                Some(Type::Number)
            }
            And | Or => {
                self.check_expect(env, mode, lhs, &Type::Bool);
                self.check_expect(env, mode, rhs, &Type::Bool);
                Some(Type::Bool)
            }
            Concat => {
                for side in [lhs, rhs] {
                    let t = self.infer(env, mode, side, None)?;
                    if !matches!(t, Type::String | Type::Number | Type::Bool | Type::Color) {
                        self.error(
                            side.span,
                            format!(
                                "`++` concatenates strings, numbers, bools, and \
                                 colors; found `{t}`"
                            ),
                        );
                    }
                }
                Some(Type::String)
            }
            Eq | Ne => {
                let lt = self.infer(env, mode, lhs, None)?;
                let rt = self.infer(env, mode, rhs, Some(&lt))?;
                if !(rt.is_subtype_of(&lt) || lt.is_subtype_of(&rt)) {
                    self.error(span, format!("cannot compare `{lt}` with `{rt}`"));
                } else if !lt.is_arrow_free() {
                    self.error(span, "cannot compare functions for equality");
                }
                Some(Type::Bool)
            }
            Lt | Le | Gt | Ge => {
                let lt = self.infer(env, mode, lhs, None)?;
                match lt {
                    Type::Number => self.check_expect(env, mode, rhs, &Type::Number),
                    Type::String => self.check_expect(env, mode, rhs, &Type::String),
                    other => {
                        self.error(
                            lhs.span,
                            format!("ordering requires numbers or strings, found `{other}`"),
                        );
                        self.infer(env, mode, rhs, None)?;
                    }
                }
                Some(Type::Bool)
            }
        }
    }

    /// Structural typing for the polymorphic `list` primitives.
    fn infer_poly_prim(
        &mut self,
        env: &mut TypeEnv,
        mode: Effect,
        span: Span,
        prim: Prim,
        args: &[Expr],
    ) -> Option<Type> {
        if args.len() != prim.arity() {
            self.error(
                span,
                format!(
                    "`{prim}` takes {} argument(s), found {}",
                    prim.arity(),
                    args.len()
                ),
            );
            return None;
        }
        let list_ty = self.infer(env, mode, &args[0], None)?;
        let Type::List(elem) = &list_ty else {
            self.error(
                args[0].span,
                format!("`{prim}` requires a list, found `{list_ty}`"),
            );
            return None;
        };
        let elem = (**elem).clone();
        match prim {
            Prim::ListLength => Some(Type::Number),
            Prim::ListIsEmpty => Some(Type::Bool),
            Prim::ListReverse => Some(list_ty.clone()),
            Prim::ListNth => {
                self.check_expect(env, mode, &args[1], &Type::Number);
                Some(elem)
            }
            Prim::ListAppend => {
                self.check_expect(env, mode, &args[1], &elem);
                Some(list_ty.clone())
            }
            Prim::ListSet => {
                self.check_expect(env, mode, &args[1], &Type::Number);
                self.check_expect(env, mode, &args[2], &elem);
                Some(list_ty.clone())
            }
            Prim::ListConcat => {
                self.check_expect(env, mode, &args[1], &list_ty);
                Some(list_ty.clone())
            }
            other => unreachable!("`{other}` is monomorphic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use alive_syntax::parse_program;

    fn check(src: &str) -> Diagnostics {
        let parsed = parse_program(src);
        assert!(parsed.is_ok(), "parse: {}", parsed.diagnostics.render(src));
        let lowered = lower_program(&parsed.program);
        assert!(
            lowered.is_ok(),
            "lower: {}",
            lowered.diagnostics.render(src)
        );
        check_program(&lowered.program)
    }

    fn check_ok(src: &str) {
        let ds = check(src);
        assert!(!ds.has_errors(), "unexpected type errors: {ds}");
    }

    fn check_err(src: &str, needle: &str) {
        let ds = check(src);
        assert!(
            ds.has_errors(),
            "expected a type error containing {needle:?}"
        );
        let text = ds.to_string();
        assert!(
            text.contains(needle),
            "expected error containing {needle:?}, got:\n{text}"
        );
    }

    const START: &str = "page start() { render { } }";

    #[test]
    fn requires_start_page() {
        let ds = check("global g : number = 0");
        assert!(ds.to_string().contains("page start"));
        check_ok(START);
    }

    #[test]
    fn start_page_takes_no_params() {
        check_err("page start(x: number) { render { } }", "no parameters");
    }

    #[test]
    fn global_types_check() {
        check_ok(&format!("global g : number = 1 + 2 {START}"));
        check_err(
            &format!("global g : number = \"hi\" {START}"),
            "expected type `number`",
        );
    }

    #[test]
    fn globals_must_be_arrow_free() {
        check_err(
            &format!("global h : fn() state -> () = fn() state {{ pop; }} {START}"),
            "function-free",
        );
    }

    #[test]
    fn render_cannot_write_globals() {
        check_err(
            "global g : number = 0
             page start() { render { g := 1; } }",
            "requires state mode",
        );
    }

    #[test]
    fn render_cannot_push_or_pop() {
        check_err("page start() { render { pop; } }", "requires state mode");
        check_err(
            "page start() { render { push start(); } }",
            "requires state mode",
        );
    }

    #[test]
    fn init_cannot_create_boxes() {
        check_err(
            "page start() { init { boxed { } } render { } }",
            "requires render mode",
        );
        check_err(
            "page start() { init { post 1; } render { } }",
            "requires render mode",
        );
    }

    #[test]
    fn handlers_can_write_globals() {
        check_ok(
            "global count : number = 0
             page start() {
                 render {
                     boxed { on tap { count := count + 1; } }
                 }
             }",
        );
    }

    #[test]
    fn render_functions_callable_only_from_render() {
        check_ok(
            "fun show(n: number): () render { boxed { post n; } }
             page start() { render { show(1); } }",
        );
        check_err(
            "fun show(n: number): () render { boxed { post n; } }
             page start() { init { show(1); } render { } }",
            "cannot call a render function from state code",
        );
    }

    #[test]
    fn pure_functions_callable_everywhere() {
        check_ok(
            "fun double(n: number): number pure { n * 2 }
             global g : number = double(2)
             page start() {
                 init { g := double(3); }
                 render { post double(4); }
             }",
        );
    }

    #[test]
    fn state_functions_not_callable_from_render() {
        check_err(
            "global g : number = 0
             fun bump(): () state { g := g + 1; }
             page start() { render { bump(); } }",
            "cannot call a state function from render code",
        );
    }

    #[test]
    fn attr_types_enforced() {
        check_ok("page start() { render { boxed { box.margin := 4; } } }");
        check_err(
            "page start() { render { boxed { box.margin := \"wide\"; } } }",
            "expected type `number`",
        );
        check_ok("page start() { render { boxed { box.background := colors.red; } } }");
    }

    #[test]
    fn page_arguments_checked_at_push() {
        check_ok(
            "page start() { render { boxed { on tap { push detail(\"a\", 1); } } } }
             page detail(addr: string, price: number) { render { post addr; } }",
        );
        check_err(
            "page start() { render { boxed { on tap { push detail(1); } } } }
             page detail(addr: string) { render { } }",
            "expected type `string`",
        );
        check_err(
            "page start() { render { boxed { on tap { push detail(); } } } }
             page detail(addr: string) { render { } }",
            "takes 1 argument",
        );
    }

    #[test]
    fn projection_bounds() {
        check_ok(
            "fun f(t: (string, number)): number pure { t.2 }
             page start() { render { } }",
        );
        check_err(
            "fun f(t: (string, number)): number pure { t.3 }
             page start() { render { } }",
            "out of range",
        );
    }

    #[test]
    fn empty_list_needs_annotation() {
        check_ok(&format!("global xs : list number = [] {START}"));
        check_err(
            "fun f(): number pure { let xs = []; 0 }
             page start() { render { } }",
            "empty list",
        );
    }

    #[test]
    fn poly_list_prims() {
        check_ok(&format!(
            "global xs : list string = [\"a\"]
             global n : number = list.length(xs)
             global s : string = list.nth(xs, 0)
             global ys : list string = list.append(xs, \"b\")
             {START}"
        ));
        check_err(
            &format!(
                "global xs : list string = [\"a\"]
                 global ys : list string = list.append(xs, 1)
                 {START}"
            ),
            "expected type `string`",
        );
    }

    #[test]
    fn web_is_state_effect() {
        check_ok(
            "global listings : list (string, number) = []
             page start() {
                 init { listings := web.listings(10); }
                 render { post list.length(listings); }
             }",
        );
        check_err(
            "page start() { render { post web.listings(10); } }",
            "cannot call a state function from render code",
        );
    }

    #[test]
    fn concat_coerces_but_checks() {
        check_ok(&format!("global s : string = \"n=\" ++ 42 ++ true {START}"));
        check_err(
            &format!("global s : string = \"x\" ++ (1, 2) {START}"),
            "`++` concatenates",
        );
    }

    #[test]
    fn if_branches_must_agree() {
        check_ok(&format!(
            "fun f(b: bool): number pure {{ if b {{ 1 }} else {{ 2 }} }} {START}"
        ));
        check_err(
            &format!("fun f(b: bool): number pure {{ if b {{ 1 }} else {{ \"x\" }} }} {START}"),
            "branches of `if` disagree",
        );
    }

    #[test]
    fn cannot_compare_functions() {
        check_err(
            &format!(
                "fun f(): bool pure {{
                     let g = fn(x: number) -> x;
                     let h = fn(x: number) -> x;
                     g == h
                 }} {START}"
            ),
            "cannot compare functions",
        );
    }

    #[test]
    fn handler_effect_mismatch_rejected() {
        // A render-effect lambda cannot be installed as a (state) handler.
        check_err(
            "page start() { render { boxed {
                 box.ontap := fn() render { post 1; };
             } } }",
            "expected type",
        );
    }

    #[test]
    fn unused_definitions_warn_but_do_not_reject() {
        let ds = check(
            "global used : number = 0
             global dead : number = 0
             fun live_fn(): number pure { used }
             fun dead_fn(): number pure { 1 }
             fun indirectly_live(): number pure { 2 }
             fun caller(): number pure { indirectly_live() }
             page start() {
                 init { used := live_fn() + caller(); }
                 render { post used; }
             }",
        );
        assert!(!ds.has_errors(), "warnings only: {ds}");
        let text = ds.to_string();
        assert!(text.contains("global `dead` is never"), "{text}");
        assert!(text.contains("function `dead_fn` is never"), "{text}");
        assert!(!text.contains("`used`"), "{text}");
        assert!(!text.contains("`live_fn`"), "{text}");
        assert!(!text.contains("`indirectly_live`"), "{text}");
        // compile() accepts programs with warnings.
        assert!(crate::compile(
            "global dead : number = 0
             page start() { render { } }"
        )
        .is_ok());
    }

    #[test]
    fn boxed_value_passthrough() {
        // boxed e has the type of e (T-BOXED).
        check_ok(
            "fun measure(): number render { boxed { post 1; 42 } }
             page start() { render { measure(); } }",
        );
    }
}
