//! The production evaluator: an environment/closure interpreter.
//!
//! This is the efficient refinement of the paper's small-step semantics
//! (Fig. 8); [`crate::smallstep`] implements the substitution machine
//! verbatim and the two are cross-checked by tests and the E7 ablation
//! bench. The evaluator runs in one of the three modes and *dynamically*
//! refuses wrong-mode operations, witnessing the static effect
//! discipline: for type-checked programs the dynamic checks never fire.

use crate::boxtree::{BoxItem, BoxNode};
use crate::error::RuntimeError;
use crate::event::{Event, EventQueue};
use crate::expr::{Expr, ExprKind};
use crate::fault::FaultInjector;
use crate::prim::PrimCtx;
use crate::program::Program;
use crate::provenance::Provenance;
use crate::store::Store;
use crate::types::{Effect, Name};
use crate::value::{Closure, Value};
use alive_syntax::ast::{BinOp, UnOp};
use std::sync::Arc;

/// Default step budget for one transition's worth of evaluation.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// Deterministic cost accounting for one or more evaluation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Expression evaluation steps taken.
    pub steps: u64,
    /// Boxes created by `boxed`.
    pub boxes_created: u64,
    /// Boxes spliced from the reuse cache instead of re-evaluated.
    pub boxes_reused: u64,
    /// Leaves posted by `post`.
    pub posts: u64,
    /// Simulated external latency and request counts.
    pub prim: PrimCtx,
}

impl Cost {
    /// Merge another cost record into this one.
    pub fn absorb(&mut self, other: Cost) {
        self.steps += other.steps;
        self.boxes_created += other.boxes_created;
        self.boxes_reused += other.boxes_reused;
        self.posts += other.posts;
        self.prim.simulated_ms += other.prim.simulated_ms;
        self.prim.web_requests += other.prim.web_requests;
    }
}

/// One local scope frame.
type Frame = Vec<(Name, Value)>;

/// Store access for one run: mutable in state mode, shared otherwise.
/// Render and pure code hold only a shared reference, so immutability of
/// the model during rendering is enforced by the borrow checker on top
/// of the dynamic mode checks.
enum StoreAccess<'a> {
    Mut(&'a mut Store),
    Ref(&'a Store),
}

impl StoreAccess<'_> {
    fn get(&self, name: &str) -> Option<&Value> {
        match self {
            StoreAccess::Mut(s) => s.get(name),
            StoreAccess::Ref(s) => s.get(name),
        }
    }

    fn set(&mut self, name: &str, value: Value) -> Result<(), ()> {
        match self {
            StoreAccess::Mut(s) => {
                s.set(name, value);
                Ok(())
            }
            StoreAccess::Ref(_) => Err(()),
        }
    }
}

/// The evaluator. Construct one per run via the `run_*` entry points.
pub struct Evaluator<'a> {
    program: &'a Program,
    store: StoreAccess<'a>,
    queue: Option<&'a mut EventQueue>,
    mode: Effect,
    /// Render frames; `boxes[0]` is the implicit top-level box.
    boxes: Vec<BoxNode>,
    scopes: Vec<Frame>,
    fuel: u64,
    /// Code version stamped into closures (for the stale-code invariant).
    version: u64,
    cost: Cost,
    /// Optional interception of `boxed` evaluation (render runs only).
    hook: Option<&'a mut dyn RenderHook>,
    /// View-state slots (`remember`), when the host supplies them.
    widgets: Option<&'a mut crate::widget::WidgetStore>,
    /// Optional deterministic fault injection (primitive failures).
    faults: Option<&'a mut dyn FaultInjector>,
}

/// Interception points around `boxed` evaluation, used by the paper's
/// §5 box-tree reuse optimization ("reuse box tree elements that have
/// not changed").
pub trait RenderHook {
    /// Called when entering `boxed e`. Returning `Some((node, value))`
    /// skips evaluating the body and splices the cached subtree in —
    /// an O(1) pointer copy, since children are `Arc`-shared.
    /// `locals` is the visible local environment, outermost first.
    fn enter_boxed(
        &mut self,
        id: crate::expr::BoxSourceId,
        locals: &[(Name, Value)],
    ) -> Option<(Arc<BoxNode>, Value)>;

    /// Called after a `boxed` body evaluated to `node` / `value`, so the
    /// hook can populate its cache. The node is already shared; caching
    /// it keeps the subtree pointer-identical on future splices.
    fn after_boxed(
        &mut self,
        id: crate::expr::BoxSourceId,
        locals: &[(Name, Value)],
        node: &Arc<BoxNode>,
        value: &Value,
    );
}

/// Result of a render run: the box tree plus accumulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderOutput {
    /// The top-level box content built by the render code.
    pub root: BoxNode,
    /// Cost of the run.
    pub cost: Cost,
}

/// Evaluate `expr` in state mode (`→s`): may write globals and enqueue
/// navigation events. `bindings` are the initial locals (page params).
///
/// # Errors
///
/// Returns [`RuntimeError`] on divergence (fuel), partial primitives, or
/// — for programs that bypassed the type checker — dynamic type/effect
/// violations.
pub fn run_state(
    program: &Program,
    store: &mut Store,
    queue: &mut EventQueue,
    version: u64,
    fuel: u64,
    bindings: Frame,
    expr: &Expr,
) -> Result<(Value, Cost), RuntimeError> {
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Mut(store),
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        scopes: vec![bindings],
        fuel,
        version,
        cost: Cost::default(),
        hook: None,
        widgets: None,
        faults: None,
    };
    let value = ev.eval(expr)?;
    Ok((value, ev.cost))
}

/// Evaluate `expr` in render mode (`→r`): builds box content, may read
/// but not write the store.
///
/// # Errors
///
/// See [`run_state`].
pub fn run_render(
    program: &Program,
    store: &Store,
    version: u64,
    fuel: u64,
    bindings: Frame,
    expr: &Expr,
) -> Result<RenderOutput, RuntimeError> {
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Ref(store),
        queue: None,
        mode: Effect::Render,
        boxes: vec![BoxNode::new(None)],
        scopes: vec![bindings],
        fuel,
        version,
        cost: Cost::default(),
        hook: None,
        widgets: None,
        faults: None,
    };
    ev.eval(expr)?;
    let root = ev
        .boxes
        .pop()
        .ok_or(RuntimeError::Internal("top-level box frame missing"))?;
    Ok(RenderOutput {
        root,
        cost: ev.cost,
    })
}

/// Like [`run_render`], but with a [`RenderHook`] intercepting `boxed`
/// evaluation — the entry point of the §5 reuse optimization.
///
/// # Errors
///
/// See [`run_state`].
pub fn run_render_hooked(
    program: &Program,
    store: &Store,
    version: u64,
    fuel: u64,
    bindings: Frame,
    expr: &Expr,
    hook: &mut dyn RenderHook,
) -> Result<RenderOutput, RuntimeError> {
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Ref(store),
        queue: None,
        mode: Effect::Render,
        boxes: vec![BoxNode::new(None)],
        scopes: vec![bindings],
        fuel,
        version,
        cost: Cost::default(),
        hook: Some(hook),
        widgets: None,
        faults: None,
    };
    ev.eval(expr)?;
    let root = ev
        .boxes
        .pop()
        .ok_or(RuntimeError::Internal("top-level box frame missing"))?;
    Ok(RenderOutput {
        root,
        cost: ev.cost,
    })
}

/// Like [`run_render`], with both optional extras: a [`RenderHook`]
/// (the §5 reuse cache) and a [`crate::widget::WidgetStore`] (the §7
/// `remember` view state). The widget store's occurrence counters must
/// be reset (`begin_render`) by the caller before each render pass.
///
/// # Errors
///
/// See [`run_state`].
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn run_render_full<'a>(
    program: &'a Program,
    store: &'a Store,
    version: u64,
    fuel: u64,
    bindings: Frame,
    expr: &Expr,
    hook: Option<&'a mut dyn RenderHook>,
    widgets: Option<&'a mut crate::widget::WidgetStore>,
) -> Result<RenderOutput, RuntimeError> {
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Ref(store),
        queue: None,
        mode: Effect::Render,
        boxes: vec![BoxNode::new(None)],
        scopes: vec![bindings],
        fuel,
        version,
        cost: Cost::default(),
        hook,
        widgets,
        faults: None,
    };
    ev.eval(expr)?;
    let root = ev
        .boxes
        .pop()
        .ok_or(RuntimeError::Internal("top-level box frame missing"))?;
    Ok(RenderOutput {
        root,
        cost: ev.cost,
    })
}

/// Like [`call_thunk`], with a widget store so handlers can write
/// `remember` slots.
///
/// # Errors
///
/// See [`run_state`].
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn call_thunk_full<'a>(
    program: &'a Program,
    store: &'a mut Store,
    queue: &'a mut EventQueue,
    version: u64,
    fuel: u64,
    thunk: &Value,
    args: Vec<Value>,
    widgets: Option<&'a mut crate::widget::WidgetStore>,
) -> Result<(Value, Cost), RuntimeError> {
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Mut(store),
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        scopes: vec![Vec::new()],
        fuel,
        version,
        cost: Cost::default(),
        hook: None,
        widgets,
        faults: None,
    };
    let value = ev.apply(thunk.clone(), args, alive_syntax::Span::DUMMY)?;
    Ok((value, ev.cost))
}

/// Evaluate `expr` in pure mode (`→p`): reads code and store only.
///
/// # Errors
///
/// See [`run_state`].
pub fn run_pure(
    program: &Program,
    store: &Store,
    version: u64,
    fuel: u64,
    expr: &Expr,
) -> Result<(Value, Cost), RuntimeError> {
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Ref(store),
        queue: None,
        mode: Effect::Pure,
        boxes: Vec::new(),
        scopes: vec![Vec::new()],
        fuel,
        version,
        cost: Cost::default(),
        hook: None,
        widgets: None,
        faults: None,
    };
    let value = ev.eval(expr)?;
    Ok((value, ev.cost))
}

/// Call a handler thunk `v ()` in state mode — the body of the THUNK
/// transition.
///
/// # Errors
///
/// See [`run_state`].
pub fn call_thunk(
    program: &Program,
    store: &mut Store,
    queue: &mut EventQueue,
    version: u64,
    fuel: u64,
    thunk: &Value,
    args: Vec<Value>,
) -> Result<(Value, Cost), RuntimeError> {
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Mut(store),
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        scopes: vec![Vec::new()],
        fuel,
        version,
        cost: Cost::default(),
        hook: None,
        widgets: None,
        faults: None,
    };
    let value = ev.apply(thunk.clone(), args, alive_syntax::Span::DUMMY)?;
    Ok((value, ev.cost))
}

/// Reborrow adapter: a trait object's lifetime bound is invariant
/// behind `&mut`, so passing a caller's `&mut dyn FaultInjector`
/// straight into [`Evaluator`] would drag the caller's lifetime into
/// every other borrow of the run. Wrapping it in a fresh concrete type
/// lets the unsize coercion pick a run-local bound instead.
pub(crate) struct ReborrowFaults<'r, 'f>(pub(crate) &'r mut (dyn FaultInjector + 'f));

impl FaultInjector for ReborrowFaults<'_, '_> {
    fn fuel_for(&mut self, kind: crate::fault::TransitionKind, default_fuel: u64) -> u64 {
        self.0.fuel_for(kind, default_fuel)
    }

    fn before_prim(&mut self, prim: crate::prim::Prim) -> Option<crate::prim::PrimError> {
        self.0.before_prim(prim)
    }
}

impl std::fmt::Debug for ReborrowFaults<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Reborrow adapter for [`RenderHook`]; see [`ReborrowFaults`].
pub(crate) struct ReborrowHook<'r, 'h>(pub(crate) &'r mut (dyn RenderHook + 'h));

impl RenderHook for ReborrowHook<'_, '_> {
    fn enter_boxed(
        &mut self,
        id: crate::expr::BoxSourceId,
        locals: &[(Name, Value)],
    ) -> Option<(Arc<BoxNode>, Value)> {
        self.0.enter_boxed(id, locals)
    }

    fn after_boxed(
        &mut self,
        id: crate::expr::BoxSourceId,
        locals: &[(Name, Value)],
        node: &Arc<BoxNode>,
        value: &Value,
    ) {
        self.0.after_boxed(id, locals, node, value)
    }
}

/// Transactional entry point for the PUSH transition's `init` body:
/// like [`run_state`], but the cost is reported even when the run fails
/// (so a contained fault can record the fuel it burned), and an optional
/// [`FaultInjector`] can make primitives fail deterministically.
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn transition_state(
    program: &Program,
    store: &mut Store,
    queue: &mut EventQueue,
    version: u64,
    fuel: u64,
    bindings: Vec<(Name, Value)>,
    expr: &Expr,
    widgets: Option<&mut crate::widget::WidgetStore>,
    faults: Option<&mut (dyn FaultInjector + '_)>,
) -> (Result<Value, RuntimeError>, Cost) {
    let mut faults = faults.map(ReborrowFaults);
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Mut(store),
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        scopes: vec![bindings],
        fuel,
        version,
        cost: Cost::default(),
        hook: None,
        widgets,
        faults: faults.as_mut().map(|f| f as &mut dyn FaultInjector),
    };
    let result = ev.eval(expr);
    (result, ev.cost)
}

/// Transactional entry point for the THUNK transition: like
/// [`call_thunk_full`], but the cost is reported even on failure and a
/// [`FaultInjector`] can be supplied.
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn transition_thunk(
    program: &Program,
    store: &mut Store,
    queue: &mut EventQueue,
    version: u64,
    fuel: u64,
    thunk: &Value,
    args: Vec<Value>,
    widgets: Option<&mut crate::widget::WidgetStore>,
    faults: Option<&mut (dyn FaultInjector + '_)>,
) -> (Result<Value, RuntimeError>, Cost) {
    let mut faults = faults.map(ReborrowFaults);
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Mut(store),
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        scopes: vec![Vec::new()],
        fuel,
        version,
        cost: Cost::default(),
        hook: None,
        widgets,
        faults: faults.as_mut().map(|f| f as &mut dyn FaultInjector),
    };
    let result = ev.apply(thunk.clone(), args, alive_syntax::Span::DUMMY);
    (result, ev.cost)
}

/// Transactional entry point for the RENDER transition: like
/// [`run_render_full`], but the cost is reported even on failure and a
/// [`FaultInjector`] can be supplied.
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn transition_render(
    program: &Program,
    store: &Store,
    version: u64,
    fuel: u64,
    bindings: Vec<(Name, Value)>,
    expr: &Expr,
    hook: Option<&mut (dyn RenderHook + '_)>,
    widgets: Option<&mut crate::widget::WidgetStore>,
    faults: Option<&mut (dyn FaultInjector + '_)>,
) -> (Result<BoxNode, RuntimeError>, Cost) {
    let mut hook = hook.map(ReborrowHook);
    let mut faults = faults.map(ReborrowFaults);
    let mut ev = Evaluator {
        program,
        store: StoreAccess::Ref(store),
        queue: None,
        mode: Effect::Render,
        boxes: vec![BoxNode::new(None)],
        scopes: vec![bindings],
        fuel,
        version,
        cost: Cost::default(),
        hook: hook.as_mut().map(|h| h as &mut dyn RenderHook),
        widgets,
        faults: faults.as_mut().map(|f| f as &mut dyn FaultInjector),
    };
    let result = ev.eval(expr).and_then(|_| {
        ev.boxes
            .pop()
            .ok_or(RuntimeError::Internal("top-level box frame missing"))
    });
    (result, ev.cost)
}

impl Evaluator<'_> {
    /// The innermost open box frame (render mode keeps at least the
    /// implicit top-level frame alive for the whole run).
    fn parent_frame(&mut self) -> Result<&mut BoxNode, RuntimeError> {
        self.boxes
            .last_mut()
            .ok_or(RuntimeError::Internal("render frame missing"))
    }

    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.cost.steps += 1;
        if self.fuel == 0 {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Innermost-first local lookup. Names are interned per-program
    /// (`Name = Arc<str>`), so a binding introduced by the same program
    /// as the reference shares its allocation — `Arc::ptr_eq` settles
    /// almost every probe without touching the string bytes. The string
    /// compare remains as the fallback for names that cross program
    /// versions (e.g. closures captured before a live UPDATE).
    fn lookup_local(&self, name: &Name) -> Option<&Value> {
        self.scopes
            .iter()
            .rev()
            .find_map(|f| {
                f.iter()
                    .rev()
                    .find(|(n, _)| Arc::ptr_eq(n, name) || **n == **name)
            })
            .map(|(_, v)| v)
    }

    fn assign_local(&mut self, name: &Name, value: Value) -> Result<(), RuntimeError> {
        for frame in self.scopes.iter_mut().rev() {
            if let Some(slot) = frame
                .iter_mut()
                .rev()
                .find(|(n, _)| Arc::ptr_eq(n, name) || **n == **name)
            {
                slot.1 = value;
                return Ok(());
            }
        }
        Err(RuntimeError::UnknownLocal(name.clone()))
    }

    /// Provenance for the value just produced by `expr`: the literal's
    /// span, or the expression span plus a snapshot of its free locals.
    /// Called *after* the operand is evaluated so the snapshot sees any
    /// local mutations the operand performed — the VM reads the same
    /// registers at the corresponding `PostLeaf`/`SetAttr` instruction.
    fn provenance_of(&self, expr: &Expr) -> Option<Provenance> {
        if crate::provenance::is_literal_expr(expr) {
            return Some(Provenance::Literal(expr.span));
        }
        let env: Vec<(Name, Value)> = crate::provenance::free_locals(expr)
            .into_iter()
            .filter_map(|n| self.lookup_local(&n).cloned().map(|v| (n, v)))
            .collect();
        Some(Provenance::Expr {
            span: expr.span,
            env: Arc::new(env),
        })
    }

    /// Snapshot all visible bindings for closure capture, outermost
    /// first so later (inner) bindings shadow earlier ones on lookup.
    fn capture_env(&self) -> Arc<Vec<(Name, Value)>> {
        let mut captured = Vec::new();
        for frame in &self.scopes {
            captured.extend(frame.iter().cloned());
        }
        Arc::new(captured)
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, RuntimeError> {
        self.tick()?;
        match &expr.kind {
            ExprKind::Num(n) => Ok(Value::Number(*n)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::ColorLit(c) => Ok(Value::Color(*c)),
            ExprKind::Local(name) => self
                .lookup_local(name)
                .cloned()
                .ok_or_else(|| RuntimeError::UnknownLocal(name.clone())),
            ExprKind::Global(name) => match self.store.get(name) {
                Some(v) => Ok(v.clone()),
                // EP-GLOBAL-2: fall back to the initializer in the code.
                None => {
                    let g = self
                        .program
                        .global(name)
                        .ok_or_else(|| RuntimeError::UnknownGlobal(name.clone()))?;
                    let init = g.init.clone();
                    let saved = std::mem::take(&mut self.scopes);
                    let result = self.eval(&init);
                    self.scopes = saved;
                    result
                }
            },
            ExprKind::FunRef(name) => {
                let f = self
                    .program
                    .fun(name)
                    .ok_or_else(|| RuntimeError::UnknownFun(name.clone()))?;
                Ok(Value::Closure(Arc::new(Closure {
                    params: f.params.clone(),
                    effect: f.effect,
                    body: f.body.clone(),
                    env: Arc::new(Vec::new()),
                    version: self.version,
                })))
            }
            ExprKind::PrimRef(p) => Ok(Value::Prim(*p)),
            ExprKind::Tuple(elems) => {
                let vs: Result<Vec<Value>, _> = elems.iter().map(|e| self.eval(e)).collect();
                Ok(Value::tuple(vs?))
            }
            ExprKind::ListLit(elems) => {
                let vs: Result<Vec<Value>, _> = elems.iter().map(|e| self.eval(e)).collect();
                Ok(Value::list(vs?))
            }
            ExprKind::Proj(base, index) => {
                let v = self.eval(base)?;
                let Value::Tuple(vs) = &v else {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "tuple",
                        found: v.display_text(),
                    });
                };
                let i = *index as usize;
                if i >= 1 && i <= vs.len() {
                    Ok(vs[i - 1].clone())
                } else {
                    Err(RuntimeError::ProjOutOfRange {
                        index: *index,
                        len: vs.len(),
                    })
                }
            }
            ExprKind::Call(callee, args) => {
                let f = self.eval(callee)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                self.apply(f, argv, expr.span)
            }
            ExprKind::Lambda(lam) => Ok(Value::Closure(Arc::new(Closure {
                params: lam.params.clone(),
                effect: lam.effect,
                body: lam.body.clone(),
                env: self.capture_env(),
                version: self.version,
            }))),
            ExprKind::Let {
                name, value, body, ..
            } => {
                let v = self.eval(value)?;
                self.scopes.push(vec![(name.clone(), v)]);
                let result = self.eval(body);
                self.scopes.pop();
                result
            }
            ExprKind::Seq(a, b) => {
                self.eval(a)?;
                self.eval(b)
            }
            ExprKind::If(c, t, e) => {
                if self.eval_bool(c)? {
                    self.eval(t)
                } else {
                    self.eval(e)
                }
            }
            ExprKind::While(c, body) => {
                while self.eval_bool(c)? {
                    self.eval(body)?;
                }
                Ok(Value::unit())
            }
            ExprKind::ForRange { var, lo, hi, body } => {
                let lo = self.eval_number(lo)?;
                let hi = self.eval_number(hi)?;
                let mut i = lo;
                while i < hi {
                    self.scopes.push(vec![(var.clone(), Value::Number(i))]);
                    let result = self.eval(body);
                    self.scopes.pop();
                    result?;
                    i += 1.0;
                }
                Ok(Value::unit())
            }
            ExprKind::Foreach { var, list, body } => {
                let v = self.eval(list)?;
                let Value::List(items) = &v else {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "list",
                        found: v.display_text(),
                    });
                };
                for item in items.iter() {
                    self.scopes.push(vec![(var.clone(), item.clone())]);
                    let result = self.eval(body);
                    self.scopes.pop();
                    result?;
                }
                Ok(Value::unit())
            }
            ExprKind::LocalAssign(name, value) => {
                let v = self.eval(value)?;
                self.assign_local(name, v)?;
                Ok(Value::unit())
            }
            ExprKind::GlobalAssign(name, value) => {
                // ES-ASSIGN: state mode only.
                if self.mode != Effect::State {
                    return Err(RuntimeError::EffectViolation {
                        op: "g := e",
                        mode: self.mode,
                    });
                }
                if self.program.global(name).is_none() {
                    return Err(RuntimeError::UnknownGlobal(name.clone()));
                }
                let v = self.eval(value)?;
                self.store
                    .set(name, v)
                    .map_err(|()| RuntimeError::EffectViolation {
                        op: "g := e",
                        mode: self.mode,
                    })?;
                Ok(Value::unit())
            }
            ExprKind::PushPage(name, args) => {
                // ES-PUSH: state mode only; enqueues the event.
                if self.mode != Effect::State {
                    return Err(RuntimeError::EffectViolation {
                        op: "push",
                        mode: self.mode,
                    });
                }
                if self.program.page(name).is_none() {
                    return Err(RuntimeError::UnknownPage(name.clone()));
                }
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                let queue = self
                    .queue
                    .as_deref_mut()
                    .ok_or(RuntimeError::EffectViolation {
                        op: "push",
                        mode: Effect::Render,
                    })?;
                queue.enqueue(Event::Push(name.clone(), Value::tuple(argv)));
                Ok(Value::unit())
            }
            ExprKind::PopPage => {
                // ES-POP: state mode only; enqueues the event.
                if self.mode != Effect::State {
                    return Err(RuntimeError::EffectViolation {
                        op: "pop",
                        mode: self.mode,
                    });
                }
                let queue = self
                    .queue
                    .as_deref_mut()
                    .ok_or(RuntimeError::EffectViolation {
                        op: "pop",
                        mode: Effect::Render,
                    })?;
                queue.enqueue(Event::Pop);
                Ok(Value::unit())
            }
            ExprKind::Boxed(id, body) => {
                // ER-BOXED: evaluate the body into a fresh box.
                if self.mode != Effect::Render || self.boxes.is_empty() {
                    return Err(RuntimeError::EffectViolation {
                        op: "boxed",
                        mode: self.mode,
                    });
                }
                // Give the render hook (the §5 reuse optimization) a
                // chance to supply a cached subtree.
                if self.hook.is_some() {
                    let locals = self.capture_env();
                    let cached = match self.hook.as_deref_mut() {
                        Some(hook) => hook.enter_boxed(*id, &locals),
                        None => None,
                    };
                    if let Some((node, value)) = cached {
                        self.cost.boxes_reused += node.box_count() as u64;
                        self.parent_frame()?.items.push(BoxItem::Child(node));
                        return Ok(value);
                    }
                }
                self.cost.boxes_created += 1;
                self.boxes.push(BoxNode::new(Some(*id)));
                let result = self.eval(body);
                let node = self
                    .boxes
                    .pop()
                    .ok_or(RuntimeError::Internal("boxed frame missing"))?;
                let value = result?;
                // Share the finished subtree once; the hook caches the
                // same Arc it will splice back, keeping reused subtrees
                // pointer-identical across frames.
                let node = Arc::new(node);
                if self.hook.is_some() {
                    let locals = self.capture_env();
                    if let Some(hook) = self.hook.as_deref_mut() {
                        hook.after_boxed(*id, &locals, &node, &value);
                    }
                }
                self.parent_frame()?.items.push(BoxItem::Child(node));
                Ok(value)
            }
            ExprKind::Post(value) => {
                // ER-POST.
                if self.mode != Effect::Render || self.boxes.is_empty() {
                    return Err(RuntimeError::EffectViolation {
                        op: "post",
                        mode: self.mode,
                    });
                }
                let v = self.eval(value)?;
                let prov = self.provenance_of(value);
                self.cost.posts += 1;
                self.parent_frame()?.items.push(BoxItem::Leaf(v, prov));
                Ok(Value::unit())
            }
            ExprKind::SetAttr(attr, value) => {
                // ER-ATTR.
                if self.mode != Effect::Render || self.boxes.is_empty() {
                    return Err(RuntimeError::EffectViolation {
                        op: "box.a := e",
                        mode: self.mode,
                    });
                }
                let v = self.eval(value)?;
                let prov = self.provenance_of(value);
                self.parent_frame()?
                    .items
                    .push(BoxItem::Attr(*attr, v, prov));
                Ok(Value::unit())
            }
            ExprKind::Remember {
                id,
                name,
                init,
                body,
                ..
            } => {
                if self.mode != Effect::Render {
                    return Err(RuntimeError::EffectViolation {
                        op: "remember",
                        mode: self.mode,
                    });
                }
                let Some(widgets) = self.widgets.as_deref_mut() else {
                    return Err(RuntimeError::EffectViolation {
                        op: "remember (no widget store)",
                        mode: self.mode,
                    });
                };
                let key = widgets.next_key(*id);
                if !widgets.contains(key) {
                    let initial = self.eval(init)?;
                    if let Some(widgets) = self.widgets.as_deref_mut() {
                        widgets.set(key, initial);
                    }
                }
                self.scopes
                    .push(vec![(name.clone(), Value::WidgetRef(key))]);
                let result = self.eval(body);
                self.scopes.pop();
                result
            }
            ExprKind::WidgetRead(name) => {
                let key = self.widget_key_of(name)?;
                let widgets = self
                    .widgets
                    .as_deref()
                    .ok_or(RuntimeError::EffectViolation {
                        op: "widget read (no widget store)",
                        mode: self.mode,
                    })?;
                widgets
                    .get(key)
                    .cloned()
                    .ok_or_else(|| RuntimeError::UnknownLocal(name.clone()))
            }
            ExprKind::WidgetWrite(name, value) => {
                if self.mode != Effect::State {
                    return Err(RuntimeError::EffectViolation {
                        op: "widget write",
                        mode: self.mode,
                    });
                }
                let key = self.widget_key_of(name)?;
                let v = self.eval(value)?;
                let widgets = self
                    .widgets
                    .as_deref_mut()
                    .ok_or(RuntimeError::EffectViolation {
                        op: "widget write (no widget store)",
                        mode: self.mode,
                    })?;
                widgets.set(key, v);
                Ok(Value::unit())
            }
            ExprKind::Binary(op, lhs, rhs) => {
                // Short-circuit logic first.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(self.eval_bool(lhs)? && self.eval_bool(rhs)?))
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(self.eval_bool(lhs)? || self.eval_bool(rhs)?))
                    }
                    _ => {}
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                apply_binop(*op, &l, &r)
            }
            ExprKind::Unary(op, inner) => match op {
                UnOp::Neg => Ok(Value::Number(-self.eval_number(inner)?)),
                UnOp::Not => Ok(Value::Bool(!self.eval_bool(inner)?)),
            },
        }
    }

    /// Resolve a widget-bound local name to its slot key.
    fn widget_key_of(&self, name: &Name) -> Result<crate::widget::WidgetKey, RuntimeError> {
        match self.lookup_local(name) {
            Some(Value::WidgetRef(key)) => Ok(*key),
            Some(other) => Err(RuntimeError::TypeMismatch {
                expected: "widget slot reference",
                found: other.display_text(),
            }),
            None => Err(RuntimeError::UnknownLocal(name.clone())),
        }
    }

    fn eval_bool(&mut self, expr: &Expr) -> Result<bool, RuntimeError> {
        match self.eval(expr)? {
            Value::Bool(b) => Ok(b),
            v => Err(RuntimeError::TypeMismatch {
                expected: "bool",
                found: v.display_text(),
            }),
        }
    }

    fn eval_number(&mut self, expr: &Expr) -> Result<f64, RuntimeError> {
        match self.eval(expr)? {
            Value::Number(n) => Ok(n),
            v => Err(RuntimeError::TypeMismatch {
                expected: "number",
                found: v.display_text(),
            }),
        }
    }

    fn apply(
        &mut self,
        f: Value,
        args: Vec<Value>,
        span: alive_syntax::Span,
    ) -> Result<Value, RuntimeError> {
        let _ = span;
        self.tick()?;
        match f {
            Value::Closure(c) => {
                if c.params.len() != args.len() {
                    return Err(RuntimeError::ArityMismatch {
                        expected: c.params.len(),
                        found: args.len(),
                    });
                }
                // Enter the closure's environment: captured bindings plus
                // parameters. The caller's locals are not visible.
                let mut frame: Frame = c.env.as_ref().clone();
                frame.extend(c.params.iter().zip(args).map(|(p, v)| (p.name.clone(), v)));
                let saved = std::mem::replace(&mut self.scopes, vec![frame]);
                let result = self.eval(&c.body);
                self.scopes = saved;
                result
            }
            Value::Prim(p) => {
                if let Some(injector) = self.faults.as_deref_mut() {
                    if let Some(err) = injector.before_prim(p) {
                        return Err(err.into());
                    }
                }
                let v = p.apply(&args, &mut self.cost.prim)?;
                Ok(v)
            }
            other => Err(RuntimeError::NotAFunction(other.display_text())),
        }
    }
}

/// Apply a (non-short-circuit) binary operator to values.
pub fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    let num = |v: &Value| match v {
        Value::Number(n) => Ok(*n),
        other => Err(RuntimeError::TypeMismatch {
            expected: "number",
            found: other.display_text(),
        }),
    };
    Ok(match op {
        Add => Value::Number(num(l)? + num(r)?),
        Sub => Value::Number(num(l)? - num(r)?),
        Mul => Value::Number(num(l)? * num(r)?),
        Div => Value::Number(num(l)? / num(r)?),
        Mod => Value::Number(num(l)?.rem_euclid(num(r)?)),
        Concat => {
            let coerce = |v: &Value| -> Result<String, RuntimeError> {
                match v {
                    Value::Str(_) | Value::Number(_) | Value::Bool(_) | Value::Color(_) => {
                        Ok(v.display_text())
                    }
                    other => Err(RuntimeError::TypeMismatch {
                        expected: "string, number, bool, or color",
                        found: other.display_text(),
                    }),
                }
            };
            Value::str(format!("{}{}", coerce(l)?, coerce(r)?))
        }
        Eq => Value::Bool(l == r),
        Ne => Value::Bool(l != r),
        Lt | Le | Gt | Ge => {
            let ordering = match (l, r) {
                (Value::Number(a), Value::Number(b)) => a.partial_cmp(b),
                (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                _ => {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "two numbers or two strings",
                        found: format!("{} and {}", l.display_text(), r.display_text()),
                    })
                }
            };
            let Some(ordering) = ordering else {
                // NaN comparisons are false, as in IEEE.
                return Ok(Value::Bool(false));
            };
            Value::Bool(match op {
                Lt => ordering.is_lt(),
                Le => ordering.is_le(),
                Gt => ordering.is_gt(),
                Ge => ordering.is_ge(),
                _ => unreachable!(),
            })
        }
        And | Or => {
            let (Value::Bool(a), Value::Bool(b)) = (l, r) else {
                return Err(RuntimeError::TypeMismatch {
                    expected: "bool",
                    found: format!("{} and {}", l.display_text(), r.display_text()),
                });
            };
            Value::Bool(match op {
                And => *a && *b,
                Or => *a || *b,
                _ => unreachable!(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attr;
    use crate::lower::lower_program;
    use crate::typeck::check_program;
    use alive_syntax::parse_program;

    fn compile(src: &str) -> Program {
        let parsed = parse_program(src);
        assert!(parsed.is_ok(), "parse: {}", parsed.diagnostics.render(src));
        let lowered = lower_program(&parsed.program);
        assert!(
            lowered.is_ok(),
            "lower: {}",
            lowered.diagnostics.render(src)
        );
        let ds = check_program(&lowered.program);
        assert!(!ds.has_errors(), "typeck: {ds}");
        lowered.program
    }

    fn eval_fun(program: &Program, name: &str, args: Vec<Value>) -> Value {
        let f = program.fun(name).expect("function exists");
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        let bindings: Frame = f
            .params
            .iter()
            .zip(args)
            .map(|(p, v)| (p.name.clone(), v))
            .collect();
        let (v, _) = run_state(
            program,
            &mut store,
            &mut queue,
            0,
            DEFAULT_FUEL,
            bindings,
            &f.body,
        )
        .expect("evaluation succeeds");
        v
    }

    const START: &str = "page start() { render { } }";

    #[test]
    fn arithmetic_and_locals() {
        let p = compile(&format!(
            "fun f(x: number): number pure {{
                 let y = x * 2;
                 let z = y + 1;
                 z - x
             }} {START}"
        ));
        assert_eq!(
            eval_fun(&p, "f", vec![Value::Number(10.0)]),
            Value::Number(11.0)
        );
    }

    #[test]
    fn while_loop_and_local_assign() {
        let p = compile(&format!(
            "fun sum_to(n: number): number pure {{
                 let acc = 0;
                 let i = 1;
                 while i <= n {{
                     acc := acc + i;
                     i := i + 1;
                 }}
                 acc
             }} {START}"
        ));
        assert_eq!(
            eval_fun(&p, "sum_to", vec![Value::Number(100.0)]),
            Value::Number(5050.0)
        );
    }

    #[test]
    fn recursion_through_global_functions() {
        let p = compile(&format!(
            "fun fact(n: number): number pure {{
                 if n <= 1 {{ 1 }} else {{ n * fact(n - 1) }}
             }} {START}"
        ));
        assert_eq!(
            eval_fun(&p, "fact", vec![Value::Number(10.0)]),
            Value::Number(3628800.0)
        );
    }

    #[test]
    fn closures_capture_by_value() {
        let p = compile(&format!(
            "fun f(): number pure {{
                 let x = 1;
                 let add_x = fn(y: number) -> y + x;
                 x := 100;
                 add_x(10)
             }} {START}"
        ));
        // Capture-by-value: the closure sees x = 1.
        assert_eq!(eval_fun(&p, "f", vec![]), Value::Number(11.0));
    }

    #[test]
    fn string_concat_coerces() {
        let p = compile(&format!(
            "fun f(): string pure {{ \"n=\" ++ 42 ++ \", b=\" ++ true }} {START}"
        ));
        assert_eq!(eval_fun(&p, "f", vec![]), Value::str("n=42, b=true"));
    }

    #[test]
    fn state_mode_writes_globals_and_enqueues() {
        let p = compile(
            "global count : number = 0
             page start() {
                 init { count := count + 1; push start(); }
                 render { post count; }
             }",
        );
        let page = p.page("start").expect("page");
        let mut store = Store::new();
        store.set("count", Value::Number(41.0));
        let mut queue = EventQueue::new();
        run_state(
            &p,
            &mut store,
            &mut queue,
            0,
            DEFAULT_FUEL,
            vec![],
            &page.init,
        )
        .expect("init runs");
        assert_eq!(store.get("count"), Some(&Value::Number(42.0)));
        assert_eq!(queue.len(), 1);
        assert!(matches!(queue.dequeue(), Some(Event::Push(..))));
    }

    #[test]
    fn global_read_falls_back_to_initializer() {
        // EP-GLOBAL-2: reading an unmaterialized global evaluates its init.
        let p = compile(&format!(
            "global base : number = 30 + 12
             fun f(): number pure {{ base }} {START}"
        ));
        assert_eq!(eval_fun(&p, "f", vec![]), Value::Number(42.0));
    }

    #[test]
    fn render_builds_box_tree() {
        let p = compile(
            "global items : list string = [\"a\", \"b\", \"c\"]
             page start() {
                 render {
                     boxed {
                         box.margin := 2;
                         post \"header\";
                     }
                     foreach x in items {
                         boxed { post x; }
                     }
                 }
             }",
        );
        let page = p.page("start").expect("page");
        let store = Store::new();
        let out =
            run_render(&p, &store, 0, DEFAULT_FUEL, vec![], &page.render).expect("render runs");
        assert_eq!(out.root.box_count(), 5); // root + header + 3 items
        assert_eq!(out.cost.boxes_created, 4);
        let header = out.root.descendant(&[0]).expect("header box");
        assert_eq!(header.attr(Attr::Margin), Some(&Value::Number(2.0)));
        assert_eq!(header.leaves().next(), Some(&Value::str("header")));
        let b = out.root.descendant(&[2]).expect("second item");
        assert_eq!(b.leaves().next(), Some(&Value::str("b")));
    }

    #[test]
    fn render_cannot_write_globals_dynamically() {
        // Build an ill-effected expression directly (bypassing typeck).
        let p = compile(&format!("global g : number = 0 {START}"));
        let bad = Expr::new(
            ExprKind::GlobalAssign(
                Arc::from("g"),
                Box::new(Expr::new(ExprKind::Num(1.0), alive_syntax::Span::DUMMY)),
            ),
            alive_syntax::Span::DUMMY,
        );
        let store = Store::new();
        let err =
            run_render(&p, &store, 0, DEFAULT_FUEL, vec![], &bad).expect_err("must be refused");
        assert!(matches!(err, RuntimeError::EffectViolation { .. }));
    }

    #[test]
    fn state_cannot_create_boxes_dynamically() {
        let p = compile(START);
        let bad = Expr::new(
            ExprKind::Post(Box::new(Expr::new(
                ExprKind::Num(1.0),
                alive_syntax::Span::DUMMY,
            ))),
            alive_syntax::Span::DUMMY,
        );
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        let err = run_state(&p, &mut store, &mut queue, 0, DEFAULT_FUEL, vec![], &bad)
            .expect_err("must be refused");
        assert!(matches!(err, RuntimeError::EffectViolation { .. }));
    }

    #[test]
    fn divergence_exhausts_fuel() {
        let p = compile(&format!(
            "fun spin(): () pure {{ while true {{ }} }} {START}"
        ));
        let f = p.fun("spin").expect("fun");
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        let err = run_state(&p, &mut store, &mut queue, 0, 10_000, vec![], &f.body)
            .expect_err("must exhaust");
        assert_eq!(err, RuntimeError::FuelExhausted);
    }

    #[test]
    fn handlers_capture_loop_variables() {
        // The paper's listings loop: each entry's tap handler must see its
        // own listing.
        let p = compile(
            "global picked : string = \"\"
             global items : list string = [\"a\", \"b\"]
             page start() {
                 render {
                     foreach x in items {
                         boxed { on tap { picked := x; } }
                     }
                 }
             }",
        );
        let page = p.page("start").expect("page");
        let store = Store::new();
        let out = run_render(&p, &store, 0, DEFAULT_FUEL, vec![], &page.render).expect("render");
        let second = out.root.descendant(&[1]).expect("second box");
        let handler = second.attr(Attr::OnTap).expect("handler").clone();
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        call_thunk(
            &p,
            &mut store,
            &mut queue,
            0,
            DEFAULT_FUEL,
            &handler,
            vec![],
        )
        .expect("tap runs");
        assert_eq!(store.get("picked"), Some(&Value::str("b")));
    }

    #[test]
    fn for_range_iterates_half_open() {
        let p = compile(&format!(
            "fun f(): number pure {{
                 let acc = 0;
                 for i in 0 .. 5 {{ acc := acc + i; }}
                 acc
             }} {START}"
        ));
        assert_eq!(eval_fun(&p, "f", vec![]), Value::Number(10.0));
    }

    #[test]
    fn short_circuit_evaluation() {
        let p = compile(&format!(
            "fun f(): bool pure {{
                 let xs : list number = [];
                 list.is_empty(xs) || list.nth(xs, 0) > 0
             }} {START}"
        ));
        // Without short-circuit, list.nth would raise IndexOutOfRange.
        assert_eq!(eval_fun(&p, "f", vec![]), Value::Bool(true));
    }

    #[test]
    fn boxed_passes_value_through() {
        let p = compile(
            "fun pick(): number render { boxed { post 1; 42 } }
             page start() { render { post pick(); } }",
        );
        let page = p.page("start").expect("page");
        let store = Store::new();
        let out = run_render(&p, &store, 0, DEFAULT_FUEL, vec![], &page.render).expect("render");
        // The root has one child box and one leaf `42`.
        assert_eq!(out.root.box_count(), 2);
        assert_eq!(out.root.leaves().next(), Some(&Value::Number(42.0)));
    }
}
