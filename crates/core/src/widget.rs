//! Per-box-instance view state — the paper's §7 future-work extension
//! ("support for state encapsulation in the view").
//!
//! §5 names the limitation: "the value of a slider widget must be
//! defined as a global variable". A `remember x : τ = e;` statement
//! gives a box instance its own slot instead. Slots are keyed by the
//! `remember` statement's source identity plus an *occurrence counter*
//! (the how-many-th evaluation of that statement within one render), so
//! the i-th instance produced by a loop keeps the i-th slot across
//! re-renders — the same positional-identity assumption mainstream
//! immediate-mode and virtual-DOM frameworks make for unkeyed children.
//!
//! Design decisions (the "tricky initialization semantics" the paper
//! defers):
//!
//! * initialization runs the first time a slot key is seen — i.e. on
//!   the first render, and again for instances that appear later;
//! * slots survive re-renders and page navigation;
//! * slots are **cleared by UPDATE**: view state dies with the view's
//!   code, preserving §4.2's no-stale-state story;
//! * render code may only *read* slots (the view stays a function of
//!   model + view-state); handlers (state code) may write them;
//! * slot types are →-free, so slots can never smuggle stale code;
//! * boxes using `remember` are never cached by the §5 memoizer.

use crate::expr::RememberId;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A slot key: which `remember` statement, and its occurrence number
/// within a render pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WidgetKey {
    /// The `remember` statement.
    pub id: RememberId,
    /// 0-based occurrence within one render pass.
    pub occurrence: u32,
}

impl fmt::Display for WidgetKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remember#{}.{}", self.id.0, self.occurrence)
    }
}

/// The view-state store: slot values plus the per-render occurrence
/// counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WidgetStore {
    slots: HashMap<WidgetKey, Value>,
    counters: HashMap<RememberId, u32>,
}

impl WidgetStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a render pass: occurrence counting restarts at zero.
    pub fn begin_render(&mut self) {
        self.counters.clear();
    }

    /// Allocate the next occurrence key for a `remember` statement
    /// (called by the evaluator, in render order).
    pub fn next_key(&mut self, id: RememberId) -> WidgetKey {
        let counter = self.counters.entry(id).or_insert(0);
        let key = WidgetKey {
            id,
            occurrence: *counter,
        };
        *counter += 1;
        key
    }

    /// Whether a slot exists.
    pub fn contains(&self, key: WidgetKey) -> bool {
        self.slots.contains_key(&key)
    }

    /// Read a slot.
    pub fn get(&self, key: WidgetKey) -> Option<&Value> {
        self.slots.get(&key)
    }

    /// Write a slot.
    pub fn set(&mut self, key: WidgetKey, value: Value) {
        self.slots.insert(key, value);
    }

    /// Drop all slots and counters (the UPDATE transition).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.counters.clear();
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterate slots in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&WidgetKey, &Value)> {
        self.slots.iter()
    }
}

impl fmt::Display for WidgetStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<String> = self
            .slots
            .iter()
            .map(|(k, v)| format!("{k} ↦ {v}"))
            .collect();
        entries.sort();
        write!(f, "{{{}}}", entries.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrence_counting_restarts_per_render() {
        let mut w = WidgetStore::new();
        let id = RememberId(0);
        assert_eq!(w.next_key(id).occurrence, 0);
        assert_eq!(w.next_key(id).occurrence, 1);
        w.begin_render();
        assert_eq!(w.next_key(id).occurrence, 0);
        // Distinct statements count independently.
        assert_eq!(w.next_key(RememberId(1)).occurrence, 0);
    }

    #[test]
    fn slots_survive_begin_render_but_not_clear() {
        let mut w = WidgetStore::new();
        let key = w.next_key(RememberId(3));
        w.set(key, Value::Number(7.0));
        w.begin_render();
        assert_eq!(w.get(key), Some(&Value::Number(7.0)));
        w.clear();
        assert!(w.is_empty());
        assert!(!w.contains(key));
    }
}
