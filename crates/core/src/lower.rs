//! Lowering from surface syntax to the core language.
//!
//! Lowering resolves names (locals vs globals vs functions), identifies
//! primitives and attributes, expands `on <event>` sugar into handler
//! attribute assignments, converts blocks to `let`/`seq` chains, and
//! allocates [`crate::expr::BoxSourceId`]s for every `boxed` statement.

use crate::attr::Attr;
use crate::expr::{Expr, ExprKind, LambdaExpr, ParamSig};
use crate::prim::Prim;
use crate::program::{ExampleDef, FunDef, GlobalDef, PageDef, Program};
use crate::types::{Effect, Name, Type};
use crate::value::Color;
use alive_syntax::ast;
use alive_syntax::{Diagnostic, Diagnostics, Span};
use std::collections::HashSet;
use std::sync::Arc;

/// Result of lowering: a core program plus any diagnostics.
#[derive(Debug, Clone)]
pub struct LowerResult {
    /// The lowered program (partial if there were errors).
    pub program: Program,
    /// Problems found during lowering.
    pub diagnostics: Diagnostics,
}

impl LowerResult {
    /// Whether lowering succeeded without errors.
    pub fn is_ok(&self) -> bool {
        !self.diagnostics.has_errors()
    }
}

/// Lower a parsed surface program to a core [`Program`].
pub fn lower_program(ast: &ast::Program) -> LowerResult {
    let mut lowerer = Lowerer {
        program: Program::new(),
        diags: Diagnostics::new(),
        globals: HashSet::new(),
        funs: HashSet::new(),
        pages: HashSet::new(),
        examples: HashSet::new(),
        scopes: Vec::new(),
    };
    lowerer.collect_names(ast);
    lowerer.lower_items(ast);
    LowerResult {
        program: lowerer.program,
        diagnostics: lowerer.diags,
    }
}

/// Convert a surface effect annotation to a core effect.
pub fn lower_effect(eff: ast::EffectAnn) -> Effect {
    match eff {
        ast::EffectAnn::Pure => Effect::Pure,
        ast::EffectAnn::State => Effect::State,
        ast::EffectAnn::Render => Effect::Render,
    }
}

/// Convert a surface type expression to a core type.
pub fn lower_type(ty: &ast::TypeExpr) -> Type {
    match &ty.kind {
        ast::TypeExprKind::Number => Type::Number,
        ast::TypeExprKind::String => Type::String,
        ast::TypeExprKind::Bool => Type::Bool,
        ast::TypeExprKind::Color => Type::Color,
        ast::TypeExprKind::Tuple(elems) => Type::tuple(elems.iter().map(lower_type).collect()),
        ast::TypeExprKind::List(elem) => Type::list(lower_type(elem)),
        ast::TypeExprKind::Fn {
            params,
            effect,
            ret,
        } => Type::func(
            params.iter().map(lower_type).collect(),
            lower_effect(*effect),
            lower_type(ret),
        ),
    }
}

struct Lowerer {
    program: Program,
    diags: Diagnostics,
    globals: HashSet<String>,
    funs: HashSet<String>,
    pages: HashSet<String>,
    /// Examples live in their own namespace: a probe may share its name
    /// with the global or function it observes.
    examples: HashSet<String>,
    /// Local scopes, innermost last; each binding carries whether it is
    /// a `remember` widget slot (true) or a plain local (false).
    scopes: Vec<Vec<(Name, bool)>>,
}

impl Lowerer {
    fn error(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic::error(span, message));
    }

    /// First pass: collect top-level names so definitions can reference
    /// each other in any order.
    fn collect_names(&mut self, ast: &ast::Program) {
        for item in &ast.items {
            let name = item.name();
            if let ast::Item::Example(_) = item {
                if !self.examples.insert(name.text.clone()) {
                    self.error(
                        name.span,
                        format!("duplicate definition of example `{}`", name.text),
                    );
                }
                continue;
            }
            let already = self.globals.contains(&name.text)
                || self.funs.contains(&name.text)
                || self.pages.contains(&name.text);
            if already {
                self.error(
                    name.span,
                    format!("duplicate definition of `{}`", name.text),
                );
                continue;
            }
            match item {
                ast::Item::Global(_) => {
                    self.globals.insert(name.text.clone());
                }
                ast::Item::Fun(_) => {
                    self.funs.insert(name.text.clone());
                }
                ast::Item::Page(_) => {
                    self.pages.insert(name.text.clone());
                }
                ast::Item::Example(_) => unreachable!("examples handled above"),
            }
        }
    }

    fn lower_items(&mut self, ast: &ast::Program) {
        for item in &ast.items {
            match item {
                ast::Item::Global(g) => {
                    let def = GlobalDef {
                        name: Arc::from(g.name.text.as_str()),
                        ty: lower_type(&g.ty),
                        init: Arc::new(self.expr(&g.init)),
                        span: g.span,
                    };
                    self.program.add_global(def);
                }
                ast::Item::Fun(f) => {
                    let params = self.lower_params(&f.params);
                    self.scopes
                        .push(params.iter().map(|p| (p.name.clone(), false)).collect());
                    let body = self.block(&f.body);
                    self.scopes.pop();
                    let def = FunDef {
                        name: Arc::from(f.name.text.as_str()),
                        params: Arc::from(params),
                        ret: f.ret.as_ref().map(lower_type).unwrap_or_else(Type::unit),
                        effect: lower_effect(f.effect),
                        body: Arc::new(body),
                        span: f.span,
                    };
                    self.program.add_fun(def);
                }
                ast::Item::Page(p) => {
                    let params = self.lower_params(&p.params);
                    let names: Vec<(Name, bool)> =
                        params.iter().map(|p| (p.name.clone(), false)).collect();
                    self.scopes.push(names.clone());
                    let init = self.block(&p.init);
                    self.scopes.pop();
                    self.scopes.push(names);
                    let render = self.block(&p.render);
                    self.scopes.pop();
                    let def = PageDef {
                        name: Arc::from(p.name.text.as_str()),
                        params: Arc::from(params),
                        init: Arc::new(init),
                        render: Arc::new(render),
                        span: p.span,
                    };
                    self.program.add_page(def);
                }
                ast::Item::Example(e) => {
                    // Examples are closed pure expressions: no parameter
                    // scope, same name resolution as global initializers.
                    let body = self.expr(&e.body);
                    let expect = e.expect.as_ref().map(|x| Arc::new(self.expr(x)));
                    let def = ExampleDef {
                        name: Arc::from(e.name.text.as_str()),
                        body: Arc::new(body),
                        expect,
                        span: e.span,
                    };
                    self.program.add_example(def);
                }
            }
        }
    }

    fn lower_params(&mut self, params: &[ast::Param]) -> Vec<ParamSig> {
        let mut seen = HashSet::new();
        params
            .iter()
            .map(|p| {
                if !seen.insert(p.name.text.clone()) {
                    self.error(
                        p.name.span,
                        format!("duplicate parameter `{}`", p.name.text),
                    );
                }
                ParamSig::new(&p.name.text, lower_type(&p.ty))
            })
            .collect()
    }

    /// Whether `name` is bound, and if so whether it is a widget slot.
    fn local_kind(&self, name: &str) -> Option<bool> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.iter().rev().find(|(n, _)| &**n == name))
            .map(|(_, widget)| *widget)
    }

    /// Lower a block to a `let`/`seq` chain whose value is the tail.
    fn block(&mut self, block: &ast::Block) -> Expr {
        self.scopes.push(Vec::new());
        let expr = self.block_rest(&block.stmts, block.tail.as_deref(), block.span);
        self.scopes.pop();
        expr
    }

    fn block_rest(&mut self, stmts: &[ast::Stmt], tail: Option<&ast::Expr>, span: Span) -> Expr {
        let Some((first, rest)) = stmts.split_first() else {
            return match tail {
                Some(e) => self.expr(e),
                None => Expr::unit(Span::point(span.end)),
            };
        };
        // `let` binds the remainder of the block as its body.
        if let ast::StmtKind::Let { name, ty, value } = &first.kind {
            let value = self.expr(value);
            let bound: Name = Arc::from(name.text.as_str());
            match self.scopes.last_mut() {
                Some(scope) => scope.push((bound.clone(), false)),
                None => self.scopes.push(vec![(bound.clone(), false)]),
            }
            let body = self.block_rest(rest, tail, span);
            let full = first.span.merge(body.span);
            return Expr::new(
                ExprKind::Let {
                    name: bound,
                    ty: ty.as_ref().map(lower_type),
                    value: Box::new(value),
                    body: Box::new(body),
                },
                full,
            );
        }
        // `remember` likewise scopes its slot over the rest of the block.
        if let ast::StmtKind::Remember { name, ty, init } = &first.kind {
            let init = self.expr(init);
            let id = self.program.alloc_remember(first.span);
            let bound: Name = Arc::from(name.text.as_str());
            match self.scopes.last_mut() {
                Some(scope) => scope.push((bound.clone(), true)),
                None => self.scopes.push(vec![(bound.clone(), true)]),
            }
            let body = self.block_rest(rest, tail, span);
            let full = first.span.merge(body.span);
            return Expr::new(
                ExprKind::Remember {
                    id,
                    name: bound,
                    ty: lower_type(ty),
                    init: Box::new(init),
                    body: Box::new(body),
                },
                full,
            );
        }
        let head = self.stmt(first);
        // T-BOXED: `boxed e` has the value of `e`, so a trailing `boxed`
        // statement is the block's value (e.g. a render helper returning a
        // measurement out of the box it builds).
        if rest.is_empty()
            && tail.is_none()
            && matches!(head.kind, ExprKind::Boxed(..) | ExprKind::Tuple(_))
        {
            return head;
        }
        let rest_expr = self.block_rest(rest, tail, span);
        // Any other trailing statement's value is discarded: keep the
        // `Seq` with the implicit unit so the block's value is `()`.
        let full = head.span.merge(rest_expr.span);
        Expr::new(ExprKind::Seq(Box::new(head), Box::new(rest_expr)), full)
    }

    fn stmt(&mut self, stmt: &ast::Stmt) -> Expr {
        let span = stmt.span;
        match &stmt.kind {
            ast::StmtKind::Let { .. } | ast::StmtKind::Remember { .. } => {
                unreachable!("handled in block_rest")
            }
            ast::StmtKind::Assign { target, value } => {
                let value = Box::new(self.expr(value));
                let name: Name = Arc::from(target.text.as_str());
                if let Some(widget) = self.local_kind(&target.text) {
                    if widget {
                        Expr::new(ExprKind::WidgetWrite(name, value), span)
                    } else {
                        Expr::new(ExprKind::LocalAssign(name, value), span)
                    }
                } else if self.globals.contains(&target.text) {
                    Expr::new(ExprKind::GlobalAssign(name, value), span)
                } else {
                    self.error(
                        target.span,
                        format!("unknown assignment target `{}`", target.text),
                    );
                    Expr::unit(span)
                }
            }
            ast::StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let cond = Box::new(self.expr(cond));
                let then_e = Box::new(self.block(then_block));
                let else_e = Box::new(match else_block {
                    Some(b) => self.block(b),
                    None => Expr::unit(Span::point(span.end)),
                });
                Expr::new(ExprKind::If(cond, then_e, else_e), span)
            }
            ast::StmtKind::While { cond, body } => {
                let cond = Box::new(self.expr(cond));
                let body = Box::new(self.block(body));
                Expr::new(ExprKind::While(cond, body), span)
            }
            ast::StmtKind::ForRange { var, lo, hi, body } => {
                let lo = Box::new(self.expr(lo));
                let hi = Box::new(self.expr(hi));
                let name: Name = Arc::from(var.text.as_str());
                self.scopes.push(vec![(name.clone(), false)]);
                let body = Box::new(self.block(body));
                self.scopes.pop();
                Expr::new(
                    ExprKind::ForRange {
                        var: name,
                        lo,
                        hi,
                        body,
                    },
                    span,
                )
            }
            ast::StmtKind::Foreach { var, list, body } => {
                let list = Box::new(self.expr(list));
                let name: Name = Arc::from(var.text.as_str());
                self.scopes.push(vec![(name.clone(), false)]);
                let body = Box::new(self.block(body));
                self.scopes.pop();
                Expr::new(
                    ExprKind::Foreach {
                        var: name,
                        list,
                        body,
                    },
                    span,
                )
            }
            ast::StmtKind::Boxed { body } => {
                let id = self.program.alloc_box_source(span);
                let body = Box::new(self.block(body));
                Expr::new(ExprKind::Boxed(id, body), span)
            }
            ast::StmtKind::Post { value } => {
                let value = Box::new(self.expr(value));
                Expr::new(ExprKind::Post(value), span)
            }
            ast::StmtKind::SetAttr { attr, value } => {
                let value = Box::new(self.expr(value));
                match Attr::from_name(&attr.text) {
                    Some(a) => Expr::new(ExprKind::SetAttr(a, value), span),
                    None => {
                        self.error(attr.span, format!("unknown box attribute `{}`", attr.text));
                        Expr::unit(span)
                    }
                }
            }
            ast::StmtKind::On {
                event,
                params,
                body,
            } => {
                // `on tap { ... }` desugars to
                // `box.ontap := fn() state { ... }`.
                let Some(attr) = Attr::from_name(&event.text).filter(|a| a.is_handler()) else {
                    self.error(
                        event.span,
                        format!("unknown event `{}` in `on` statement", event.text),
                    );
                    return Expr::unit(span);
                };
                let Some(expected) = attr.handler_arity() else {
                    self.error(
                        event.span,
                        format!("`{}` is not a handler event", event.text),
                    );
                    return Expr::unit(span);
                };
                if params.len() != expected {
                    self.error(
                        event.span,
                        format!(
                            "`on {}` takes {expected} parameter(s), found {}",
                            event.text,
                            params.len()
                        ),
                    );
                }
                let sigs = self.lower_params(params);
                self.scopes
                    .push(sigs.iter().map(|p| (p.name.clone(), false)).collect());
                let body = self.block(body);
                self.scopes.pop();
                let lambda = Expr::new(
                    ExprKind::Lambda(Arc::new(LambdaExpr {
                        params: Arc::from(sigs),
                        effect: Effect::State,
                        body: Arc::new(body),
                    })),
                    span,
                );
                Expr::new(ExprKind::SetAttr(attr, Box::new(lambda)), span)
            }
            ast::StmtKind::Push { page, args } => {
                if !self.pages.contains(&page.text) {
                    self.error(page.span, format!("unknown page `{}`", page.text));
                }
                let args = args.iter().map(|a| self.expr(a)).collect();
                Expr::new(
                    ExprKind::PushPage(Arc::from(page.text.as_str()), args),
                    span,
                )
            }
            ast::StmtKind::Pop => Expr::new(ExprKind::PopPage, span),
            ast::StmtKind::Expr { expr } => self.expr(expr),
        }
    }

    fn expr(&mut self, expr: &ast::Expr) -> Expr {
        let span = expr.span;
        let kind = match &expr.kind {
            ast::ExprKind::Number(n) => ExprKind::Num(*n),
            ast::ExprKind::Str(s) => ExprKind::Str(Arc::from(s.as_str())),
            ast::ExprKind::Bool(b) => ExprKind::Bool(*b),
            ast::ExprKind::Name(name) => {
                if let Some(widget) = self.local_kind(name) {
                    if widget {
                        ExprKind::WidgetRead(Arc::from(name.as_str()))
                    } else {
                        ExprKind::Local(Arc::from(name.as_str()))
                    }
                } else if self.globals.contains(name) {
                    ExprKind::Global(Arc::from(name.as_str()))
                } else if self.funs.contains(name) {
                    ExprKind::FunRef(Arc::from(name.as_str()))
                } else {
                    self.error(span, format!("unknown name `{name}`"));
                    ExprKind::Tuple(Vec::new())
                }
            }
            ast::ExprKind::Qualified { ns, name } => match ns.text.as_str() {
                "colors" => match Color::by_name(&name.text) {
                    Some(c) => ExprKind::ColorLit(c),
                    None => {
                        self.error(name.span, format!("unknown color `{}`", name.text));
                        ExprKind::Tuple(Vec::new())
                    }
                },
                "math" if name.text == "pi" => ExprKind::Num(std::f64::consts::PI),
                _ => match Prim::from_path(&ns.text, &name.text) {
                    Some(p) => ExprKind::PrimRef(p),
                    None => {
                        self.error(
                            span,
                            format!("unknown primitive `{}.{}`", ns.text, name.text),
                        );
                        ExprKind::Tuple(Vec::new())
                    }
                },
            },
            ast::ExprKind::Call { callee, args } => {
                let callee = Box::new(self.expr(callee));
                let args = args.iter().map(|a| self.expr(a)).collect();
                ExprKind::Call(callee, args)
            }
            ast::ExprKind::Tuple(elems) => {
                ExprKind::Tuple(elems.iter().map(|e| self.expr(e)).collect())
            }
            ast::ExprKind::ListLit(elems) => {
                ExprKind::ListLit(elems.iter().map(|e| self.expr(e)).collect())
            }
            ast::ExprKind::Proj { base, index } => {
                ExprKind::Proj(Box::new(self.expr(base)), *index)
            }
            ast::ExprKind::Unary { op, expr: inner } => {
                ExprKind::Unary(*op, Box::new(self.expr(inner)))
            }
            ast::ExprKind::Binary { op, lhs, rhs } => {
                ExprKind::Binary(*op, Box::new(self.expr(lhs)), Box::new(self.expr(rhs)))
            }
            ast::ExprKind::Lambda {
                params,
                effect,
                body,
            } => {
                let sigs = self.lower_params(params);
                self.scopes
                    .push(sigs.iter().map(|p| (p.name.clone(), false)).collect());
                let body = self.block(body);
                self.scopes.pop();
                ExprKind::Lambda(Arc::new(LambdaExpr {
                    params: Arc::from(sigs),
                    effect: lower_effect(*effect),
                    body: Arc::new(body),
                }))
            }
            ast::ExprKind::IfExpr {
                cond,
                then_block,
                else_block,
            } => {
                let cond = Box::new(self.expr(cond));
                let then_e = Box::new(self.block(then_block));
                let else_e = Box::new(self.block(else_block));
                ExprKind::If(cond, then_e, else_e)
            }
        };
        Expr::new(kind, span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_syntax::parse_program;

    fn lower_ok(src: &str) -> Program {
        let parsed = parse_program(src);
        assert!(parsed.is_ok(), "parse: {}", parsed.diagnostics.render(src));
        let lowered = lower_program(&parsed.program);
        assert!(
            lowered.is_ok(),
            "lower: {}",
            lowered.diagnostics.render(src)
        );
        lowered.program
    }

    fn lower_err(src: &str) -> Diagnostics {
        let parsed = parse_program(src);
        assert!(parsed.is_ok(), "parse: {}", parsed.diagnostics.render(src));
        let lowered = lower_program(&parsed.program);
        assert!(!lowered.is_ok(), "expected lowering errors");
        lowered.diagnostics
    }

    #[test]
    fn resolves_locals_globals_functions() {
        let p = lower_ok(
            r#"
            global total : number = 0
            fun add(x: number): number pure { x + total }
            page start() {
                init { total := add(1); }
                render { post total; }
            }
            "#,
        );
        let f = p.fun("add").expect("fun exists");
        // Body is `x + total` where x is local, total is global.
        let ExprKind::Binary(_, lhs, rhs) = &f.body.kind else {
            panic!("expected binary body, got {:?}", f.body.kind);
        };
        assert!(matches!(lhs.kind, ExprKind::Local(_)));
        assert!(matches!(rhs.kind, ExprKind::Global(_)));
    }

    #[test]
    fn local_shadows_global_in_assignment() {
        let p = lower_ok(
            r#"
            global x : number = 0
            fun f(): number pure {
                let x = 1;
                x := 2;
                x
            }
            "#,
        );
        let f = p.fun("f").expect("fun");
        let mut saw_local_assign = false;
        f.body.walk(&mut |e| {
            if matches!(e.kind, ExprKind::LocalAssign(..)) {
                saw_local_assign = true;
            }
            assert!(
                !matches!(e.kind, ExprKind::GlobalAssign(..)),
                "local must shadow global"
            );
        });
        assert!(saw_local_assign);
    }

    #[test]
    fn on_tap_desugars_to_handler_attr() {
        let p = lower_ok(
            r#"
            page start() {
                render {
                    boxed { on tap { pop; } }
                }
            }
            "#,
        );
        let page = p.page("start").expect("page");
        let mut found = None;
        page.render.walk(&mut |e| {
            if let ExprKind::SetAttr(attr, value) = &e.kind {
                found = Some((*attr, value.kind.clone()));
            }
        });
        let (attr, value) = found.expect("handler installed");
        assert_eq!(attr, Attr::OnTap);
        let ExprKind::Lambda(lam) = value else {
            panic!("expected lambda")
        };
        assert_eq!(lam.effect, Effect::State);
        assert!(lam.params.is_empty());
    }

    #[test]
    fn boxed_statements_get_distinct_source_ids() {
        let p = lower_ok(
            r#"
            page start() {
                render {
                    boxed { post 1; }
                    boxed { post 2; }
                }
            }
            "#,
        );
        assert_eq!(p.box_spans.len(), 2);
        let page = p.page("start").expect("page");
        let mut ids = Vec::new();
        page.render.walk(&mut |e| {
            if let ExprKind::Boxed(id, _) = &e.kind {
                ids.push(*id);
            }
        });
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn colors_and_prims_resolve() {
        let p = lower_ok(
            r#"
            global c : color = colors.light_blue
            global n : number = math.floor(2.5)
            "#,
        );
        assert!(matches!(
            p.global("c").expect("c").init.kind,
            ExprKind::ColorLit(_)
        ));
        let ExprKind::Call(callee, _) = &p.global("n").expect("n").init.kind else {
            panic!("expected call");
        };
        assert_eq!(callee.kind, ExprKind::PrimRef(Prim::MathFloor));
    }

    #[test]
    fn unknown_names_are_errors() {
        let ds = lower_err("global g : number = mystery");
        assert!(ds.to_string().contains("unknown name `mystery`"));
        let ds = lower_err("page start() { render { box.wiggle := 1; } }");
        assert!(ds.to_string().contains("unknown box attribute"));
        let ds = lower_err("page start() { render { push nowhere(); } }");
        assert!(ds.to_string().contains("unknown page"));
        let ds = lower_err("global c : color = colors.chartreuse_dream");
        assert!(ds.to_string().contains("unknown color"));
        let ds = lower_err("global n : number = math.cosh(1)");
        assert!(ds.to_string().contains("unknown primitive"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let ds = lower_err("global x : number = 0 global x : number = 1");
        assert!(ds.to_string().contains("duplicate definition"));
    }

    #[test]
    fn let_scopes_to_rest_of_block() {
        let p = lower_ok("fun f(): number pure { let a = 1; let b = a + 1; a + b }");
        let f = p.fun("f").expect("fun");
        let ExprKind::Let { name, body, .. } = &f.body.kind else {
            panic!("expected let chain, got {:?}", f.body.kind);
        };
        assert_eq!(&**name, "a");
        assert!(matches!(body.kind, ExprKind::Let { .. }));
    }

    #[test]
    fn on_edited_takes_one_param() {
        lower_ok(
            r#"
            global term : number = 30
            page start() {
                render {
                    boxed { on edited(text: string) { term := str.len(text); } }
                }
            }
            "#,
        );
        let ds = lower_err("page start() { render { boxed { on tap(x: string) { pop; } } } }");
        assert!(ds.to_string().contains("takes 0 parameter"));
    }
}
