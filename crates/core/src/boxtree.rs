//! Box content — the paper's `B` (Figure 7) and display `D`.
//!
//! `B ::= ε | B v | B [a = v] | B ⟨B⟩` — a box's content is a sequence of
//! posted leaf values, attribute settings, and nested boxes. The display
//! is either box content or `⊥` (stale, awaiting a RENDER transition).

use crate::attr::Attr;
use crate::expr::BoxSourceId;
use crate::provenance::Provenance;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// One item in a box's content sequence.
///
/// Leaves and attributes carry optional [`Provenance`] — where the value
/// came from in the source — but provenance is **ignored by equality**:
/// two frames that render the same pixels compare equal even if one was
/// produced by an engine (smallstep) that tags nothing. This keeps the
/// three-way differential oracles and damage diffing value-based.
#[derive(Debug, Clone)]
pub enum BoxItem {
    /// `B v` — a posted leaf value, with the origin of the value.
    Leaf(Value, Option<Provenance>),
    /// `B [a = v]` — an attribute setting, with the origin of the value.
    Attr(Attr, Value, Option<Provenance>),
    /// `B ⟨B⟩` — a nested box. Children are reference-counted so that
    /// unchanged subtrees can be *shared* across frames: a memo-cache
    /// splice is an O(1) pointer copy, and downstream passes (layout,
    /// paint) can detect "nothing changed here" by pointer identity.
    Child(Arc<BoxNode>),
}

impl PartialEq for BoxItem {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (BoxItem::Leaf(a, _), BoxItem::Leaf(b, _)) => a == b,
            (BoxItem::Attr(aa, av, _), BoxItem::Attr(ba, bv, _)) => aa == ba && av == bv,
            (BoxItem::Child(a), BoxItem::Child(b)) => a == b,
            _ => false,
        }
    }
}

impl BoxItem {
    /// A leaf with no provenance (tests and synthetic trees).
    pub fn leaf(value: Value) -> BoxItem {
        BoxItem::Leaf(value, None)
    }

    /// An attribute setting with no provenance (tests and synthetic
    /// trees).
    pub fn attr(attr: Attr, value: Value) -> BoxItem {
        BoxItem::Attr(attr, value, None)
    }

    /// The provenance carried by this item, if any.
    pub fn provenance(&self) -> Option<&Provenance> {
        match self {
            BoxItem::Leaf(_, p) | BoxItem::Attr(_, _, p) => p.as_ref(),
            BoxItem::Child(_) => None,
        }
    }
}

/// A box: its content sequence plus the identity of the `boxed`
/// statement that created it (None for the implicit top-level box).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BoxNode {
    /// The source `boxed` statement, for UI↔code navigation.
    pub source: Option<BoxSourceId>,
    /// Content in creation order.
    pub items: Vec<BoxItem>,
}

impl BoxNode {
    /// An empty box created by the given source statement.
    pub fn new(source: Option<BoxSourceId>) -> Self {
        BoxNode {
            source,
            items: Vec::new(),
        }
    }

    /// The current value of attribute `a`: rightmost setting wins, as in
    /// the sequence semantics of Fig. 7.
    pub fn attr(&self, attr: Attr) -> Option<&Value> {
        self.items.iter().rev().find_map(|item| match item {
            BoxItem::Attr(a, v, _) if *a == attr => Some(v),
            _ => None,
        })
    }

    /// The winning setting of attribute `a` together with its
    /// provenance — the bidirectional-manipulation analogue of
    /// [`BoxNode::attr`].
    pub fn attr_with_provenance(&self, attr: Attr) -> Option<(&Value, Option<&Provenance>)> {
        self.items.iter().rev().find_map(|item| match item {
            BoxItem::Attr(a, v, p) if *a == attr => Some((v, p.as_ref())),
            _ => None,
        })
    }

    /// Posted leaf values, in order.
    pub fn leaves(&self) -> impl Iterator<Item = &Value> {
        self.items.iter().filter_map(|item| match item {
            BoxItem::Leaf(v, _) => Some(v),
            _ => None,
        })
    }

    /// The `ordinal`-th posted leaf (what hit-testing resolves a text
    /// cell to) together with its provenance.
    pub fn leaf_with_provenance(&self, ordinal: usize) -> Option<(&Value, Option<&Provenance>)> {
        self.items
            .iter()
            .filter_map(|item| match item {
                BoxItem::Leaf(v, p) => Some((v, p.as_ref())),
                _ => None,
            })
            .nth(ordinal)
    }

    /// Nested child boxes, in order.
    pub fn children(&self) -> impl Iterator<Item = &BoxNode> {
        self.items.iter().filter_map(|item| match item {
            BoxItem::Child(b) => Some(&**b),
            _ => None,
        })
    }

    /// Nested child boxes as shared handles, in order — for passes that
    /// want to keep (or compare) the `Arc` identity of a subtree.
    pub fn children_shared(&self) -> impl Iterator<Item = &Arc<BoxNode>> {
        self.items.iter().filter_map(|item| match item {
            BoxItem::Child(b) => Some(b),
            _ => None,
        })
    }

    /// Append a child box, taking ownership and sharing it.
    pub fn push_child(&mut self, child: BoxNode) {
        self.items.push(BoxItem::Child(Arc::new(child)));
    }

    /// Follow a path of child indices (`[]` = self).
    pub fn descendant(&self, path: &[usize]) -> Option<&BoxNode> {
        let mut node = self;
        for &i in path {
            node = node.children().nth(i)?;
        }
        Some(node)
    }

    /// Total number of boxes in the tree, including self.
    pub fn box_count(&self) -> usize {
        1 + self.children().map(BoxNode::box_count).sum::<usize>()
    }

    /// Depth of the tree (a lone box has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children().map(BoxNode::depth).max().unwrap_or(0)
    }

    /// Visit every box in the tree, pre-order, with its path.
    pub fn walk(&self, visit: &mut dyn FnMut(&[usize], &BoxNode)) {
        fn go(node: &BoxNode, path: &mut Vec<usize>, visit: &mut dyn FnMut(&[usize], &BoxNode)) {
            visit(path, node);
            for (i, child) in node.children().enumerate() {
                path.push(i);
                go(child, path, visit);
                path.pop();
            }
        }
        go(self, &mut Vec::new(), visit);
    }

    /// Paths of every box created by the given source statement — the
    /// "code → boxes" direction of Fig. 2 navigation (one statement in a
    /// loop yields many boxes).
    pub fn find_by_source(&self, source: BoxSourceId) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        self.walk(&mut |path, node| {
            if node.source == Some(source) {
                out.push(path.to_vec());
            }
        });
        out
    }
}

/// The display component `D ::= ⊥ | B` of the system state, extended
/// with a degraded third state for fault containment: the last *good*
/// box tree, kept on screen after a failed transition.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Display {
    /// `⊥` — stale; must be re-rendered before the user can interact.
    #[default]
    Invalid,
    /// Valid box content currently shown to the user. The box is the
    /// implicit top-level box of §4.3, behind a shared handle so a host
    /// can fan one frame out to many observers without copying.
    Valid(Arc<BoxNode>),
    /// The last good box content, shown while the machine is degraded
    /// by a contained fault. The user can still see (and interact with)
    /// this tree; the next successful transition replaces it.
    Stale(Arc<BoxNode>),
}

impl Display {
    /// The box content on screen, if any (valid or last-good stale).
    pub fn content(&self) -> Option<&BoxNode> {
        match self {
            Display::Invalid => None,
            Display::Valid(b) | Display::Stale(b) => Some(b),
        }
    }

    /// The box content as a shared handle — cloning the result is an
    /// O(1) refcount bump, so many observers can hold the same frame.
    pub fn content_shared(&self) -> Option<&Arc<BoxNode>> {
        match self {
            Display::Invalid => None,
            Display::Valid(b) | Display::Stale(b) => Some(b),
        }
    }

    /// Whether the display is valid (rendered and current).
    pub fn is_valid(&self) -> bool {
        matches!(self, Display::Valid(_))
    }

    /// Whether the display shows a last-good tree after a contained
    /// fault.
    pub fn is_stale(&self) -> bool {
        matches!(self, Display::Stale(_))
    }
}

impl fmt::Display for Display {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Display::Invalid => f.write_str("⊥"),
            Display::Valid(b) => write!(f, "{} boxes", b.box_count()),
            Display::Stale(b) => write!(f, "{} boxes (stale)", b.box_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(text: &str) -> BoxItem {
        BoxItem::leaf(Value::str(text))
    }

    fn sample() -> BoxNode {
        // root ⟨ a ⟨ c ⟩ ⟩ ⟨ b ⟩ with attrs on root.
        let mut c = BoxNode::new(Some(BoxSourceId(2)));
        c.items.push(leaf("c"));
        let mut a = BoxNode::new(Some(BoxSourceId(1)));
        a.items.push(leaf("a"));
        a.push_child(c);
        let mut b = BoxNode::new(Some(BoxSourceId(1)));
        b.items.push(leaf("b"));
        let mut root = BoxNode::new(None);
        root.items
            .push(BoxItem::attr(Attr::Margin, Value::Number(2.0)));
        root.push_child(a);
        root.push_child(b);
        root
    }

    #[test]
    fn rightmost_attr_wins() {
        let mut b = BoxNode::new(None);
        b.items
            .push(BoxItem::attr(Attr::Margin, Value::Number(1.0)));
        b.items
            .push(BoxItem::attr(Attr::Margin, Value::Number(9.0)));
        assert_eq!(b.attr(Attr::Margin), Some(&Value::Number(9.0)));
        assert_eq!(b.attr(Attr::Padding), None);
    }

    #[test]
    fn tree_metrics() {
        let root = sample();
        assert_eq!(root.box_count(), 4);
        assert_eq!(root.depth(), 3);
        assert_eq!(root.children().count(), 2);
    }

    #[test]
    fn descendant_paths() {
        let root = sample();
        let c = root.descendant(&[0, 0]).expect("c exists");
        assert_eq!(c.leaves().next(), Some(&Value::str("c")));
        assert!(root.descendant(&[5]).is_none());
        assert_eq!(root.descendant(&[]).map(BoxNode::box_count), Some(4));
    }

    #[test]
    fn find_by_source_handles_one_to_many() {
        let root = sample();
        let hits = root.find_by_source(BoxSourceId(1));
        assert_eq!(hits, vec![vec![0], vec![1]]);
        let hits2 = root.find_by_source(BoxSourceId(2));
        assert_eq!(hits2, vec![vec![0, 0]]);
        assert!(root.find_by_source(BoxSourceId(99)).is_empty());
    }

    #[test]
    fn display_states() {
        assert!(!Display::Invalid.is_valid());
        assert_eq!(Display::Invalid.content(), None);
        let d = Display::Valid(Arc::new(sample()));
        assert!(d.is_valid());
        assert_eq!(d.content().map(BoxNode::box_count), Some(4));
        assert_eq!(Display::Invalid.to_string(), "⊥");
    }
}
