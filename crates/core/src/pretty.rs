//! Pretty-printing of *core* expressions (post-lowering).
//!
//! Used by the stepper (`smallstep` traces rendered as readable
//! reduction sequences), the REPL, and diagnostics. The output is
//! surface-like but not necessarily re-parseable (core constructs such
//! as resolved primitives print as their qualified names).

use crate::expr::{Expr, ExprKind};
use std::fmt::Write as _;

/// Render a core expression on one line, eliding deep subterms with
/// `…` beyond `max_depth`.
pub fn pretty_expr(expr: &Expr, max_depth: usize) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, max_depth);
    out
}

fn write_expr(out: &mut String, expr: &Expr, depth: usize) {
    if depth == 0 {
        out.push('…');
        return;
    }
    let d = depth - 1;
    match &expr.kind {
        ExprKind::Num(n) => {
            out.push_str(&crate::value::fmt_number(*n));
        }
        ExprKind::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        ExprKind::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::ColorLit(c) => {
            let _ = write!(out, "colors.{c}");
        }
        ExprKind::Local(n) => out.push_str(n),
        ExprKind::Global(g) => out.push_str(g),
        ExprKind::FunRef(f) => out.push_str(f),
        ExprKind::PrimRef(p) => {
            let _ = write!(out, "{p}");
        }
        ExprKind::Tuple(es) => {
            out.push('(');
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, d);
            }
            out.push(')');
        }
        ExprKind::ListLit(es) => {
            out.push('[');
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, d);
            }
            out.push(']');
        }
        ExprKind::Proj(e, i) => {
            write_expr(out, e, d);
            let _ = write!(out, ".{i}");
        }
        ExprKind::Call(f, args) => {
            write_expr(out, f, d);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, d);
            }
            out.push(')');
        }
        ExprKind::Lambda(lam) => {
            out.push_str("fn(");
            for (i, p) in lam.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", p.name, p.ty);
            }
            out.push_str(") -> ");
            write_expr(out, &lam.body, d);
        }
        ExprKind::Let {
            name, value, body, ..
        } => {
            let _ = write!(out, "let {name} = ");
            write_expr(out, value, d);
            out.push_str("; ");
            write_expr(out, body, d);
        }
        ExprKind::Seq(a, b) => {
            write_expr(out, a, d);
            out.push_str("; ");
            write_expr(out, b, d);
        }
        ExprKind::If(c, t, e) => {
            out.push_str("if ");
            write_expr(out, c, d);
            out.push_str(" { ");
            write_expr(out, t, d);
            out.push_str(" } else { ");
            write_expr(out, e, d);
            out.push_str(" }");
        }
        ExprKind::While(c, b) => {
            out.push_str("while ");
            write_expr(out, c, d);
            out.push_str(" { ");
            write_expr(out, b, d);
            out.push_str(" }");
        }
        ExprKind::ForRange { var, lo, hi, body } => {
            let _ = write!(out, "for {var} in ");
            write_expr(out, lo, d);
            out.push_str(" .. ");
            write_expr(out, hi, d);
            out.push_str(" { ");
            write_expr(out, body, d);
            out.push_str(" }");
        }
        ExprKind::Foreach { var, list, body } => {
            let _ = write!(out, "foreach {var} in ");
            write_expr(out, list, d);
            out.push_str(" { ");
            write_expr(out, body, d);
            out.push_str(" }");
        }
        ExprKind::LocalAssign(n, e) | ExprKind::WidgetWrite(n, e) => {
            let _ = write!(out, "{n} := ");
            write_expr(out, e, d);
        }
        ExprKind::WidgetRead(n) => out.push_str(n),
        ExprKind::Remember {
            name,
            ty,
            init,
            body,
            ..
        } => {
            let _ = write!(out, "remember {name} : {ty} = ");
            write_expr(out, init, d);
            out.push_str("; ");
            write_expr(out, body, d);
        }
        ExprKind::GlobalAssign(g, e) => {
            let _ = write!(out, "{g} := ");
            write_expr(out, e, d);
        }
        ExprKind::PushPage(p, args) => {
            let _ = write!(out, "push {p}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, d);
            }
            out.push(')');
        }
        ExprKind::PopPage => out.push_str("pop"),
        ExprKind::Boxed(_, body) => {
            out.push_str("boxed { ");
            write_expr(out, body, d);
            out.push_str(" }");
        }
        ExprKind::Post(e) => {
            out.push_str("post ");
            write_expr(out, e, d);
        }
        ExprKind::SetAttr(a, e) => {
            let _ = write!(out, "box.{a} := ");
            write_expr(out, e, d);
        }
        ExprKind::Binary(op, l, r) => {
            out.push('(');
            write_expr(out, l, d);
            let _ = write!(out, " {} ", op.text());
            write_expr(out, r, d);
            out.push(')');
        }
        ExprKind::Unary(op, e) => {
            out.push_str(op.text());
            write_expr(out, e, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn prints_core_forms() {
        let p = compile(
            "global g : number = 1
             fun f(x: number): number pure { x + g }
             page start() {
                 init { g := f(2); push start(); }
                 render { boxed { post g; box.margin := 1; } }
             }",
        )
        .expect("compiles");
        let init = pretty_expr(&p.page("start").expect("page").init, 10);
        assert_eq!(init, "g := f(2); push start(); ()");
        let render = pretty_expr(&p.page("start").expect("page").render, 10);
        assert_eq!(render, "boxed { post g; box.margin := 1; () }");
        let body = pretty_expr(&p.fun("f").expect("f").body, 10);
        assert_eq!(body, "(x + g)");
    }

    #[test]
    fn elides_beyond_depth() {
        let p = compile(
            "fun f(): number pure { ((1 + 2) + 3) + 4 }
             page start() { render { } }",
        )
        .expect("compiles");
        let shallow = pretty_expr(&p.fun("f").expect("f").body, 2);
        assert!(shallow.contains('…'), "{shallow}");
        let deep = pretty_expr(&p.fun("f").expect("f").body, 10);
        assert_eq!(deep, "(((1 + 2) + 3) + 4)");
    }
}
