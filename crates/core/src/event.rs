//! The event queue `Q` (Figure 7).
//!
//! `q ::= [exec v] | [push p v] | [pop]` — handler thunks, page pushes,
//! and page pops. The paper enqueues on the left and dequeues on the
//! right of the sequence; [`EventQueue`] is the FIFO refinement.

use crate::types::Name;
use crate::value::Value;
use std::collections::VecDeque;
use std::fmt;

/// One queued event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `[exec v]` — run a handler `v` applied to the given arguments.
    /// The paper's thunks are the nullary case (`ontap : () →s ()`);
    /// edit handlers carry the edited text as their single argument.
    Exec(Value, Vec<Value>),
    /// `[push p v]` — create page `p` with argument `v`.
    Push(Name, Value),
    /// `[pop]` — pop the current page.
    Pop,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Exec(..) => f.write_str("[exec ·]"),
            Event::Push(p, v) => write!(f, "[push {p} {v}]"),
            Event::Pop => f.write_str("[pop]"),
        }
    }
}

/// The event queue `Q`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventQueue {
    items: VecDeque<Event>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an event (the paper's "adding to the left").
    pub fn enqueue(&mut self, event: Event) {
        self.items.push_back(event);
    }

    /// Dequeue the oldest event (the paper's "removing from the right").
    pub fn dequeue(&mut self) -> Option<Event> {
        self.items.pop_front()
    }

    /// Whether the queue is empty (a requirement for stability).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Drop all pending events (used by UPDATE, which starts from a
    /// stable state and leaves no stale thunks behind).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let mut q = EventQueue::new();
        q.enqueue(Event::Pop);
        q.enqueue(Event::Push(Arc::from("detail"), Value::unit()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue(), Some(Event::Pop));
        assert!(matches!(q.dequeue(), Some(Event::Push(..))));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.enqueue(Event::Pop);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Event::Pop.to_string(), "[pop]");
        assert_eq!(
            Event::Push(Arc::from("start"), Value::unit()).to_string(),
            "[push start ()]"
        );
    }
}
