//! Value provenance — where a rendered value came from in the source.
//!
//! Bidirectional evaluation (ROADMAP item 4, after Mayer/Kunčak/Chugh)
//! needs every value that reaches the display to remember its origin:
//! either a literal occurrence in the source, or the expression that
//! computed it together with the local environment it closed over. The
//! repair engine in `alive-live` inverts that origin to turn an edited
//! *output* value into ranked candidate *source* edits.
//!
//! Provenance is carried on [`crate::boxtree::BoxItem`] leaves and
//! attributes, but deliberately **excluded from equality**: rendered
//! frames stay byte-identical across all three engines (bigstep, VM,
//! smallstep) and across memo splices, so the differential oracles and
//! damage diffing are untouched. The smallstep substitution machine
//! destroys environments by design and tags nothing; bigstep and the VM
//! must agree exactly, which is why both derive the environment from the
//! single [`free_locals`] function below — bigstep at run time, the VM
//! compiler at compile time (resolving the same names to registers).

use crate::expr::{Expr, ExprKind};
use crate::types::Name;
use crate::value::Value;
use alive_syntax::Span;
use std::sync::Arc;

/// The origin of a rendered value.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// The value is a literal occurrence in the source: replacing the
    /// spanned text rewrites the value directly.
    Literal(Span),
    /// The value was computed by the spanned expression under the given
    /// snapshot of its free local variables (post-evaluation values, in
    /// [`free_locals`] order).
    Expr {
        /// Span of the producing expression.
        span: Span,
        /// `(name, value)` snapshot of the expression's free locals.
        env: Arc<Vec<(Name, Value)>>,
    },
}

impl Provenance {
    /// The source span of the producing expression or literal.
    pub fn span(&self) -> Span {
        match self {
            Provenance::Literal(span) => *span,
            Provenance::Expr { span, .. } => *span,
        }
    }

    /// Whether the value came straight from a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Provenance::Literal(_))
    }

    /// The captured free-local environment (empty for literals).
    pub fn env(&self) -> &[(Name, Value)] {
        match self {
            Provenance::Literal(_) => &[],
            Provenance::Expr { env, .. } => env,
        }
    }
}

/// Whether an expression is a literal for provenance purposes — the
/// kinds whose value is read verbatim from the source text.
pub fn is_literal_expr(expr: &Expr) -> bool {
    matches!(
        expr.kind,
        ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Bool(_) | ExprKind::ColorLit(_)
    )
}

/// Free local variables of `expr`, in first-use order, excluding names
/// bound inside the expression itself (`let`, lambda parameters, loop
/// variables, `remember` bindings).
///
/// This is *the* definition both evaluation engines share: bigstep looks
/// the names up at run time, the VM compiler resolves them to registers
/// at compile time. Names that fail to resolve are skipped by both
/// (impossible for type-checked programs), so the captured environments
/// agree byte-for-byte.
pub fn free_locals(expr: &Expr) -> Vec<Name> {
    fn bound(stack: &[Name], name: &Name) -> bool {
        stack.iter().any(|b| Arc::ptr_eq(b, name) || **b == **name)
    }
    fn seen(out: &[Name], name: &Name) -> bool {
        out.iter().any(|b| Arc::ptr_eq(b, name) || **b == **name)
    }
    fn go(expr: &Expr, stack: &mut Vec<Name>, out: &mut Vec<Name>) {
        match &expr.kind {
            ExprKind::Local(name) | ExprKind::LocalAssign(name, _) => {
                if !bound(stack, name) && !seen(out, name) {
                    out.push(name.clone());
                }
                if let ExprKind::LocalAssign(_, value) = &expr.kind {
                    go(value, stack, out);
                }
            }
            ExprKind::Num(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::ColorLit(_)
            | ExprKind::Global(_)
            | ExprKind::FunRef(_)
            | ExprKind::PrimRef(_)
            | ExprKind::WidgetRead(_)
            | ExprKind::PopPage => {}
            ExprKind::Tuple(es) | ExprKind::ListLit(es) | ExprKind::PushPage(_, es) => {
                for e in es {
                    go(e, stack, out);
                }
            }
            ExprKind::Proj(e, _)
            | ExprKind::Unary(_, e)
            | ExprKind::GlobalAssign(_, e)
            | ExprKind::WidgetWrite(_, e)
            | ExprKind::Boxed(_, e)
            | ExprKind::Post(e)
            | ExprKind::SetAttr(_, e) => go(e, stack, out),
            ExprKind::Call(callee, args) => {
                go(callee, stack, out);
                for a in args {
                    go(a, stack, out);
                }
            }
            ExprKind::Lambda(lam) => {
                let base = stack.len();
                stack.extend(lam.params.iter().map(|p| p.name.clone()));
                go(&lam.body, stack, out);
                stack.truncate(base);
            }
            ExprKind::Let {
                name, value, body, ..
            } => {
                go(value, stack, out);
                stack.push(name.clone());
                go(body, stack, out);
                stack.pop();
            }
            ExprKind::Seq(a, b) | ExprKind::While(a, b) | ExprKind::Binary(_, a, b) => {
                go(a, stack, out);
                go(b, stack, out);
            }
            ExprKind::If(c, t, e) => {
                go(c, stack, out);
                go(t, stack, out);
                go(e, stack, out);
            }
            ExprKind::ForRange { var, lo, hi, body } => {
                go(lo, stack, out);
                go(hi, stack, out);
                stack.push(var.clone());
                go(body, stack, out);
                stack.pop();
            }
            ExprKind::Foreach { var, list, body } => {
                go(list, stack, out);
                stack.push(var.clone());
                go(body, stack, out);
                stack.pop();
            }
            ExprKind::Remember {
                name, init, body, ..
            } => {
                go(init, stack, out);
                stack.push(name.clone());
                go(body, stack, out);
                stack.pop();
            }
        }
    }
    let mut out = Vec::new();
    go(expr, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_syntax::ast::BinOp;

    fn name(s: &str) -> Name {
        Arc::from(s)
    }

    fn local(s: &str) -> Expr {
        Expr::new(ExprKind::Local(name(s)), Span::DUMMY)
    }

    fn num(n: f64) -> Expr {
        Expr::new(ExprKind::Num(n), Span::DUMMY)
    }

    #[test]
    fn literals_have_no_free_locals() {
        assert!(free_locals(&num(4.0)).is_empty());
        assert!(is_literal_expr(&num(4.0)));
        assert!(!is_literal_expr(&local("x")));
    }

    #[test]
    fn binary_collects_in_first_use_order() {
        let e = Expr::new(
            ExprKind::Binary(
                BinOp::Add,
                Box::new(local("b")),
                Box::new(Expr::new(
                    ExprKind::Binary(BinOp::Mul, Box::new(local("a")), Box::new(local("b"))),
                    Span::DUMMY,
                )),
            ),
            Span::DUMMY,
        );
        let free = free_locals(&e);
        assert_eq!(free.len(), 2);
        assert_eq!(&*free[0], "b");
        assert_eq!(&*free[1], "a");
    }

    #[test]
    fn let_binding_shadows_body_use() {
        let e = Expr::new(
            ExprKind::Let {
                name: name("x"),
                ty: None,
                value: Box::new(local("y")),
                body: Box::new(Expr::new(
                    ExprKind::Binary(BinOp::Add, Box::new(local("x")), Box::new(local("z"))),
                    Span::DUMMY,
                )),
            },
            Span::DUMMY,
        );
        let free = free_locals(&e);
        assert_eq!(free.len(), 2);
        assert_eq!(&*free[0], "y");
        assert_eq!(&*free[1], "z");
    }

    #[test]
    fn lambda_params_are_bound() {
        use crate::expr::{LambdaExpr, ParamSig};
        use crate::types::{Effect, Type};
        let lam = Expr::new(
            ExprKind::Lambda(Arc::new(LambdaExpr {
                params: Arc::from(vec![ParamSig::new("p", Type::Number)].into_boxed_slice()),
                effect: Effect::Pure,
                body: Arc::new(Expr::new(
                    ExprKind::Binary(BinOp::Add, Box::new(local("p")), Box::new(local("q"))),
                    Span::DUMMY,
                )),
            })),
            Span::DUMMY,
        );
        let free = free_locals(&lam);
        assert_eq!(free.len(), 1);
        assert_eq!(&*free[0], "q");
    }
}
