//! Model persistence — the paper's programs "consist of both code and
//! *persistent* data" (§1), inheriting Smalltalk's image-based
//! persistence through TouchDevelop (§6).
//!
//! The store is serialized as *literal expressions of the language
//! itself*: each global becomes a line `g := <value literal>`, and
//! loading parses the literal with the ordinary expression parser,
//! lowers it, evaluates it (it is closed and pure), and type-checks it
//! against the current program — so a snapshot taken under old code is
//! subjected to exactly the Fig. 12 fix-up discipline when restored
//! under new code: ill-typed entries are dropped, not crashed on.
//!
//! Only →-free values exist in the store (T-C-GLOBAL), so every value
//! has a literal form.

use crate::bigstep;
use crate::lower::lower_program;
use crate::program::Program;
use crate::store::Store;
use crate::value::{Color, Value};
use std::fmt;
use std::fmt::Write as _;

/// Render a (→-free) value as a parseable literal of the language.
///
/// # Errors
///
/// [`PersistError::Unpersistable`] on closures, primitives, and widget
/// references — those cannot be stored in globals (T-C-GLOBAL), so a
/// store snapshot of a type-checked program never contains them; a
/// corrupted store is reported instead of crashed on.
pub fn value_to_literal(value: &Value) -> Result<String, PersistError> {
    let mut out = String::new();
    write_literal(&mut out, value)
        .map_err(|what| PersistError::Unpersistable { global: None, what })?;
    Ok(out)
}

fn write_literal(out: &mut String, value: &Value) -> Result<(), &'static str> {
    match value {
        Value::Number(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else if n.is_nan() {
                // No NaN literal; 0/0 evaluates to NaN.
                out.push_str("(0 / 0)");
            } else if *n > 0.0 {
                out.push_str("(1 / 0)");
            } else {
                out.push_str("(-1 / 0)");
            }
        }
        Value::Str(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Color(c) => match c.name() {
            Some(name) => {
                let _ = write!(out, "colors.{name}");
            }
            None => {
                // Un-named colors have no literal; snap to the nearest
                // named color (the palette is the language's color space).
                let nearest = nearest_named(*c);
                let _ = write!(out, "colors.{nearest}");
            }
        },
        Value::Tuple(vs) => {
            out.push('(');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_literal(out, v)?;
            }
            out.push(')');
        }
        Value::List(vs) => {
            out.push('[');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_literal(out, v)?;
            }
            out.push(']');
        }
        // Store values are function-free for type-checked programs
        // (T-C-GLOBAL); a corrupted store is a typed error, not a panic.
        Value::Closure(_) => return Err("closure"),
        Value::Prim(_) => return Err("primitive"),
        Value::WidgetRef(_) => return Err("widget reference"),
    }
    Ok(())
}

fn nearest_named(c: Color) -> &'static str {
    Color::NAMED
        .iter()
        .min_by_key(|(_, n)| {
            let dr = i32::from(n.r) - i32::from(c.r);
            let dg = i32::from(n.g) - i32::from(c.g);
            let db = i32::from(n.b) - i32::from(c.b);
            dr * dr + dg * dg + db * db
        })
        .map(|(name, _)| *name)
        .unwrap_or("black")
}

/// Serialize a store snapshot.
///
/// # Errors
///
/// [`PersistError::Unpersistable`] (naming the offending global) if the
/// store holds a value with no literal form — impossible for
/// type-checked programs, reported instead of panicked on otherwise.
pub fn save_store(store: &Store) -> Result<String, PersistError> {
    let mut out = String::from("#alive-store v1\n");
    for (name, value) in store.iter() {
        let literal = value_to_literal(value).map_err(|e| match e {
            PersistError::Unpersistable { what, .. } => PersistError::Unpersistable {
                global: Some(name.to_string()),
                what,
            },
            other => other,
        })?;
        let _ = writeln!(out, "{name} := {literal}");
    }
    Ok(out)
}

/// An error snapshotting or restoring the model.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Malformed snapshot syntax on load.
    Syntax {
        /// 1-based line of the problem.
        line: usize,
        /// Description.
        message: String,
    },
    /// A store value has no literal form (closures, primitives, widget
    /// references) — the store is corrupted; snapshotting it is refused
    /// rather than aborted.
    Unpersistable {
        /// The global holding the value, when known.
        global: Option<String>,
        /// What kind of value could not be persisted.
        what: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Syntax { line, message } => {
                write!(f, "snapshot error at line {line}: {message}")
            }
            PersistError::Unpersistable { global, what } => match global {
                Some(g) => write!(f, "global `{g}` holds a {what}, which has no literal form"),
                None => write!(f, "a {what} has no literal form"),
            },
        }
    }
}

impl std::error::Error for PersistError {}

/// What happened to each snapshot entry on load.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Entries restored into the store.
    pub restored: Vec<String>,
    /// Entries skipped (unknown global or type mismatch under the
    /// current program — the persistence analogue of S-SKIP).
    pub skipped: Vec<(String, String)>,
}

/// Restore a snapshot against the current program. Entries that do not
/// type-check under `program` are skipped (reported, not fatal), so old
/// snapshots survive code evolution the same way old stores survive
/// UPDATE.
///
/// # Errors
///
/// [`PersistError`] only for malformed snapshot *syntax*; semantic
/// mismatches are reported in the [`LoadReport`].
pub fn load_store(program: &Program, text: &str) -> Result<(Store, LoadReport), PersistError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == "#alive-store v1" => {}
        _ => {
            return Err(PersistError::Syntax {
                line: 1,
                message: "missing `#alive-store v1` header".into(),
            })
        }
    }
    let mut store = Store::new();
    let mut report = LoadReport::default();
    for (i, line) in lines {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, literal)) = line.split_once(":=") else {
            return Err(PersistError::Syntax {
                line: line_no,
                message: format!("expected `name := literal`, found {line:?}"),
            });
        };
        let name = name.trim();
        let literal = literal.trim();
        let value = match parse_literal(literal) {
            Ok(v) => v,
            Err(message) => {
                return Err(PersistError::Syntax {
                    line: line_no,
                    message,
                })
            }
        };
        match program.global(name) {
            None => report.skipped.push((
                name.to_string(),
                "no such global in the current code".into(),
            )),
            Some(def) if !value.has_type(&def.ty) => report.skipped.push((
                name.to_string(),
                format!("value is not a `{}` anymore", def.ty),
            )),
            Some(_) => {
                report.restored.push(name.to_string());
                store.set(name, value);
            }
        }
    }
    Ok((store, report))
}

/// Parse a value literal (closed pure expression) back into a value:
/// parse with the ordinary expression parser, lower the literal forms,
/// and evaluate purely against an empty program.
fn parse_literal(src: &str) -> Result<Value, String> {
    let expr = alive_syntax::parse_expr(src).map_err(|d| d.to_string())?;
    let core_expr = lower_expr_standalone(&expr)?;
    let empty = lower_program(&alive_syntax::ast::Program::default()).program;
    let store = Store::new();
    let (value, _) =
        bigstep::run_pure(&empty, &store, 0, 1_000_000, &core_expr).map_err(|e| e.to_string())?;
    Ok(value)
}

/// Lower a literal expression without a surrounding program: only
/// literal forms are accepted.
fn lower_expr_standalone(expr: &alive_syntax::ast::Expr) -> Result<crate::expr::Expr, String> {
    use crate::expr::{Expr, ExprKind as C};
    use alive_syntax::ast::{ExprKind as S, UnOp};
    let span = expr.span;
    let kind = match &expr.kind {
        S::Number(n) => C::Num(*n),
        S::Str(s) => C::Str(std::sync::Arc::from(s.as_str())),
        S::Bool(b) => C::Bool(*b),
        S::Tuple(es) => C::Tuple(
            es.iter()
                .map(lower_expr_standalone)
                .collect::<Result<_, _>>()?,
        ),
        S::ListLit(es) => C::ListLit(
            es.iter()
                .map(lower_expr_standalone)
                .collect::<Result<_, _>>()?,
        ),
        S::Qualified { ns, name } if ns.text == "colors" => match Color::by_name(&name.text) {
            Some(c) => C::ColorLit(c),
            None => return Err(format!("unknown color `{}`", name.text)),
        },
        S::Unary {
            op: UnOp::Neg,
            expr,
        } => C::Unary(
            alive_syntax::ast::UnOp::Neg,
            Box::new(lower_expr_standalone(expr)?),
        ),
        S::Binary { op, lhs, rhs } => C::Binary(
            *op,
            Box::new(lower_expr_standalone(lhs)?),
            Box::new(lower_expr_standalone(rhs)?),
        ),
        other => return Err(format!("not a value literal: {other:?}")),
    };
    Ok(Expr::new(kind, span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn sample_store() -> Store {
        let mut s = Store::new();
        s.set("count", Value::Number(42.5));
        s.set("name", Value::str("ada \"quoted\"\nline2"));
        s.set("flag", Value::Bool(true));
        s.set(
            "hue",
            Value::Color(Color::by_name("light_blue").expect("known")),
        );
        s.set(
            "pairs",
            Value::list(vec![
                Value::tuple(vec![Value::str("a"), Value::Number(1.0)]),
                Value::tuple(vec![Value::str("b"), Value::Number(-2.0)]),
            ]),
        );
        s
    }

    fn matching_program() -> Program {
        compile(
            "global count : number = 0
             global name : string = \"\"
             global flag : bool = false
             global hue : color = colors.black
             global pairs : list (string, number) = []
             page start() { render { } }",
        )
        .expect("compiles")
    }

    #[test]
    fn corrupted_store_is_a_typed_error_not_a_panic() {
        let mut s = Store::new();
        s.set("f", Value::Prim(crate::prim::Prim::MathFloor));
        let err = save_store(&s).expect_err("unpersistable");
        assert_eq!(
            err,
            PersistError::Unpersistable {
                global: Some("f".into()),
                what: "primitive",
            }
        );
        assert!(err.to_string().contains("`f`"), "{err}");
    }

    #[test]
    fn store_roundtrips_through_literals() {
        let original = sample_store();
        let text = save_store(&original).expect("saves");
        let (restored, report) = load_store(&matching_program(), &text).expect("loads");
        assert_eq!(restored, original);
        assert_eq!(report.restored.len(), 5);
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn snapshot_survives_code_evolution_like_fixup() {
        let text = save_store(&sample_store()).expect("saves");
        // New code: `count` retyped, `flag` gone, the rest unchanged.
        let evolved = compile(
            "global count : string = \"zero\"
             global name : string = \"\"
             global hue : color = colors.black
             global pairs : list (string, number) = []
             page start() { render { } }",
        )
        .expect("compiles");
        let (restored, report) = load_store(&evolved, &text).expect("loads");
        assert_eq!(report.restored, vec!["hue", "name", "pairs"]);
        assert_eq!(report.skipped.len(), 2);
        assert!(!restored.contains("count"));
        assert!(!restored.contains("flag"));
    }

    #[test]
    fn special_numbers_roundtrip() {
        let mut s = Store::new();
        s.set("inf", Value::Number(f64::INFINITY));
        s.set("ninf", Value::Number(f64::NEG_INFINITY));
        let p = compile(
            "global inf : number = 0
             global ninf : number = 0
             page start() { render { } }",
        )
        .expect("compiles");
        let (restored, _) = load_store(&p, &save_store(&s).expect("saves")).expect("loads");
        assert_eq!(restored.get("inf"), Some(&Value::Number(f64::INFINITY)));
        assert_eq!(
            restored.get("ninf"),
            Some(&Value::Number(f64::NEG_INFINITY))
        );
    }

    #[test]
    fn malformed_snapshots_are_syntax_errors() {
        let p = matching_program();
        assert!(load_store(&p, "").is_err());
        assert!(load_store(&p, "#alive-store v1\ncount 42").is_err());
        assert!(load_store(&p, "#alive-store v1\ncount := fn() -> 1").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = matching_program();
        let text = "#alive-store v1\n\n# a comment\ncount := 7\n";
        let (restored, report) = load_store(&p, text).expect("loads");
        assert_eq!(restored.get("count"), Some(&Value::Number(7.0)));
        assert_eq!(report.restored, vec!["count"]);
    }

    #[test]
    fn unnamed_colors_snap_to_palette() {
        assert_eq!(
            value_to_literal(&Value::Color(Color::new(172, 208, 238))).expect("persistable"),
            "colors.light_blue"
        );
    }
}
