//! System-state typing — the paper's Figure 11 (`⊢ (C, D, S, P, Q)`).
//!
//! Used by the preservation property tests: a well-typed system state
//! stays well-typed under every `→g` transition. Beyond the paper's
//! rules, [`check_system`] also verifies the §4.2 *no-stale-code*
//! invariant: every closure reachable from the state carries the current
//! code version.

use crate::boxtree::{BoxItem, BoxNode};
use crate::event::Event;
use crate::system::System;
use crate::typeck::check_program;
use crate::types::{Effect, Type};
use crate::value::Value;
use std::fmt;

/// A violation of state well-typedness.
#[derive(Debug, Clone, PartialEq)]
pub struct StateTypeError {
    /// Which component was ill-typed (`D`, `S`, `P`, `Q`, or `C`).
    pub component: &'static str,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for StateTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.component, self.message)
    }
}

impl std::error::Error for StateTypeError {}

/// Check `⊢ (C, D, S, P, Q)` (rule T-SYS and its components), plus the
/// no-stale-code invariant. Returns all violations found.
pub fn check_system(system: &System) -> Vec<StateTypeError> {
    let mut errors = Vec::new();
    let program = system.program();

    // C ⊢ C (and the start-page requirement of T-SYS).
    let diags = check_program(program);
    if diags.has_errors() {
        errors.push(StateTypeError {
            component: "C",
            message: format!("program is ill-typed: {diags}"),
        });
    }

    // C ⊢ S: every store entry is for a declared global and has its
    // declared type (T-S-ENTRY).
    for (name, value) in system.store().iter() {
        match program.global(name) {
            None => errors.push(StateTypeError {
                component: "S",
                message: format!("store entry `{name}` has no declaration"),
            }),
            Some(def) => {
                if !value.has_type(&def.ty) {
                    errors.push(StateTypeError {
                        component: "S",
                        message: format!("store entry `{name}` = {value} is not a `{}`", def.ty),
                    });
                }
            }
        }
    }

    // C ⊢ P: every stack entry names a page and its argument has the
    // page's argument type (T-R-ENTRY).
    for (page_name, arg) in system.page_stack() {
        match program.page(page_name) {
            None => errors.push(StateTypeError {
                component: "P",
                message: format!("stack entry `{page_name}` has no page definition"),
            }),
            Some(def) => {
                if !arg.has_type(&def.arg_type()) {
                    errors.push(StateTypeError {
                        component: "P",
                        message: format!(
                            "argument of stacked page `{page_name}` is not a `{}`",
                            def.arg_type()
                        ),
                    });
                }
            }
        }
    }

    // C ⊢ Q: exec thunks are state handlers, push arguments type
    // (T-Q-EXEC, T-Q-PUSH, T-Q-POP).
    for event in system.queue().iter() {
        match event {
            Event::Exec(thunk, args) => {
                let handler_ty = Type::func(
                    args.iter()
                        .map(|a| {
                            // Edit handlers take the edited string.
                            match a {
                                Value::Str(_) => Type::String,
                                other => infer_value_type(other),
                            }
                        })
                        .collect(),
                    Effect::State,
                    Type::unit(),
                );
                if !thunk.has_type(&handler_ty) {
                    errors.push(StateTypeError {
                        component: "Q",
                        message: format!("[exec ·] payload is not a `{handler_ty}`"),
                    });
                }
            }
            Event::Push(page_name, arg) => match program.page(page_name) {
                None => errors.push(StateTypeError {
                    component: "Q",
                    message: format!("[push {page_name} ·] names an unknown page"),
                }),
                Some(def) => {
                    if !arg.has_type(&def.arg_type()) {
                        errors.push(StateTypeError {
                            component: "Q",
                            message: format!(
                                "[push {page_name} ·] argument is not a `{}`",
                                def.arg_type()
                            ),
                        });
                    }
                }
            },
            Event::Pop => {}
        }
    }

    // C ⊢ D: attribute values have their Γa types (T-B-ATTR); the
    // `boxed` source ids refer to real statements. A stale last-good
    // tree is checked too: fault containment clears it on UPDATE, so it
    // is always a tree of the *current* code.
    if let Some(root) = system.display().content() {
        check_box(program, root, &mut errors);
    }

    // W (extension): every `remember` slot refers to a real statement
    // and holds a function-free value — view state can hide no code.
    for (key, value) in system.widgets().iter() {
        if program.remember_span(key.id).is_none() {
            errors.push(StateTypeError {
                component: "W",
                message: format!("slot {key} refers to no `remember` statement"),
            });
        }
        if matches!(
            value,
            Value::Closure(_) | Value::Prim(_) | Value::WidgetRef(_)
        ) {
            errors.push(StateTypeError {
                component: "W",
                message: format!("slot {key} holds non-data value {value}"),
            });
        }
    }

    // No-stale-code invariant (§4.2): every reachable closure was
    // created under the current code version.
    let version = system.version();
    let mut check_value = |where_: &'static str, v: &Value| {
        visit_closures(v, &mut |c| {
            if c.version != version {
                errors.push(StateTypeError {
                    component: where_,
                    message: format!(
                        "stale closure from code version {} (current is {version})",
                        c.version
                    ),
                });
            }
        });
    };
    for (_, v) in system.store().iter() {
        check_value("S", v);
    }
    for (_, arg) in system.page_stack() {
        check_value("P", arg);
    }
    for event in system.queue().iter() {
        match event {
            Event::Exec(thunk, args) => {
                check_value("Q", thunk);
                for a in args {
                    check_value("Q", a);
                }
            }
            Event::Push(_, arg) => check_value("Q", arg),
            Event::Pop => {}
        }
    }
    if let Some(root) = system.display().content() {
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            for item in &node.items {
                match item {
                    BoxItem::Leaf(v, _) | BoxItem::Attr(_, v, _) => check_value("D", v),
                    BoxItem::Child(b) => stack.push(b),
                }
            }
        }
    }

    errors
}

fn check_box(program: &crate::program::Program, node: &BoxNode, errors: &mut Vec<StateTypeError>) {
    if let Some(id) = node.source {
        if program.box_span(id).is_none() {
            errors.push(StateTypeError {
                component: "D",
                message: format!("box refers to unknown source statement {id:?}"),
            });
        }
    }
    for item in &node.items {
        match item {
            BoxItem::Attr(attr, value, _) => {
                if !value.has_type(&attr.ty()) {
                    errors.push(StateTypeError {
                        component: "D",
                        message: format!("attribute `{attr}` = {value} is not a `{}`", attr.ty()),
                    });
                }
            }
            BoxItem::Leaf(..) => {}
            BoxItem::Child(child) => check_box(program, child, errors),
        }
    }
}

/// Best-effort structural type of a value (for exec-argument typing).
fn infer_value_type(v: &Value) -> Type {
    match v {
        Value::Number(_) => Type::Number,
        Value::Str(_) => Type::String,
        Value::Bool(_) => Type::Bool,
        Value::Color(_) => Type::Color,
        Value::Tuple(vs) => Type::tuple(vs.iter().map(infer_value_type).collect()),
        Value::List(vs) => match vs.first() {
            Some(first) => Type::list(infer_value_type(first)),
            None => Type::list(Type::unit()),
        },
        Value::Closure(c) => Type::func(
            c.params.iter().map(|p| p.ty.clone()).collect(),
            c.effect,
            Type::unit(),
        ),
        Value::Prim(p) => p
            .sig()
            .map(|s| Type::Fn(std::sync::Arc::new(s)))
            .unwrap_or_else(Type::unit),
        Value::WidgetRef(_) => Type::unit(),
    }
}

/// Visit every closure reachable inside a value.
fn visit_closures(v: &Value, visit: &mut dyn FnMut(&crate::value::Closure)) {
    match v {
        Value::Closure(c) => {
            visit(c);
            for (_, captured) in c.env.iter() {
                visit_closures(captured, visit);
            }
        }
        Value::Tuple(vs) | Value::List(vs) => {
            for inner in vs.iter() {
                visit_closures(inner, visit);
            }
        }
        _ => {}
    }
}

/// Check a system state and panic with a readable report on violation —
/// an assertion helper for tests.
///
/// # Panics
///
/// Panics if [`check_system`] reports any violation.
pub fn assert_well_typed(system: &System) {
    let errors = check_system(system);
    assert!(
        errors.is_empty(),
        "system state is ill-typed:\n{}",
        errors
            .iter()
            .map(|e| format!("  {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::system::System;

    const APP: &str = "
        global count : number = 0
        page start() {
            init { count := count + 1; }
            render {
                boxed {
                    post count;
                    on tap { push detail(count); }
                }
            }
        }
        page detail(n: number) {
            render { boxed { post n; on tap { pop; } } }
        }";

    #[test]
    fn preservation_along_a_session() {
        let mut sys = System::new(compile(APP).expect("compiles"));
        assert_well_typed(&sys);
        // Step through the whole startup cascade, checking at each state.
        loop {
            let kind = sys.step().expect("steps");
            assert_well_typed(&sys);
            if kind == crate::system::StepKind::Stable {
                break;
            }
        }
        sys.tap(&[0]).expect("tap");
        assert_well_typed(&sys);
        sys.run_to_stable().expect("navigates");
        assert_well_typed(&sys);
        sys.back();
        assert_well_typed(&sys);
        sys.run_to_stable().expect("returns");
        assert_well_typed(&sys);
    }

    #[test]
    fn update_leaves_no_stale_code() {
        let mut sys = System::new(compile(APP).expect("compiles"));
        sys.run_to_stable().expect("starts");
        let report = sys
            .update(compile(APP).expect("compiles again"))
            .expect("update applies");
        assert!(!report.dropped_anything());
        // Before the re-render the display is ⊥ and the queue empty, so
        // no closures from version 0 can remain anywhere.
        assert_well_typed(&sys);
        sys.run_to_stable().expect("re-renders");
        assert_well_typed(&sys);
    }

    #[test]
    fn detects_ill_typed_store() {
        let mut sys = System::new(compile(APP).expect("compiles"));
        sys.run_to_stable().expect("starts");
        // Corrupt the model through the test-only escape hatch.
        let corrupted = {
            let mut clone = sys.clone();
            clone
                .debug_store_mut()
                .set("count", crate::value::Value::str("oops"));
            clone
        };
        let errors = check_system(&corrupted);
        assert!(errors.iter().any(|e| e.component == "S"));
    }
}
