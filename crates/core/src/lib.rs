//! # alive-core
//!
//! The core of *its-alive*: a Rust reproduction of the formal model of
//! *"It's Alive! Continuous Feedback in UI Programming"* (PLDI 2013).
//!
//! The crate implements, in direct correspondence with the paper:
//!
//! * Figure 6 — types, values, expressions ([`types`], [`value`], [`expr`]);
//! * Figure 7 — system states `(C, D, S, P, Q)` ([`program`], [`boxtree`],
//!   [`store`], [`event`], [`system`]);
//! * Figure 8 — the three-mode evaluation relations `→p`, `→s`, `→r`
//!   ([`smallstep`] faithfully by substitution, [`bigstep`] efficiently
//!   with environments);
//! * Figure 9 — the global transitions STARTUP, TAP, BACK, THUNK, PUSH,
//!   POP, RENDER, and UPDATE ([`system`]);
//! * Figure 10/11 — the type and effect system and state typing
//!   ([`typeck`], [`state_typing`]);
//! * Figure 12 — the store and page-stack fix-up relations applied on a
//!   code update ([`fixup`]).
//!
//! # Example
//!
//! ```
//! use alive_core::compile;
//! use alive_core::system::System;
//!
//! let program = compile(r#"
//!     global count : number = 0
//!     page start() {
//!         init { count := count + 1; }
//!         render { boxed { post "count is " ++ count; } }
//!     }
//! "#).expect("program compiles");
//! let mut system = System::new(program);
//! system.run_to_stable().expect("reaches a stable state");
//! let display = system.display().content().expect("display is rendered");
//! assert_eq!(display.box_count(), 2);
//! ```

#![warn(missing_docs)]
// Fault containment discipline: non-test code must never abort the
// process — failures are typed (`RuntimeError`, `Fault`, `PersistError`)
// and contained. Tests may assert freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod attr;
pub mod bigstep;
pub mod boxtree;
pub mod error;
pub mod event;
pub mod expr;
pub mod fault;
pub mod fixup;
pub mod incremental;
pub mod lower;
pub mod metrics;
pub mod persist;
pub mod pretty;
pub mod prim;
pub mod program;
pub mod provenance;
pub mod smallstep;
pub mod state_typing;
pub mod store;
pub mod system;
pub mod typeck;
pub mod types;
pub mod value;
pub mod vm;
pub mod widget;

pub use attr::Attr;
pub use boxtree::{BoxItem, BoxNode, Display};
pub use error::RuntimeError;
pub use event::{Event, EventQueue};
pub use expr::{BoxSourceId, Expr, ExprKind};
pub use fault::{Fault, FaultInjector, FaultKind, TransitionKind};
pub use incremental::IncrementalCompiler;
pub use metrics::SystemMetrics;
pub use prim::Prim;
pub use program::{Program, START_PAGE};
pub use provenance::Provenance;
pub use store::Store;
pub use types::{Effect, Name, Type};
pub use value::{Color, Value};
pub use widget::{WidgetKey, WidgetStore};

// Hostability is a compile-time property: the whole object graph behind
// a running system (values, closures, box trees, compiled programs) is
// `Arc`-shared and interior-mutability-free, so sessions can migrate
// across host worker threads. These assertions fail to compile the
// moment an `Rc`/`RefCell` sneaks back in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<system::System>();
    assert_send_sync::<boxtree::Display>();
    assert_send_sync::<program::Program>();
    assert_send_sync::<value::Value>();
    assert_send_sync::<boxtree::BoxNode>();
    assert_send_sync::<fault::Fault>();
};

use alive_syntax::Diagnostics;

/// Compile surface source text into a checked core [`Program`]:
/// parse → lower → type check.
///
/// # Errors
///
/// Returns all diagnostics if any stage reports an error. The rejected
/// program is never partially accepted — a live session keeps running
/// its previous code instead (paper §3).
pub fn compile(src: &str) -> Result<Program, Diagnostics> {
    let parsed = alive_syntax::parse_program(src);
    if parsed.diagnostics.has_errors() {
        return Err(parsed.diagnostics);
    }
    let mut diags = parsed.diagnostics;
    let lowered = lower::lower_program(&parsed.program);
    diags.extend(lowered.diagnostics.clone());
    if diags.has_errors() {
        return Err(diags);
    }
    diags.extend(typeck::check_program(&lowered.program));
    if diags.has_errors() {
        return Err(diags);
    }
    Ok(lowered.program)
}
