//! Types and effects — the paper's Figure 6 type grammar.
//!
//! `τ ::= number | string | (τ1, ..., τn) | τ →µ τ` extended with the
//! conservative additions `bool`, `color`, and `list τ` that the paper's
//! own example programs rely on (booleans for conditionals, colors for
//! `set background`, collections for the listings).

use std::fmt;
use std::sync::Arc;

/// An interned-ish name; cheap to clone and hash.
pub type Name = Arc<str>;

/// The paper's three effects: `p` (pure), `s` (state), `r` (render).
///
/// Effects form the partial order `p ⊑ s`, `p ⊑ r`, with `s` and `r`
/// incomparable (rule T-SUB: a pure function may be used at any effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effect {
    /// Side-effect free; may read code and globals.
    #[default]
    Pure,
    /// May write globals and enqueue page navigation.
    State,
    /// May create boxes, post content, and set box attributes.
    Render,
}

impl Effect {
    /// The subeffect relation `self ⊑ other`.
    pub fn subeffect_of(self, other: Effect) -> bool {
        self == Effect::Pure || self == other
    }

    /// Short name as used in the paper (`p`, `s`, `r`).
    pub fn letter(self) -> char {
        match self {
            Effect::Pure => 'p',
            Effect::State => 's',
            Effect::Render => 'r',
        }
    }

    /// Keyword spelling (`pure`, `state`, `render`).
    pub fn keyword(self) -> &'static str {
        match self {
            Effect::Pure => "pure",
            Effect::State => "state",
            Effect::Render => "render",
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A type of the core language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// IEEE-754 double, the paper's `number`.
    Number,
    /// Immutable text, the paper's `string`.
    String,
    /// Boolean (conservative extension).
    Bool,
    /// RGB color (conservative extension, used by box attributes).
    Color,
    /// Tuple `(τ1, ..., τn)`; the empty tuple is the unit type.
    Tuple(Arc<[Type]>),
    /// Immutable list (conservative extension).
    List(Arc<Type>),
    /// Function `(τ1, ..., τn) →µ τ`.
    Fn(Arc<FnType>),
}

/// Signature of a function type: parameters, latent effect, return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnType {
    /// Parameter types.
    pub params: Vec<Type>,
    /// Latent effect, discharged at the call site.
    pub effect: Effect,
    /// Return type.
    pub ret: Type,
}

impl Type {
    /// The unit type `()` (the empty tuple).
    pub fn unit() -> Type {
        Type::Tuple(Arc::from(Vec::new()))
    }

    /// A tuple type from component types.
    pub fn tuple(elems: Vec<Type>) -> Type {
        Type::Tuple(Arc::from(elems))
    }

    /// A list type.
    pub fn list(elem: Type) -> Type {
        Type::List(Arc::new(elem))
    }

    /// A function type.
    pub fn func(params: Vec<Type>, effect: Effect, ret: Type) -> Type {
        Type::Fn(Arc::new(FnType {
            params,
            effect,
            ret,
        }))
    }

    /// Whether this is the unit type.
    pub fn is_unit(&self) -> bool {
        matches!(self, Type::Tuple(elems) if elems.is_empty())
    }

    /// The paper's "→-free" check (Fig. 11, T-C-GLOBAL / T-C-PAGE):
    /// globals and page arguments must not contain function types, which
    /// is what guarantees that no stale code survives an UPDATE (§4.2).
    pub fn is_arrow_free(&self) -> bool {
        match self {
            Type::Number | Type::String | Type::Bool | Type::Color => true,
            Type::Tuple(elems) => elems.iter().all(Type::is_arrow_free),
            Type::List(elem) => elem.is_arrow_free(),
            Type::Fn(_) => false,
        }
    }

    /// Structural subtyping with the paper's T-SUB generalized pointwise:
    /// a function type is a subtype if parameters are supertypes
    /// (contravariant), the result is a subtype (covariant), and the
    /// latent effect is a subeffect (`p ⊑ µ`).
    pub fn is_subtype_of(&self, expected: &Type) -> bool {
        match (self, expected) {
            (Type::Number, Type::Number)
            | (Type::String, Type::String)
            | (Type::Bool, Type::Bool)
            | (Type::Color, Type::Color) => true,
            (Type::Tuple(a), Type::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.is_subtype_of(y))
            }
            (Type::List(a), Type::List(b)) => a.is_subtype_of(b),
            (Type::Fn(a), Type::Fn(b)) => {
                a.params.len() == b.params.len()
                    && a.effect.subeffect_of(b.effect)
                    && b.params
                        .iter()
                        .zip(a.params.iter())
                        .all(|(x, y)| x.is_subtype_of(y))
                    && a.ret.is_subtype_of(&b.ret)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Number => f.write_str("number"),
            Type::String => f.write_str("string"),
            Type::Bool => f.write_str("bool"),
            Type::Color => f.write_str("color"),
            Type::Tuple(elems) => {
                f.write_str("(")?;
                for (i, t) in elems.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")
            }
            Type::List(elem) => write!(f, "list {elem}"),
            Type::Fn(sig) => {
                f.write_str("fn(")?;
                for (i, t) in sig.params.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")?;
                if sig.effect != Effect::Pure {
                    write!(f, " {}", sig.effect)?;
                }
                write!(f, " -> {}", sig.ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_partial_order() {
        use Effect::*;
        assert!(Pure.subeffect_of(Pure));
        assert!(Pure.subeffect_of(State));
        assert!(Pure.subeffect_of(Render));
        assert!(State.subeffect_of(State));
        assert!(!State.subeffect_of(Render));
        assert!(!Render.subeffect_of(State));
        assert!(!State.subeffect_of(Pure));
        assert!(!Render.subeffect_of(Pure));
    }

    #[test]
    fn arrow_free() {
        assert!(Type::Number.is_arrow_free());
        assert!(Type::tuple(vec![Type::String, Type::list(Type::Number)]).is_arrow_free());
        let handler = Type::func(vec![], Effect::State, Type::unit());
        assert!(!handler.is_arrow_free());
        assert!(!Type::tuple(vec![Type::Number, handler.clone()]).is_arrow_free());
        assert!(!Type::list(handler).is_arrow_free());
    }

    #[test]
    fn subtyping_reflexive_on_base() {
        for t in [
            Type::Number,
            Type::String,
            Type::Bool,
            Type::Color,
            Type::unit(),
        ] {
            assert!(t.is_subtype_of(&t));
        }
        assert!(!Type::Number.is_subtype_of(&Type::String));
    }

    #[test]
    fn t_sub_on_function_effects() {
        let pure_fn = Type::func(vec![Type::Number], Effect::Pure, Type::Number);
        let state_fn = Type::func(vec![Type::Number], Effect::State, Type::Number);
        let render_fn = Type::func(vec![Type::Number], Effect::Render, Type::Number);
        // Pure functions can be used anywhere (T-SUB).
        assert!(pure_fn.is_subtype_of(&state_fn));
        assert!(pure_fn.is_subtype_of(&render_fn));
        // But not the other way around, and s/r are incomparable.
        assert!(!state_fn.is_subtype_of(&pure_fn));
        assert!(!state_fn.is_subtype_of(&render_fn));
        assert!(!render_fn.is_subtype_of(&state_fn));
    }

    #[test]
    fn function_subtyping_is_contravariant_in_params() {
        // fn(fn() state -> ()) pure -> () vs fn(fn() pure -> ()) pure -> ()
        let takes_state = Type::func(
            vec![Type::func(vec![], Effect::State, Type::unit())],
            Effect::Pure,
            Type::unit(),
        );
        let takes_pure = Type::func(
            vec![Type::func(vec![], Effect::Pure, Type::unit())],
            Effect::Pure,
            Type::unit(),
        );
        // A function accepting state-handlers also accepts pure handlers.
        assert!(takes_state.is_subtype_of(&takes_pure));
        assert!(!takes_pure.is_subtype_of(&takes_state));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::unit().to_string(), "()");
        assert_eq!(
            Type::func(vec![Type::Number], Effect::Render, Type::unit()).to_string(),
            "fn(number) render -> ()"
        );
        assert_eq!(Type::list(Type::String).to_string(), "list string");
    }
}
