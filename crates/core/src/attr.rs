//! Box attributes and the attribute environment Γa (paper §4.3).
//!
//! Attributes are set by `box.a := e` inside render code. The attribute
//! environment assigns each attribute its type, e.g. `ontap : () →s ()`
//! and `margin : number`.

use crate::error::RuntimeError;
use crate::types::{Effect, FnType, Type};
use std::fmt;
use std::sync::Arc;

/// The catalog of box attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attr {
    /// Outer spacing, in cells.
    Margin,
    /// Inner spacing, in cells.
    Padding,
    /// Font size multiplier (1 = normal); affects measured text size.
    FontSize,
    /// Fixed width in cells (content-sized if unset).
    Width,
    /// Fixed height in cells (content-sized if unset).
    Height,
    /// Background fill color.
    Background,
    /// Text color.
    Foreground,
    /// Lay out children horizontally instead of the vertical default.
    Horizontal,
    /// Border thickness (0 or 1 in the ASCII backend).
    Border,
    /// Tap handler: `() →s ()`.
    OnTap,
    /// Edit handler: `(string) →s ()`, fired when the user edits the
    /// box's text content.
    OnEdit,
}

impl Attr {
    /// All attributes, for iteration in tests and tooling.
    pub const ALL: [Attr; 11] = [
        Attr::Margin,
        Attr::Padding,
        Attr::FontSize,
        Attr::Width,
        Attr::Height,
        Attr::Background,
        Attr::Foreground,
        Attr::Horizontal,
        Attr::Border,
        Attr::OnTap,
        Attr::OnEdit,
    ];

    /// The attribute environment Γa: the type of each attribute.
    pub fn ty(self) -> Type {
        match self {
            Attr::Margin
            | Attr::Padding
            | Attr::FontSize
            | Attr::Width
            | Attr::Height
            | Attr::Border => Type::Number,
            Attr::Background | Attr::Foreground => Type::Color,
            Attr::Horizontal => Type::Bool,
            Attr::OnTap => Type::func(vec![], Effect::State, Type::unit()),
            Attr::OnEdit => Type::func(vec![Type::String], Effect::State, Type::unit()),
        }
    }

    /// Whether the attribute holds an event handler (a closure).
    pub fn is_handler(self) -> bool {
        matches!(self, Attr::OnTap | Attr::OnEdit)
    }

    /// The function signature of a handler attribute (`ontap : () →s ()`,
    /// `onedit : (string) →s ()`).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NotAFunction`] for non-handler attributes — a
    /// typed error (unreachable after type check) instead of a process
    /// abort.
    pub fn handler_sig(self) -> Result<Arc<FnType>, RuntimeError> {
        match self.ty() {
            Type::Fn(sig) => Ok(sig),
            other => Err(RuntimeError::NotAFunction(format!(
                "attribute `{self}` of type `{other}`"
            ))),
        }
    }

    /// Source-level spelling used in `box.a := e`.
    pub fn name(self) -> &'static str {
        match self {
            Attr::Margin => "margin",
            Attr::Padding => "padding",
            Attr::FontSize => "font_size",
            Attr::Width => "width",
            Attr::Height => "height",
            Attr::Background => "background",
            Attr::Foreground => "foreground",
            Attr::Horizontal => "horizontal",
            Attr::Border => "border",
            Attr::OnTap => "ontap",
            Attr::OnEdit => "onedit",
        }
    }

    /// Look up an attribute by its source spelling. Also accepts the
    /// event names used by `on <event> { ... }` sugar (`tap`, `edit`,
    /// `edited`).
    pub fn from_name(name: &str) -> Option<Attr> {
        Some(match name {
            "margin" => Attr::Margin,
            "padding" => Attr::Padding,
            "font_size" => Attr::FontSize,
            "width" => Attr::Width,
            "height" => Attr::Height,
            "background" => Attr::Background,
            "foreground" => Attr::Foreground,
            "horizontal" => Attr::Horizontal,
            "border" => Attr::Border,
            "ontap" | "tap" | "tapped" => Attr::OnTap,
            "onedit" | "edit" | "edited" => Attr::OnEdit,
            _ => return None,
        })
    }

    /// The number of handler parameters, for `on` sugar arity checking.
    pub fn handler_arity(self) -> Option<usize> {
        match self {
            Attr::OnTap => Some(0),
            Attr::OnEdit => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for attr in Attr::ALL {
            assert_eq!(Attr::from_name(attr.name()), Some(attr));
        }
        assert_eq!(Attr::from_name("tap"), Some(Attr::OnTap));
        assert_eq!(Attr::from_name("edited"), Some(Attr::OnEdit));
        assert_eq!(Attr::from_name("bogus"), None);
    }

    #[test]
    fn handler_types_are_stateful() {
        // `handler_sig` reports non-function attributes as a typed
        // error instead of aborting the process.
        let sig = Attr::OnTap.handler_sig().expect("ontap is a handler");
        assert_eq!(sig.effect, Effect::State);
        assert!(sig.params.is_empty());
        assert!(sig.ret.is_unit());
        assert!(Attr::OnTap.is_handler());
        assert!(!Attr::Margin.is_handler());
        let err = Attr::Margin.handler_sig().expect_err("margin is data");
        assert!(matches!(err, RuntimeError::NotAFunction(_)));
    }

    #[test]
    fn handler_arity() {
        assert_eq!(Attr::OnTap.handler_arity(), Some(0));
        assert_eq!(Attr::OnEdit.handler_arity(), Some(1));
        assert_eq!(Attr::Margin.handler_arity(), None);
    }
}
