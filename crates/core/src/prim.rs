//! Primitive functions — the standard library of the language.
//!
//! Primitives are grouped in namespaces (`math`, `str`, `fmt`, `list`,
//! `web`) and referenced as `math.floor(x)`. Most are pure and
//! monomorphic; the `list` namespace is polymorphic (typed specially in
//! the checker) and the `web` namespace is the *simulated substrate* for
//! the paper's web requests: it produces deterministic synthetic listings
//! and charges simulated latency to the cost model, so the restart
//! baseline pays the re-download that §2 step 5 describes.

use crate::types::{Effect, FnType, Type};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Simulated latency of one web request, in milliseconds (paper §2:
/// "waiting for the list to download"). Plus a per-item transfer cost.
pub const WEB_REQUEST_BASE_MS: f64 = 350.0;
/// Simulated per-item transfer cost of a web request, in milliseconds.
pub const WEB_REQUEST_PER_ITEM_MS: f64 = 1.5;

/// Context threaded to primitive applications: the deterministic cost
/// model for simulated external effects.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrimCtx {
    /// Simulated wall-clock milliseconds charged by web primitives.
    pub simulated_ms: f64,
    /// Number of simulated web requests issued.
    pub web_requests: u64,
}

/// Error applying a primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimError {
    /// Wrong argument count or value shape (unreachable after typeck).
    BadArgs(Prim),
    /// List index out of range.
    IndexOutOfRange {
        /// The primitive that failed.
        prim: Prim,
        /// The requested index.
        index: f64,
        /// The list length.
        len: usize,
    },
    /// The primitive was made to fail by a
    /// [`crate::fault::FaultInjector`] (deterministic fault injection).
    Injected(Prim),
}

impl fmt::Display for PrimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimError::BadArgs(p) => write!(f, "bad arguments to `{p}`"),
            PrimError::IndexOutOfRange { prim, index, len } => {
                write!(
                    f,
                    "index {index} out of range for list of length {len} in `{prim}`"
                )
            }
            PrimError::Injected(p) => write!(f, "injected fault in `{p}`"),
        }
    }
}

impl std::error::Error for PrimError {}

/// The catalog of primitive functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prim {
    // math
    /// `math.floor(x)`
    MathFloor,
    /// `math.ceil(x)`
    MathCeil,
    /// `math.round(x)`
    MathRound,
    /// `math.abs(x)`
    MathAbs,
    /// `math.sqrt(x)`
    MathSqrt,
    /// `math.pow(base, exp)`
    MathPow,
    /// `math.min(a, b)`
    MathMin,
    /// `math.max(a, b)`
    MathMax,
    /// `math.mod(a, b)` — the paper's `math→mod`.
    MathMod,
    // str
    /// `str.len(s)` — the paper's `s→count`.
    StrLen,
    /// `str.substr(s, start, len)`
    StrSubstr,
    /// `str.contains(s, sub)`
    StrContains,
    /// `str.index_of(s, sub)` — `-1` if absent.
    StrIndexOf,
    /// `str.upper(s)`
    StrUpper,
    /// `str.lower(s)`
    StrLower,
    /// `str.trim(s)`
    StrTrim,
    /// `str.repeat(s, n)`
    StrRepeat,
    /// `str.to_number(s)` — parse a number; `0` if unparseable.
    StrToNumber,
    // fmt
    /// `fmt.fixed(x, digits)` — fixed-point formatting.
    FmtFixed,
    // list (polymorphic; typed specially in the checker)
    /// `list.length(xs)`
    ListLength,
    /// `list.nth(xs, i)` — 0-based.
    ListNth,
    /// `list.append(xs, x)`
    ListAppend,
    /// `list.set(xs, i, x)` — a copy of `xs` with index `i` replaced.
    ListSet,
    /// `list.concat(xs, ys)`
    ListConcat,
    /// `list.reverse(xs)`
    ListReverse,
    /// `list.is_empty(xs)`
    ListIsEmpty,
    /// `list.range(lo, hi)` — numbers `lo, lo+1, ..., hi-1`.
    ListRange,
    // web (simulated substrate; state effect)
    /// `web.listings(n)` — deterministic synthetic real-estate listings
    /// `(address, price)`, charging simulated download latency.
    WebListings,
    /// `web.delay(ms)` — charge extra simulated latency (for modelling
    /// slow services in benchmarks).
    WebDelay,
}

impl Prim {
    /// All primitives, for iteration in tests and tooling.
    pub const ALL: [Prim; 29] = [
        Prim::MathFloor,
        Prim::MathCeil,
        Prim::MathRound,
        Prim::MathAbs,
        Prim::MathSqrt,
        Prim::MathPow,
        Prim::MathMin,
        Prim::MathMax,
        Prim::MathMod,
        Prim::StrLen,
        Prim::StrSubstr,
        Prim::StrContains,
        Prim::StrIndexOf,
        Prim::StrUpper,
        Prim::StrLower,
        Prim::StrTrim,
        Prim::StrRepeat,
        Prim::StrToNumber,
        Prim::FmtFixed,
        Prim::ListLength,
        Prim::ListNth,
        Prim::ListAppend,
        Prim::ListSet,
        Prim::ListConcat,
        Prim::ListReverse,
        Prim::ListIsEmpty,
        Prim::ListRange,
        Prim::WebListings,
        Prim::WebDelay,
    ];

    /// The `(namespace, name)` the primitive is spelled as.
    pub fn path(self) -> (&'static str, &'static str) {
        use Prim::*;
        match self {
            MathFloor => ("math", "floor"),
            MathCeil => ("math", "ceil"),
            MathRound => ("math", "round"),
            MathAbs => ("math", "abs"),
            MathSqrt => ("math", "sqrt"),
            MathPow => ("math", "pow"),
            MathMin => ("math", "min"),
            MathMax => ("math", "max"),
            MathMod => ("math", "mod"),
            StrLen => ("str", "len"),
            StrSubstr => ("str", "substr"),
            StrContains => ("str", "contains"),
            StrIndexOf => ("str", "index_of"),
            StrUpper => ("str", "upper"),
            StrLower => ("str", "lower"),
            StrTrim => ("str", "trim"),
            StrRepeat => ("str", "repeat"),
            StrToNumber => ("str", "to_number"),
            FmtFixed => ("fmt", "fixed"),
            ListLength => ("list", "length"),
            ListNth => ("list", "nth"),
            ListAppend => ("list", "append"),
            ListSet => ("list", "set"),
            ListConcat => ("list", "concat"),
            ListReverse => ("list", "reverse"),
            ListIsEmpty => ("list", "is_empty"),
            ListRange => ("list", "range"),
            WebListings => ("web", "listings"),
            WebDelay => ("web", "delay"),
        }
    }

    /// Look up a primitive by namespace and name.
    pub fn from_path(ns: &str, name: &str) -> Option<Prim> {
        Prim::ALL.iter().copied().find(|p| p.path() == (ns, name))
    }

    /// The latent effect of the primitive.
    pub fn effect(self) -> Effect {
        match self {
            Prim::WebListings | Prim::WebDelay => Effect::State,
            _ => Effect::Pure,
        }
    }

    /// The monomorphic signature, or `None` for the polymorphic `list`
    /// primitives (which the type checker handles structurally).
    pub fn sig(self) -> Option<FnType> {
        use Prim::*;
        use Type::*;
        let f = |params: Vec<Type>, ret: Type| {
            Some(FnType {
                params,
                effect: self.effect(),
                ret,
            })
        };
        match self {
            MathFloor | MathCeil | MathRound | MathAbs | MathSqrt => f(vec![Number], Number),
            MathPow | MathMin | MathMax | MathMod => f(vec![Number, Number], Number),
            StrLen => f(vec![String], Number),
            StrSubstr => f(vec![String, Number, Number], String),
            StrContains => f(vec![String, String], Bool),
            StrIndexOf => f(vec![String, String], Number),
            StrUpper | StrLower | StrTrim => f(vec![String], String),
            StrRepeat => f(vec![String, Number], String),
            StrToNumber => f(vec![String], Number),
            FmtFixed => f(vec![Number, Number], String),
            ListRange => f(vec![Number, Number], Type::list(Number)),
            WebListings => f(vec![Number], Type::list(Type::tuple(vec![String, Number]))),
            WebDelay => f(vec![Number], Type::unit()),
            ListLength | ListNth | ListAppend | ListSet | ListConcat | ListReverse
            | ListIsEmpty => None,
        }
    }

    /// Number of arguments the primitive takes.
    pub fn arity(self) -> usize {
        use Prim::*;
        match self {
            MathFloor | MathCeil | MathRound | MathAbs | MathSqrt | StrLen | StrUpper
            | StrLower | StrTrim | StrToNumber | ListLength | ListReverse | ListIsEmpty
            | WebListings | WebDelay => 1,
            MathPow | MathMin | MathMax | MathMod | StrContains | StrIndexOf | StrRepeat
            | FmtFixed | ListNth | ListAppend | ListConcat | ListRange => 2,
            StrSubstr | ListSet => 3,
        }
    }

    /// Apply the primitive to argument values.
    ///
    /// # Errors
    ///
    /// [`PrimError::BadArgs`] on arity or shape mismatch (unreachable for
    /// type-checked programs), [`PrimError::IndexOutOfRange`] for
    /// `list.nth` out of range.
    pub fn apply(self, args: &[Value], ctx: &mut PrimCtx) -> Result<Value, PrimError> {
        use Prim::*;
        let bad = || PrimError::BadArgs(self);
        let num = |v: &Value| match v {
            Value::Number(n) => Ok(*n),
            _ => Err(bad()),
        };
        let string = |v: &Value| match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(bad()),
        };
        let listv = |v: &Value| match v {
            Value::List(xs) => Ok(xs.clone()),
            _ => Err(bad()),
        };
        if args.len() != self.arity() {
            return Err(bad());
        }
        Ok(match self {
            MathFloor => Value::Number(num(&args[0])?.floor()),
            MathCeil => Value::Number(num(&args[0])?.ceil()),
            MathRound => Value::Number(num(&args[0])?.round()),
            MathAbs => Value::Number(num(&args[0])?.abs()),
            MathSqrt => Value::Number(num(&args[0])?.sqrt()),
            MathPow => Value::Number(num(&args[0])?.powf(num(&args[1])?)),
            MathMin => Value::Number(num(&args[0])?.min(num(&args[1])?)),
            MathMax => Value::Number(num(&args[0])?.max(num(&args[1])?)),
            MathMod => Value::Number(num(&args[0])?.rem_euclid(num(&args[1])?)),
            StrLen => Value::Number(string(&args[0])?.chars().count() as f64),
            StrSubstr => {
                let s = string(&args[0])?;
                let start = num(&args[1])?.max(0.0) as usize;
                let len = num(&args[2])?.max(0.0) as usize;
                let taken: String = s.chars().skip(start).take(len).collect();
                Value::str(taken)
            }
            StrContains => Value::Bool(string(&args[0])?.contains(&*string(&args[1])?)),
            StrIndexOf => {
                let s = string(&args[0])?;
                let sub = string(&args[1])?;
                match s.find(&*sub) {
                    // Report a character index, consistent with str.len.
                    Some(byte_idx) => Value::Number(s[..byte_idx].chars().count() as f64),
                    None => Value::Number(-1.0),
                }
            }
            StrUpper => Value::str(string(&args[0])?.to_uppercase()),
            StrLower => Value::str(string(&args[0])?.to_lowercase()),
            StrTrim => Value::str(string(&args[0])?.trim()),
            StrRepeat => {
                let s = string(&args[0])?;
                let n = num(&args[1])?.max(0.0) as usize;
                Value::str(s.repeat(n))
            }
            StrToNumber => {
                let s = string(&args[0])?;
                Value::Number(s.trim().parse::<f64>().unwrap_or(0.0))
            }
            FmtFixed => {
                let x = num(&args[0])?;
                let digits = num(&args[1])?.clamp(0.0, 17.0) as usize;
                Value::str(format!("{x:.digits$}"))
            }
            ListLength => Value::Number(listv(&args[0])?.len() as f64),
            ListNth => {
                let xs = listv(&args[0])?;
                let i = num(&args[1])?;
                if i < 0.0 || i.fract() != 0.0 || i as usize >= xs.len() {
                    return Err(PrimError::IndexOutOfRange {
                        prim: self,
                        index: i,
                        len: xs.len(),
                    });
                }
                xs[i as usize].clone()
            }
            ListAppend => {
                let xs = listv(&args[0])?;
                let mut out: Vec<Value> = xs.to_vec();
                out.push(args[1].clone());
                Value::list(out)
            }
            ListSet => {
                let xs = listv(&args[0])?;
                let i = num(&args[1])?;
                if i < 0.0 || i.fract() != 0.0 || i as usize >= xs.len() {
                    return Err(PrimError::IndexOutOfRange {
                        prim: self,
                        index: i,
                        len: xs.len(),
                    });
                }
                let mut out: Vec<Value> = xs.to_vec();
                out[i as usize] = args[2].clone();
                Value::list(out)
            }
            ListConcat => {
                let xs = listv(&args[0])?;
                let ys = listv(&args[1])?;
                let mut out: Vec<Value> = xs.to_vec();
                out.extend(ys.iter().cloned());
                Value::list(out)
            }
            ListReverse => {
                let xs = listv(&args[0])?;
                let mut out: Vec<Value> = xs.to_vec();
                out.reverse();
                Value::list(out)
            }
            ListIsEmpty => Value::Bool(listv(&args[0])?.is_empty()),
            ListRange => {
                let lo = num(&args[0])?;
                let hi = num(&args[1])?;
                let mut out = Vec::new();
                let mut x = lo;
                while x < hi {
                    out.push(Value::Number(x));
                    x += 1.0;
                }
                Value::list(out)
            }
            WebListings => {
                let n = num(&args[0])?.max(0.0) as usize;
                ctx.web_requests += 1;
                ctx.simulated_ms += WEB_REQUEST_BASE_MS + WEB_REQUEST_PER_ITEM_MS * n as f64;
                Value::List(Arc::from(synthetic_listings(n)))
            }
            WebDelay => {
                ctx.simulated_ms += num(&args[0])?.max(0.0);
                Value::unit()
            }
        })
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ns, name) = self.path();
        write!(f, "{ns}.{name}")
    }
}

/// Deterministic synthetic real-estate listings, substituting for the
/// paper's live web data: `(address, price)` pairs generated from a
/// fixed linear-congruential stream, so runs are reproducible.
pub fn synthetic_listings(n: usize) -> Vec<Value> {
    const STREETS: [&str; 8] = [
        "Maple St",
        "Oak Ave",
        "Pine Rd",
        "Cedar Ln",
        "Birch Way",
        "Elm Dr",
        "Walnut Ct",
        "Spruce Pl",
    ];
    let mut state = 0x2545F491_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            let number = 100 + (next() % 9900);
            let street = STREETS[(next() % STREETS.len() as u32) as usize];
            let price = 150_000.0 + f64::from(next() % 850) * 1000.0;
            Value::tuple(vec![
                Value::str(format!("{number} {street} #{i}")),
                Value::Number(price),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PrimCtx {
        PrimCtx::default()
    }

    #[test]
    fn path_roundtrip() {
        for p in Prim::ALL {
            let (ns, name) = p.path();
            assert_eq!(Prim::from_path(ns, name), Some(p), "{p}");
        }
        assert_eq!(Prim::from_path("math", "nope"), None);
    }

    #[test]
    fn arity_matches_sig() {
        for p in Prim::ALL {
            if let Some(sig) = p.sig() {
                assert_eq!(sig.params.len(), p.arity(), "{p}");
            }
        }
    }

    #[test]
    fn math_primitives() {
        let mut c = ctx();
        assert_eq!(
            Prim::MathFloor.apply(&[Value::Number(2.7)], &mut c),
            Ok(Value::Number(2.0))
        );
        assert_eq!(
            Prim::MathMod.apply(&[Value::Number(9.0), Value::Number(5.0)], &mut c),
            Ok(Value::Number(4.0))
        );
        // rem_euclid keeps the result non-negative, like the paper's mod.
        assert_eq!(
            Prim::MathMod.apply(&[Value::Number(-1.0), Value::Number(5.0)], &mut c),
            Ok(Value::Number(4.0))
        );
        assert_eq!(
            Prim::MathPow.apply(&[Value::Number(2.0), Value::Number(10.0)], &mut c),
            Ok(Value::Number(1024.0))
        );
    }

    #[test]
    fn string_primitives() {
        let mut c = ctx();
        assert_eq!(
            Prim::StrLen.apply(&[Value::str("héllo")], &mut c),
            Ok(Value::Number(5.0))
        );
        assert_eq!(
            Prim::StrSubstr.apply(
                &[Value::str("abcdef"), Value::Number(2.0), Value::Number(3.0)],
                &mut c
            ),
            Ok(Value::str("cde"))
        );
        assert_eq!(
            Prim::StrIndexOf.apply(&[Value::str("hello"), Value::str("ll")], &mut c),
            Ok(Value::Number(2.0))
        );
        assert_eq!(
            Prim::StrIndexOf.apply(&[Value::str("hello"), Value::str("xyz")], &mut c),
            Ok(Value::Number(-1.0))
        );
    }

    #[test]
    fn fmt_fixed_formats_cents() {
        let mut c = ctx();
        assert_eq!(
            Prim::FmtFixed.apply(&[Value::Number(1234.5), Value::Number(2.0)], &mut c),
            Ok(Value::str("1234.50"))
        );
    }

    #[test]
    fn list_primitives() {
        let mut c = ctx();
        let xs = Value::list(vec![Value::Number(1.0), Value::Number(2.0)]);
        assert_eq!(
            Prim::ListLength.apply(std::slice::from_ref(&xs), &mut c),
            Ok(Value::Number(2.0))
        );
        assert_eq!(
            Prim::ListNth.apply(&[xs.clone(), Value::Number(1.0)], &mut c),
            Ok(Value::Number(2.0))
        );
        assert!(matches!(
            Prim::ListNth.apply(&[xs.clone(), Value::Number(2.0)], &mut c),
            Err(PrimError::IndexOutOfRange { .. })
        ));
        assert_eq!(
            Prim::ListAppend.apply(&[xs.clone(), Value::Number(3.0)], &mut c),
            Ok(Value::list(vec![
                Value::Number(1.0),
                Value::Number(2.0),
                Value::Number(3.0)
            ]))
        );
        assert_eq!(
            Prim::ListRange.apply(&[Value::Number(0.0), Value::Number(3.0)], &mut c),
            Ok(Value::list(vec![
                Value::Number(0.0),
                Value::Number(1.0),
                Value::Number(2.0)
            ]))
        );
    }

    #[test]
    fn web_listings_deterministic_and_costed() {
        let mut c1 = ctx();
        let mut c2 = ctx();
        let a = Prim::WebListings.apply(&[Value::Number(5.0)], &mut c1);
        let b = Prim::WebListings.apply(&[Value::Number(5.0)], &mut c2);
        assert_eq!(a, b, "listings must be deterministic");
        assert_eq!(c1.web_requests, 1);
        assert!(c1.simulated_ms >= WEB_REQUEST_BASE_MS);
        let Ok(Value::List(xs)) = a else {
            panic!("expected list")
        };
        assert_eq!(xs.len(), 5);
        let ty = Type::tuple(vec![Type::String, Type::Number]);
        for x in xs.iter() {
            assert!(x.has_type(&ty));
        }
    }

    #[test]
    fn wrong_arity_is_bad_args() {
        let mut c = ctx();
        assert_eq!(
            Prim::MathFloor.apply(&[], &mut c),
            Err(PrimError::BadArgs(Prim::MathFloor))
        );
    }
}
