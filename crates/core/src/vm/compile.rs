//! The bytecode compiler: one pass over a checked [`Program`],
//! destination-driven code generation with compile-time slot
//! resolution.
//!
//! The compile-time binding stack (`FnCompiler::binds`) is a flat list
//! of `(name, register)` pairs that mirrors bigstep's flattened scope
//! chain *exactly* — shadowed entries stay on the stack and lookups
//! resolve innermost-last — so closure capture lists and render-hook
//! locals come out byte-identical to the tree walker's `capture_env`.
//!
//! Any construct the compiler cannot prove it can reproduce exactly
//! (unresolvable names in programs that bypassed the type checker,
//! capacity overflows) aborts the whole compile with [`CompileError`];
//! the caller then runs the program on bigstep, so semantics are
//! preserved by falling back, never by approximating.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use alive_syntax::ast::{BinOp, UnOp};

use crate::expr::{Expr, ExprKind, LambdaExpr, ParamSig};
use crate::program::Program;
use crate::types::Name;
use crate::value::Value;

use super::{
    Chunk, ExampleSlot, GlobalSlot, GuardOp, Instr, LambdaInfo, PageEntry, ProvSpec, Reg, VmProgram,
};

/// Why a program is outside the VM subset. Never user-visible: the
/// engine falls back to the tree walker, which reports the authoritative
/// runtime error (or runs the program fine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What the compiler could not express.
    pub reason: &'static str,
    /// The offending name, when there is one.
    pub name: Option<Name>,
}

impl CompileError {
    fn named(reason: &'static str, name: &Name) -> CompileError {
        CompileError {
            reason,
            name: Some(name.clone()),
        }
    }

    fn plain(reason: &'static str) -> CompileError {
        CompileError { reason, name: None }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "vm compile: {} ({n})", self.reason),
            None => write!(f, "vm compile: {}", self.reason),
        }
    }
}

impl std::error::Error for CompileError {}

/// Jump-target placeholder patched by `FnCompiler::patch`.
const PENDING: u32 = u32::MAX;

/// Hash key for the small constant-dedup cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    Unit,
    EmptyList,
    Bool(bool),
    Num(u64),
}

struct Builder<'p> {
    program: &'p Program,
    chunks: Vec<Chunk>,
    consts: Vec<Value>,
    const_cache: HashMap<ConstKey, u32>,
    lambdas: Vec<LambdaInfo>,
    captures: Vec<Arc<[(u32, Reg)]>>,
    provs: Vec<ProvSpec>,
    globals: Vec<GlobalSlot>,
    global_idx: HashMap<Name, u32>,
    page_names: Vec<Name>,
    page_name_idx: HashMap<Name, u32>,
    syms: Vec<Name>,
    sym_idx: HashMap<Name, u32>,
    fun_lambda: HashMap<Name, u32>,
    by_body: HashMap<usize, u32>,
}

impl Builder<'_> {
    fn sym(&mut self, n: &Name) -> u32 {
        if let Some(&s) = self.sym_idx.get(n) {
            return s;
        }
        let s = self.syms.len() as u32;
        self.syms.push(n.clone());
        self.sym_idx.insert(n.clone(), s);
        s
    }

    fn page_name(&mut self, n: &Name) -> u32 {
        if let Some(&p) = self.page_name_idx.get(n) {
            return p;
        }
        let p = self.page_names.len() as u32;
        self.page_names.push(n.clone());
        self.page_name_idx.insert(n.clone(), p);
        p
    }

    fn const_val(&mut self, v: Value) -> Result<u32, CompileError> {
        let key = match &v {
            Value::Number(n) => Some(ConstKey::Num(n.to_bits())),
            Value::Bool(b) => Some(ConstKey::Bool(*b)),
            Value::Tuple(t) if t.is_empty() => Some(ConstKey::Unit),
            Value::List(l) if l.is_empty() => Some(ConstKey::EmptyList),
            _ => None,
        };
        if let Some(k) = &key {
            if let Some(&i) = self.const_cache.get(k) {
                return Ok(i);
            }
        }
        let i = u32::try_from(self.consts.len())
            .map_err(|_| CompileError::plain("constant pool overflow"))?;
        self.consts.push(v);
        if let Some(k) = key {
            self.const_cache.insert(k, i);
        }
        Ok(i)
    }

    fn capture_set(&mut self, set: Vec<(u32, Reg)>) -> u32 {
        let i = self.captures.len() as u32;
        self.captures.push(set.into());
        i
    }

    fn prov_spec(&mut self, spec: ProvSpec) -> u32 {
        let i = self.provs.len() as u32;
        self.provs.push(spec);
        i
    }
}

/// Compile one body into a chunk. `binds` seeds the binding stack;
/// its first `env_len` entries are closure-environment slots and the
/// next `params` entries are argument slots.
fn compile_chunk(
    b: &mut Builder<'_>,
    binds: Vec<(Name, Reg)>,
    env_len: usize,
    params: usize,
    body: &Expr,
) -> Result<u32, CompileError> {
    let first = binds.len() as u16;
    let mut f = FnCompiler {
        b,
        code: Vec::new(),
        binds,
        next: first,
        max: first,
    };
    let res = f.alloc()?;
    f.emit(body, Some(res))?;
    f.code.push(Instr::Ret { src: res });
    let FnCompiler { code, max, .. } = f;
    let idx = u32::try_from(b.chunks.len()).map_err(|_| CompileError::plain("chunk overflow"))?;
    b.chunks.push(Chunk {
        code,
        regs: max,
        env_len: env_len as u16,
        params: params as u16,
    });
    Ok(idx)
}

fn param_binds(params: &[ParamSig]) -> Result<Vec<(Name, Reg)>, CompileError> {
    if params.len() > u16::MAX as usize {
        return Err(CompileError::plain("too many parameters"));
    }
    Ok(params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i as Reg))
        .collect())
}

/// Does evaluating `e` assign to local `name` anywhere? Conservative
/// (counts shadowed assignments and assignments inside lambdas, which
/// cannot actually touch the caller's slot) — a false positive only
/// costs one extra register copy.
fn mutates(e: &Expr, name: &Name) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if let ExprKind::LocalAssign(n, _) = &x.kind {
            if Arc::ptr_eq(n, name) || **n == **name {
                found = true;
            }
        }
    });
    found
}

/// May `e` be compiled directly into a destination register that holds
/// a *live binding*? True only when the generated code writes the
/// destination as its final step, so no read of the old value (by the
/// expression itself, a closure capture, or a render-hook capture list)
/// can observe a partial write. `&&`/`||` write the destination early
/// (the left operand's value is the short-circuit result), so they and
/// anything not explicitly listed get a temporary + move instead.
fn writes_only_at_end(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::ColorLit(_)
        | ExprKind::Local(_)
        | ExprKind::Global(_)
        | ExprKind::FunRef(_)
        | ExprKind::PrimRef(_)
        | ExprKind::Tuple(_)
        | ExprKind::ListLit(_)
        | ExprKind::Proj(..)
        | ExprKind::Call(..)
        | ExprKind::Lambda(_)
        | ExprKind::Unary(..)
        | ExprKind::WidgetRead(_) => true,
        ExprKind::Binary(op, ..) => !matches!(op, BinOp::And | BinOp::Or),
        ExprKind::If(_, t, els) => writes_only_at_end(t) && writes_only_at_end(els),
        ExprKind::Seq(_, b) => writes_only_at_end(b),
        ExprKind::Let { body, .. } => writes_only_at_end(body),
        _ => false,
    }
}

struct FnCompiler<'b, 'p> {
    b: &'b mut Builder<'p>,
    code: Vec<Instr>,
    /// The flat binding stack — bigstep's scope chain, flattened.
    binds: Vec<(Name, Reg)>,
    /// Register watermark: next free slot.
    next: u16,
    /// Frame size: high-water mark of `next`.
    max: u16,
}

impl FnCompiler<'_, '_> {
    fn alloc(&mut self) -> Result<Reg, CompileError> {
        let r = self.next;
        if r == u16::MAX {
            return Err(CompileError::plain("register overflow"));
        }
        self.next += 1;
        if self.next > self.max {
            self.max = self.next;
        }
        Ok(r)
    }

    fn alloc_n(&mut self, n: usize) -> Result<Reg, CompileError> {
        let base = self.next;
        let end = (base as usize)
            .checked_add(n)
            .filter(|&e| e < u16::MAX as usize)
            .ok_or(CompileError::plain("register overflow"))?;
        self.next = end as u16;
        if self.next > self.max {
            self.max = self.next;
        }
        Ok(base)
    }

    fn save(&self) -> u16 {
        self.next
    }

    fn restore(&mut self, w: u16) {
        self.next = w;
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn push(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// Point the pending jump at `at` to the current pc.
    fn patch(&mut self, at: u32) {
        let to = self.here();
        if let Some(
            Instr::Jump { to: t }
            | Instr::JumpIfFalse { to: t, .. }
            | Instr::JumpIfTrue { to: t, .. }
            | Instr::IterNext { exit: t, .. }
            | Instr::BoxEnter { skip: t, .. }
            | Instr::RememberBind { done: t, .. },
        ) = self.code.get_mut(at as usize)
        {
            *t = to;
        }
    }

    /// Innermost-last slot lookup — the compile-time mirror of
    /// bigstep's `lookup_local`.
    fn resolve(&self, name: &Name) -> Option<Reg> {
        self.binds
            .iter()
            .rev()
            .find(|(n, _)| Arc::ptr_eq(n, name) || **n == **name)
            .map(|(_, r)| *r)
    }

    fn emit_const(&mut self, dst: Option<Reg>, v: Value) -> Result<(), CompileError> {
        if let Some(d) = dst {
            let k = self.b.const_val(v)?;
            self.push(Instr::Const { dst: d, k });
        }
        Ok(())
    }

    fn emit_unit(&mut self, dst: Option<Reg>) -> Result<(), CompileError> {
        self.emit_const(dst, Value::unit())
    }

    /// Emit `e` as an operand and return the register holding it. A
    /// bare local reference aliases its binding register (zero
    /// instructions) unless one of `hazards` — code that runs between
    /// this operand's evaluation point and its consumption — could
    /// assign that local.
    fn emit_operand(&mut self, e: &Expr, hazards: &[&Expr]) -> Result<Reg, CompileError> {
        if let ExprKind::Local(name) = &e.kind {
            let r = self
                .resolve(name)
                .ok_or_else(|| CompileError::named("unresolved local", name))?;
            if hazards.iter().all(|h| !mutates(h, name)) {
                return Ok(r);
            }
        }
        let tmp = self.alloc()?;
        self.emit(e, Some(tmp))?;
        Ok(tmp)
    }

    /// A destination register: the caller's, or a fresh temporary for
    /// instructions that must run even when their value is discarded.
    fn sink(&mut self, dst: Option<Reg>) -> Result<Reg, CompileError> {
        match dst {
            Some(d) => Ok(d),
            None => self.alloc(),
        }
    }

    /// Compile `e`, leaving its value in `dst` (if any). Every arm
    /// restores the register watermark it started with, so temporaries
    /// never leak across siblings.
    fn emit(&mut self, e: &Expr, dst: Option<Reg>) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Num(n) => self.emit_const(dst, Value::Number(*n)),
            ExprKind::Str(s) => self.emit_const(dst, Value::Str(s.clone())),
            ExprKind::Bool(v) => self.emit_const(dst, Value::Bool(*v)),
            ExprKind::ColorLit(c) => self.emit_const(dst, Value::Color(*c)),
            ExprKind::PrimRef(p) => self.emit_const(dst, Value::Prim(*p)),
            ExprKind::Local(name) => {
                let r = self
                    .resolve(name)
                    .ok_or_else(|| CompileError::named("unresolved local", name))?;
                if let Some(d) = dst {
                    if d != r {
                        self.push(Instr::Move { dst: d, src: r });
                    }
                }
                Ok(())
            }
            ExprKind::Global(name) => {
                let g = self
                    .b
                    .global_idx
                    .get(name)
                    .copied()
                    .ok_or_else(|| CompileError::named("unresolved global", name))?;
                let w = self.save();
                let d = self.sink(dst)?;
                self.push(Instr::Global { dst: d, g });
                self.restore(w);
                Ok(())
            }
            ExprKind::FunRef(name) => {
                let l = self
                    .b
                    .fun_lambda
                    .get(name)
                    .copied()
                    .ok_or_else(|| CompileError::named("unresolved function", name))?;
                if let Some(d) = dst {
                    self.push(Instr::MakeClosure { dst: d, l });
                }
                Ok(())
            }
            ExprKind::Lambda(lam) => {
                let Some(d) = dst else {
                    // A discarded lambda has no observable effect.
                    return Ok(());
                };
                let l = self.compile_lambda(lam)?;
                self.push(Instr::MakeClosure { dst: d, l });
                Ok(())
            }
            ExprKind::Tuple(elems) => {
                if elems.is_empty() {
                    return self.emit_unit(dst);
                }
                let w = self.save();
                let base = self.alloc_n(elems.len())?;
                for (i, el) in elems.iter().enumerate() {
                    self.emit(el, Some(base + i as u16))?;
                }
                let d = self.sink(dst)?;
                self.push(Instr::MakeTuple {
                    dst: d,
                    base,
                    len: elems.len() as u16,
                });
                self.restore(w);
                Ok(())
            }
            ExprKind::ListLit(elems) => {
                if elems.is_empty() {
                    return self.emit_const(dst, Value::list(Vec::new()));
                }
                let w = self.save();
                let base = self.alloc_n(elems.len())?;
                for (i, el) in elems.iter().enumerate() {
                    self.emit(el, Some(base + i as u16))?;
                }
                let d = self.sink(dst)?;
                self.push(Instr::MakeList {
                    dst: d,
                    base,
                    len: elems.len() as u16,
                });
                self.restore(w);
                Ok(())
            }
            ExprKind::Proj(base_e, index) => {
                let w = self.save();
                let src = self.emit_operand(base_e, &[])?;
                let d = self.sink(dst)?;
                self.push(Instr::Proj {
                    dst: d,
                    src,
                    index: *index,
                });
                self.restore(w);
                Ok(())
            }
            ExprKind::Call(callee, args) => self.emit_call(callee, args, dst),
            ExprKind::Let {
                name, value, body, ..
            } => {
                let w = self.save();
                let vreg = self.alloc()?;
                self.emit(value, Some(vreg))?;
                self.binds.push((name.clone(), vreg));
                let r = self.emit(body, dst);
                self.binds.pop();
                self.restore(w);
                r
            }
            ExprKind::Seq(a, b) => {
                self.emit(a, None)?;
                self.emit(b, dst)
            }
            ExprKind::If(c, t, els) => {
                let w = self.save();
                let creg = self.emit_operand(c, &[])?;
                let jf = self.here();
                self.push(Instr::JumpIfFalse {
                    cond: creg,
                    to: PENDING,
                });
                self.restore(w);
                self.emit(t, dst)?;
                let je = self.here();
                self.push(Instr::Jump { to: PENDING });
                self.patch(jf);
                self.emit(els, dst)?;
                self.patch(je);
                Ok(())
            }
            ExprKind::While(c, body) => {
                let head = self.here();
                let w = self.save();
                let creg = self.emit_operand(c, &[])?;
                let jf = self.here();
                self.push(Instr::JumpIfFalse {
                    cond: creg,
                    to: PENDING,
                });
                self.restore(w);
                self.emit(body, None)?;
                self.push(Instr::Jump { to: head });
                self.patch(jf);
                self.emit_unit(dst)
            }
            ExprKind::ForRange { var, lo, hi, body } => {
                let w = self.save();
                // Bounds evaluate once, before the loop variable binds,
                // in bigstep's order (lo checked before hi evaluates).
                let cnt = self.alloc()?;
                self.emit(lo, Some(cnt))?;
                self.push(Instr::CheckNum { src: cnt });
                let hi_r = self.alloc()?;
                self.emit(hi, Some(hi_r))?;
                self.push(Instr::CheckNum { src: hi_r });
                let one = self.alloc()?;
                let k1 = self.b.const_val(Value::Number(1.0))?;
                self.push(Instr::Const { dst: one, k: k1 });
                let tmp = self.alloc()?;
                // Bigstep's counter is loop-private: assigning the loop
                // variable in the body must not change iteration. Only
                // pay for a separate binding register when the body
                // actually assigns it.
                let var_r = if mutates(body, var) {
                    Some(self.alloc()?)
                } else {
                    None
                };
                let head = self.here();
                self.push(Instr::Bin {
                    op: BinOp::Lt,
                    dst: tmp,
                    a: cnt,
                    b: hi_r,
                });
                let jf = self.here();
                self.push(Instr::JumpIfFalse {
                    cond: tmp,
                    to: PENDING,
                });
                if let Some(vr) = var_r {
                    self.push(Instr::Move { dst: vr, src: cnt });
                }
                self.binds.push((var.clone(), var_r.unwrap_or(cnt)));
                let r = self.emit(body, None);
                self.binds.pop();
                r?;
                self.push(Instr::Bin {
                    op: BinOp::Add,
                    dst: cnt,
                    a: cnt,
                    b: one,
                });
                self.push(Instr::Jump { to: head });
                self.patch(jf);
                self.restore(w);
                self.emit_unit(dst)
            }
            ExprKind::Foreach { var, list, body } => {
                let w = self.save();
                let list_r = self.emit_operand(list, &[body])?;
                let idx = self.alloc()?;
                let k0 = self.b.const_val(Value::Number(0.0))?;
                self.push(Instr::Const { dst: idx, k: k0 });
                let var_r = self.alloc()?;
                let head = self.here();
                self.push(Instr::IterNext {
                    list: list_r,
                    idx,
                    var: var_r,
                    exit: PENDING,
                });
                self.binds.push((var.clone(), var_r));
                let r = self.emit(body, None);
                self.binds.pop();
                r?;
                self.push(Instr::Jump { to: head });
                self.patch(head);
                self.restore(w);
                self.emit_unit(dst)
            }
            ExprKind::LocalAssign(name, value) => {
                let r = self
                    .resolve(name)
                    .ok_or_else(|| CompileError::named("unresolved local", name))?;
                if writes_only_at_end(value) {
                    self.emit(value, Some(r))?;
                } else {
                    let w = self.save();
                    let tmp = self.alloc()?;
                    self.emit(value, Some(tmp))?;
                    self.push(Instr::Move { dst: r, src: tmp });
                    self.restore(w);
                }
                self.emit_unit(dst)
            }
            ExprKind::GlobalAssign(name, value) => {
                let g = self
                    .b
                    .global_idx
                    .get(name)
                    .copied()
                    .ok_or_else(|| CompileError::named("unresolved global", name))?;
                self.push(Instr::Guard {
                    op: GuardOp::AssignGlobal,
                });
                let w = self.save();
                let src = self.emit_operand(value, &[])?;
                self.push(Instr::SetGlobal { g, src });
                self.restore(w);
                self.emit_unit(dst)
            }
            ExprKind::PushPage(name, args) => {
                if self.b.program.page(name).is_none() {
                    return Err(CompileError::named("unresolved page", name));
                }
                let page = self.b.page_name(name);
                self.push(Instr::Guard { op: GuardOp::Push });
                let w = self.save();
                let base = self.alloc_n(args.len())?;
                for (i, a) in args.iter().enumerate() {
                    self.emit(a, Some(base + i as u16))?;
                }
                self.push(Instr::PushEvent {
                    page,
                    base,
                    argc: args.len() as u16,
                });
                self.restore(w);
                self.emit_unit(dst)
            }
            ExprKind::PopPage => {
                self.push(Instr::PopEvent);
                self.emit_unit(dst)
            }
            ExprKind::Boxed(id, body) => {
                let w = self.save();
                let d = self.sink(dst)?;
                let cap = self.capture_current();
                let be = self.here();
                self.push(Instr::BoxEnter {
                    id: id.0,
                    cap,
                    dst: d,
                    skip: PENDING,
                });
                self.emit(body, Some(d))?;
                self.push(Instr::BoxExit {
                    id: id.0,
                    cap,
                    src: d,
                });
                self.patch(be);
                self.restore(w);
                Ok(())
            }
            ExprKind::Post(value) => {
                self.push(Instr::Guard { op: GuardOp::Post });
                let w = self.save();
                let src = self.emit_operand(value, &[])?;
                let prov = self.prov_for(value);
                self.push(Instr::PostLeaf { src, prov });
                self.restore(w);
                self.emit_unit(dst)
            }
            ExprKind::SetAttr(attr, value) => {
                self.push(Instr::Guard { op: GuardOp::Attr });
                let w = self.save();
                let src = self.emit_operand(value, &[])?;
                let prov = self.prov_for(value);
                self.push(Instr::SetAttr {
                    attr: *attr,
                    src,
                    prov,
                });
                self.restore(w);
                self.emit_unit(dst)
            }
            ExprKind::Remember {
                id,
                name,
                init,
                body,
                ..
            } => {
                let w = self.save();
                let slot = self.alloc()?;
                let rb = self.here();
                self.push(Instr::RememberBind {
                    dst: slot,
                    id: id.0,
                    done: PENDING,
                });
                // The initializer runs with the binding not yet visible
                // (bigstep pushes the frame only after `set`).
                {
                    let w2 = self.save();
                    let tmp = self.alloc()?;
                    self.emit(init, Some(tmp))?;
                    self.push(Instr::RememberInit {
                        key: slot,
                        src: tmp,
                    });
                    self.restore(w2);
                }
                self.patch(rb);
                self.binds.push((name.clone(), slot));
                let r = self.emit(body, dst);
                self.binds.pop();
                self.restore(w);
                r
            }
            ExprKind::WidgetRead(name) => {
                let r = self
                    .resolve(name)
                    .ok_or_else(|| CompileError::named("unresolved local", name))?;
                let sym = self.b.sym(name);
                let w = self.save();
                let d = self.sink(dst)?;
                self.push(Instr::WidgetGet {
                    dst: d,
                    src: r,
                    name: sym,
                });
                self.restore(w);
                Ok(())
            }
            ExprKind::WidgetWrite(name, value) => {
                let r = self
                    .resolve(name)
                    .ok_or_else(|| CompileError::named("unresolved local", name))?;
                let w = self.save();
                let key = self.alloc()?;
                self.push(Instr::GuardWidget { src: r, key });
                let src = self.emit_operand(value, &[])?;
                self.push(Instr::WidgetSet { key, val: src });
                self.restore(w);
                self.emit_unit(dst)
            }
            ExprKind::Binary(op, lhs, rhs) => match op {
                BinOp::And | BinOp::Or => {
                    let w = self.save();
                    let d = self.sink(dst)?;
                    self.emit(lhs, Some(d))?;
                    let j = self.here();
                    // On short-circuit, `d` already holds the (checked)
                    // deciding boolean.
                    if *op == BinOp::And {
                        self.push(Instr::JumpIfFalse {
                            cond: d,
                            to: PENDING,
                        });
                    } else {
                        self.push(Instr::JumpIfTrue {
                            cond: d,
                            to: PENDING,
                        });
                    }
                    self.emit(rhs, Some(d))?;
                    self.push(Instr::CheckBool { src: d });
                    self.patch(j);
                    self.restore(w);
                    Ok(())
                }
                _ => {
                    let w = self.save();
                    let a = self.emit_operand(lhs, &[rhs])?;
                    let b_r = self.emit_operand(rhs, &[])?;
                    let d = self.sink(dst)?;
                    self.push(Instr::Bin {
                        op: *op,
                        dst: d,
                        a,
                        b: b_r,
                    });
                    self.restore(w);
                    Ok(())
                }
            },
            ExprKind::Unary(op, inner) => {
                let w = self.save();
                let src = self.emit_operand(inner, &[])?;
                let d = self.sink(dst)?;
                match op {
                    UnOp::Neg => self.push(Instr::Neg { dst: d, src }),
                    UnOp::Not => self.push(Instr::Not { dst: d, src }),
                }
                self.restore(w);
                Ok(())
            }
        }
    }

    fn emit_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        dst: Option<Reg>,
    ) -> Result<(), CompileError> {
        // Direct-call fast path: a statically resolved function with
        // matching arity skips the intermediate closure allocation.
        if let ExprKind::FunRef(fname) = &callee.kind {
            let f = self
                .b
                .program
                .fun(fname)
                .ok_or_else(|| CompileError::named("unresolved function", fname))?;
            if f.params.len() == args.len() {
                let l = self
                    .b
                    .fun_lambda
                    .get(fname)
                    .copied()
                    .ok_or_else(|| CompileError::named("unresolved function", fname))?;
                let w = self.save();
                let base = self.alloc_n(args.len())?;
                for (i, a) in args.iter().enumerate() {
                    self.emit(a, Some(base + i as u16))?;
                }
                let d = self.sink(dst)?;
                self.push(Instr::CallFun {
                    dst: d,
                    l,
                    base,
                    argc: args.len() as u16,
                });
                self.restore(w);
                return Ok(());
            }
            // Arity mismatch: fall through to the generic call, which
            // reports `ArityMismatch` at runtime exactly like bigstep.
        }
        let w = self.save();
        let arg_refs: Vec<&Expr> = args.iter().collect();
        let creg = self.emit_operand(callee, &arg_refs)?;
        let base = self.alloc_n(args.len())?;
        for (i, a) in args.iter().enumerate() {
            self.emit(a, Some(base + i as u16))?;
        }
        let d = self.sink(dst)?;
        self.push(Instr::Call {
            dst: d,
            callee: creg,
            base,
            argc: args.len() as u16,
        });
        self.restore(w);
        Ok(())
    }

    /// The compile-time provenance record for a `post`/`box.a :=`
    /// operand: the literal's span, or the operand span plus its free
    /// locals resolved to registers — the mirror of bigstep's runtime
    /// `provenance_of`. Names that fail to resolve are skipped, exactly
    /// as bigstep skips names its `lookup_local` misses.
    fn prov_for(&mut self, value: &Expr) -> u32 {
        let spec = if crate::provenance::is_literal_expr(value) {
            ProvSpec::Literal(value.span)
        } else {
            let mut free = Vec::new();
            for name in crate::provenance::free_locals(value) {
                if let Some(r) = self.resolve(&name) {
                    let sym = self.b.sym(&name);
                    free.push((sym, r));
                }
            }
            ProvSpec::Expr {
                span: value.span,
                free: free.into(),
            }
        };
        self.b.prov_spec(spec)
    }

    /// The current binding stack as a `(symbol, register)` capture set —
    /// bigstep's `capture_env`, resolved at compile time.
    fn capture_current(&mut self) -> u32 {
        let mut set = Vec::with_capacity(self.binds.len());
        for i in 0..self.binds.len() {
            let Some((n, r)) = self.binds.get(i).cloned() else {
                break;
            };
            let sym = self.b.sym(&n);
            set.push((sym, r));
        }
        self.b.capture_set(set)
    }

    fn compile_lambda(&mut self, lam: &LambdaExpr) -> Result<u32, CompileError> {
        let ptr = Arc::as_ptr(&lam.body) as usize;
        if let Some(&l) = self.b.by_body.get(&ptr) {
            return Ok(l);
        }
        if self.binds.len() + lam.params.len() >= u16::MAX as usize {
            return Err(CompileError::plain("register overflow"));
        }
        let mut captures = Vec::with_capacity(self.binds.len());
        let mut sub_binds = Vec::with_capacity(self.binds.len() + lam.params.len());
        for i in 0..self.binds.len() {
            let Some((n, r)) = self.binds.get(i).cloned() else {
                break;
            };
            let sym = self.b.sym(&n);
            captures.push((sym, r));
            sub_binds.push((n, i as Reg));
        }
        let env_len = sub_binds.len();
        for (j, p) in lam.params.iter().enumerate() {
            sub_binds.push((p.name.clone(), (env_len + j) as Reg));
        }
        let idx = u32::try_from(self.b.lambdas.len())
            .map_err(|_| CompileError::plain("lambda overflow"))?;
        self.b.lambdas.push(LambdaInfo {
            chunk: u32::MAX,
            params: lam.params.clone(),
            effect: lam.effect,
            body: lam.body.clone(),
            captures: captures.into(),
        });
        self.b.by_body.insert(ptr, idx);
        let chunk = compile_chunk(self.b, sub_binds, env_len, lam.params.len(), &lam.body)?;
        if let Some(info) = self.b.lambdas.get_mut(idx as usize) {
            info.chunk = chunk;
        }
        Ok(idx)
    }
}

pub(crate) fn compile_program(p: &Program) -> Result<VmProgram, CompileError> {
    let mut b = Builder {
        program: p,
        chunks: Vec::new(),
        consts: Vec::new(),
        const_cache: HashMap::new(),
        lambdas: Vec::new(),
        captures: Vec::new(),
        provs: Vec::new(),
        globals: Vec::new(),
        global_idx: HashMap::new(),
        page_names: Vec::new(),
        page_name_idx: HashMap::new(),
        syms: Vec::new(),
        sym_idx: HashMap::new(),
        fun_lambda: HashMap::new(),
        by_body: HashMap::new(),
    };
    // Reserve global slots and function lambda entries first so
    // references resolve regardless of definition order (mutual
    // recursion, forward references).
    for g in p.globals() {
        let idx = b.globals.len() as u32;
        b.globals.push(GlobalSlot {
            name: g.name.clone(),
            init_chunk: u32::MAX,
        });
        b.global_idx.insert(g.name.clone(), idx);
        b.sym(&g.name);
    }
    for f in p.funs() {
        let idx =
            u32::try_from(b.lambdas.len()).map_err(|_| CompileError::plain("lambda overflow"))?;
        b.lambdas.push(LambdaInfo {
            chunk: u32::MAX,
            params: f.params.clone(),
            effect: f.effect,
            body: f.body.clone(),
            captures: Arc::from(Vec::new()),
        });
        b.fun_lambda.insert(f.name.clone(), idx);
        b.by_body.insert(Arc::as_ptr(&f.body) as usize, idx);
    }
    // Global initializers evaluate in an empty scope (EP-GLOBAL-2
    // clears the scope chain before running them).
    for i in 0..p.globals().len() {
        let Some(g) = p.globals().get(i) else { break };
        let init = g.init.clone();
        let chunk = compile_chunk(&mut b, Vec::new(), 0, 0, &init)?;
        if let Some(slot) = b.globals.get_mut(i) {
            slot.init_chunk = chunk;
        }
    }
    for f in p.funs() {
        let binds = param_binds(&f.params)?;
        let chunk = compile_chunk(&mut b, binds, 0, f.params.len(), &f.body)?;
        if let Some(&l) = b.fun_lambda.get(&f.name) {
            if let Some(info) = b.lambdas.get_mut(l as usize) {
                info.chunk = chunk;
            }
        }
    }
    // Example bodies evaluate like global initializers: pure, in an
    // empty scope.
    let mut examples = Vec::new();
    for e in p.examples() {
        let body = e.body.clone();
        let body_chunk = compile_chunk(&mut b, Vec::new(), 0, 0, &body)?;
        let expect_chunk = match &e.expect {
            Some(expect) => {
                let expect = expect.clone();
                Some(compile_chunk(&mut b, Vec::new(), 0, 0, &expect)?)
            }
            None => None,
        };
        examples.push(ExampleSlot {
            body_chunk,
            expect_chunk,
        });
    }
    let mut pages = HashMap::new();
    for pg in p.pages() {
        let init_chunk = compile_chunk(
            &mut b,
            param_binds(&pg.params)?,
            0,
            pg.params.len(),
            &pg.init,
        )?;
        let render_chunk = compile_chunk(
            &mut b,
            param_binds(&pg.params)?,
            0,
            pg.params.len(),
            &pg.render,
        )?;
        pages.insert(
            pg.name.clone(),
            PageEntry {
                init_chunk,
                render_chunk,
                params: pg.params.clone(),
            },
        );
    }
    let mut vmp = VmProgram::new_empty();
    vmp.chunks = b.chunks;
    vmp.consts = b.consts;
    vmp.lambdas = b.lambdas;
    vmp.captures = b.captures;
    vmp.provs = b.provs;
    vmp.globals = b.globals;
    vmp.examples = examples;
    vmp.page_names = b.page_names;
    vmp.syms = b.syms;
    vmp.pages = pages;
    vmp.by_body = b.by_body;
    Ok(vmp)
}
