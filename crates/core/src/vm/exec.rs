//! The bytecode executor: a register machine over [`Scratch`] windows.
//!
//! Each entry point mirrors one of [`crate::bigstep`]'s `transition_*`
//! functions and must be observationally identical to it: same
//! `Result`, same store/queue/widget effects in the same order, same
//! rendered frames byte for byte, and the same `Cost` fields that are
//! part of the semantics (`boxes_created`, `boxes_reused`, `posts`,
//! `prim`). Only `cost.steps`/fuel accounting differs — the VM ticks
//! per instruction rather than per AST node — which is why fault
//! injection for differential testing uses `before_prim`, never fuel
//! throttling.
//!
//! The entry points return `Option`: `None` means "this transition is
//! outside the VM subset" (unknown page, a foreign closure from another
//! program version) and is decided *before any state is touched*, so
//! the caller can rerun the same transition on bigstep.

use std::sync::Arc;

use crate::bigstep::{apply_binop, Cost, RenderHook};
use crate::boxtree::{BoxItem, BoxNode};
use crate::error::RuntimeError;
use crate::event::{Event, EventQueue};
use crate::expr::{BoxSourceId, RememberId};
use crate::fault::FaultInjector;
use crate::store::Store;
use crate::types::{Effect, Name};
use crate::value::{Closure, Value};
use crate::widget::WidgetStore;

use crate::provenance::Provenance;

use super::arena::Scratch;
use super::{GuardOp, Instr, ProvSpec, VmProgram};

/// Execution statistics for one VM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions dispatched (every opcode, including fuel-free ones).
    pub instructions: u64,
    /// High-water register-arena bytes on the scratch pool.
    pub arena_bytes: u64,
}

/// Result of one VM transition: the outcome plus cost and VM stats.
#[derive(Debug)]
pub struct VmRun<T> {
    /// The transition result, exactly as bigstep would report it.
    pub result: Result<T, RuntimeError>,
    /// Semantic cost accounting (see [`Cost`]).
    pub cost: Cost,
    /// VM-only execution statistics.
    pub stats: RunStats,
}

/// Store access for one run: mutable in state mode, shared otherwise —
/// the same borrow-level immutability guarantee bigstep's `StoreAccess`
/// provides.
enum StoreView<'a> {
    Mut(&'a mut Store),
    Ref(&'a Store),
}

impl StoreView<'_> {
    fn get(&self, name: &str) -> Option<&Value> {
        match self {
            StoreView::Mut(s) => s.get(name),
            StoreView::Ref(s) => s.get(name),
        }
    }

    fn set(&mut self, name: &str, value: Value) -> Result<(), ()> {
        match self {
            StoreView::Mut(s) => {
                s.set(name, value);
                Ok(())
            }
            StoreView::Ref(_) => Err(()),
        }
    }
}

/// One in-flight VM run. Field shapes mirror `bigstep::Evaluator` so
/// the two engines see identical host state.
struct Vm<'a> {
    vmp: &'a VmProgram,
    scratch: &'a mut Scratch,
    store: StoreView<'a>,
    queue: Option<&'a mut EventQueue>,
    mode: Effect,
    /// Render frames; `boxes[0]` is the implicit top-level box.
    boxes: Vec<BoxNode>,
    fuel: u64,
    version: u64,
    cost: Cost,
    instructions: u64,
    hook: Option<&'a mut dyn RenderHook>,
    widgets: Option<&'a mut WidgetStore>,
    faults: Option<&'a mut dyn FaultInjector>,
}

const BAD_CODE: RuntimeError = RuntimeError::Internal("vm: malformed bytecode");

impl<'a> Vm<'a> {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.cost.steps += 1;
        if self.fuel == 0 {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn parent_frame(&mut self) -> Result<&mut BoxNode, RuntimeError> {
        self.boxes
            .last_mut()
            .ok_or(RuntimeError::Internal("render frame missing"))
    }

    fn get_bool(&self, i: usize) -> Result<bool, RuntimeError> {
        match self.scratch.get(i)? {
            Value::Bool(b) => Ok(*b),
            v => Err(RuntimeError::TypeMismatch {
                expected: "bool",
                found: v.display_text(),
            }),
        }
    }

    fn sym_name(&self, sym: u32) -> Result<&Name, RuntimeError> {
        self.vmp.syms.get(sym as usize).ok_or(BAD_CODE)
    }

    /// Materialize a compile-time capture set into bigstep's
    /// `capture_env` shape (outermost first, shadowed included).
    fn capture_locals(&self, base: usize, cap: u32) -> Result<Vec<(Name, Value)>, RuntimeError> {
        let set = self.vmp.captures.get(cap as usize).ok_or(BAD_CODE)?;
        let mut locals = Vec::with_capacity(set.len());
        for &(sym, r) in set.iter() {
            let name = self.sym_name(sym)?.clone();
            let v = self.scratch.get(base + r as usize)?.clone();
            locals.push((name, v));
        }
        Ok(locals)
    }

    /// Materialize a compile-time [`ProvSpec`] into a runtime
    /// [`Provenance`], reading the free-local registers *now* — after
    /// the operand evaluated — to match bigstep's lookup-after-eval
    /// snapshot order.
    fn materialize_prov(&self, base: usize, prov: u32) -> Result<Option<Provenance>, RuntimeError> {
        let spec = self.vmp.provs.get(prov as usize).ok_or(BAD_CODE)?;
        Ok(Some(match spec {
            ProvSpec::Literal(span) => Provenance::Literal(*span),
            ProvSpec::Expr { span, free } => {
                let mut env = Vec::with_capacity(free.len());
                for &(sym, r) in free.iter() {
                    let name = self.sym_name(sym)?.clone();
                    let v = self.scratch.get(base + r as usize)?.clone();
                    env.push((name, v));
                }
                Provenance::Expr {
                    span: *span,
                    env: Arc::new(env),
                }
            }
        }))
    }

    /// Run one chunk in the window at `base` until its `Ret`.
    fn exec(&mut self, chunk_idx: u32, base: usize) -> Result<Value, RuntimeError> {
        let vmp = self.vmp;
        let chunk = vmp.chunks.get(chunk_idx as usize).ok_or(BAD_CODE)?;
        let code = &chunk.code;
        let mut pc = 0usize;
        loop {
            let instr = *code.get(pc).ok_or(BAD_CODE)?;
            pc += 1;
            self.instructions += 1;
            // `Ret` and unconditional `Jump` are fuel-free: neither can
            // form a loop on its own, and charging only value-producing
            // instructions keeps trivial transitions (`render {}`) at
            // bigstep-comparable step counts.
            if !matches!(instr, Instr::Ret { .. } | Instr::Jump { .. }) {
                self.tick()?;
            }
            match instr {
                Instr::Const { dst, k } => {
                    let v = vmp.consts.get(k as usize).ok_or(BAD_CODE)?.clone();
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::Move { dst, src } => {
                    let v = self.scratch.get(base + src as usize)?.clone();
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::Global { dst, g } => {
                    let slot = vmp.globals.get(g as usize).ok_or(BAD_CODE)?;
                    let v = match self.store.get(&slot.name) {
                        Some(v) => v.clone(),
                        // EP-GLOBAL-2: fall back to the initializer in
                        // the code, evaluated in an empty scope (a
                        // fresh window, like bigstep's scope swap).
                        None => self.run_init(slot.init_chunk)?,
                    };
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::SetGlobal { g, src } => {
                    let v = self.scratch.get(base + src as usize)?.clone();
                    let slot = vmp.globals.get(g as usize).ok_or(BAD_CODE)?;
                    self.store
                        .set(&slot.name, v)
                        .map_err(|()| RuntimeError::EffectViolation {
                            op: "g := e",
                            mode: self.mode,
                        })?;
                }
                Instr::MakeClosure { dst, l } => {
                    let info = vmp.lambdas.get(l as usize).ok_or(BAD_CODE)?;
                    let mut env = Vec::with_capacity(info.captures.len());
                    for &(sym, r) in info.captures.iter() {
                        let name = vmp.syms.get(sym as usize).ok_or(BAD_CODE)?.clone();
                        let v = self.scratch.get(base + r as usize)?.clone();
                        env.push((name, v));
                    }
                    let v = Value::Closure(Arc::new(Closure {
                        params: info.params.clone(),
                        effect: info.effect,
                        body: info.body.clone(),
                        env: Arc::new(env),
                        version: self.version,
                    }));
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::MakeTuple { dst, base: b, len } => {
                    let vs = self
                        .scratch
                        .slice(base + b as usize, len as usize)?
                        .to_vec();
                    self.scratch.set(base + dst as usize, Value::tuple(vs))?;
                }
                Instr::MakeList { dst, base: b, len } => {
                    let vs = self
                        .scratch
                        .slice(base + b as usize, len as usize)?
                        .to_vec();
                    self.scratch.set(base + dst as usize, Value::list(vs))?;
                }
                Instr::Proj { dst, src, index } => {
                    let v = match self.scratch.get(base + src as usize)? {
                        Value::Tuple(vs) => {
                            let i = index as usize;
                            match vs.get(i.wrapping_sub(1)) {
                                Some(v) if i >= 1 => v.clone(),
                                _ => {
                                    return Err(RuntimeError::ProjOutOfRange {
                                        index,
                                        len: vs.len(),
                                    })
                                }
                            }
                        }
                        v => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "tuple",
                                found: v.display_text(),
                            })
                        }
                    };
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::Call {
                    dst,
                    callee,
                    base: b,
                    argc,
                } => {
                    let f = self.scratch.get(base + callee as usize)?.clone();
                    let v = self.call_value(f, base + b as usize, argc)?;
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::CallFun {
                    dst,
                    l,
                    base: b,
                    argc,
                } => {
                    let v = self.call_lambda(l, base + b as usize, argc, None)?;
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::Jump { to } => pc = to as usize,
                Instr::JumpIfFalse { cond, to } => {
                    if !self.get_bool(base + cond as usize)? {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfTrue { cond, to } => {
                    if self.get_bool(base + cond as usize)? {
                        pc = to as usize;
                    }
                }
                Instr::CheckBool { src } => {
                    self.get_bool(base + src as usize)?;
                }
                Instr::CheckNum { src } => match self.scratch.get(base + src as usize)? {
                    Value::Number(_) => {}
                    v => {
                        return Err(RuntimeError::TypeMismatch {
                            expected: "number",
                            found: v.display_text(),
                        })
                    }
                },
                Instr::Bin { op, dst, a, b } => {
                    let v = {
                        let av = self.scratch.get(base + a as usize)?;
                        let bv = self.scratch.get(base + b as usize)?;
                        apply_binop(op, av, bv)?
                    };
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::Neg { dst, src } => {
                    let v = match self.scratch.get(base + src as usize)? {
                        Value::Number(n) => Value::Number(-n),
                        v => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "number",
                                found: v.display_text(),
                            })
                        }
                    };
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::Not { dst, src } => {
                    let v = Value::Bool(!self.get_bool(base + src as usize)?);
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::IterNext {
                    list,
                    idx,
                    var,
                    exit,
                } => {
                    let i = match self.scratch.get(base + idx as usize)? {
                        Value::Number(n) => *n,
                        _ => return Err(BAD_CODE),
                    };
                    let item = match self.scratch.get(base + list as usize)? {
                        Value::List(items) => items.get(i as usize).cloned(),
                        v => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "list",
                                found: v.display_text(),
                            })
                        }
                    };
                    match item {
                        Some(v) => {
                            self.scratch.set(base + var as usize, v)?;
                            self.scratch
                                .set(base + idx as usize, Value::Number(i + 1.0))?;
                        }
                        None => pc = exit as usize,
                    }
                }
                Instr::Guard { op } => self.guard(op)?,
                Instr::GuardWidget { src, key } => {
                    if self.mode != Effect::State {
                        return Err(RuntimeError::EffectViolation {
                            op: "widget write",
                            mode: self.mode,
                        });
                    }
                    let k = match self.scratch.get(base + src as usize)? {
                        Value::WidgetRef(k) => *k,
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "widget slot reference",
                                found: other.display_text(),
                            })
                        }
                    };
                    self.scratch.set(base + key as usize, Value::WidgetRef(k))?;
                }
                Instr::PushEvent {
                    page,
                    base: b,
                    argc,
                } => {
                    let name = vmp.page_names.get(page as usize).ok_or(BAD_CODE)?.clone();
                    let argv = self
                        .scratch
                        .slice(base + b as usize, argc as usize)?
                        .to_vec();
                    let queue = self
                        .queue
                        .as_deref_mut()
                        .ok_or(RuntimeError::EffectViolation {
                            op: "push",
                            mode: Effect::Render,
                        })?;
                    queue.enqueue(Event::Push(name, Value::tuple(argv)));
                }
                Instr::PopEvent => {
                    if self.mode != Effect::State {
                        return Err(RuntimeError::EffectViolation {
                            op: "pop",
                            mode: self.mode,
                        });
                    }
                    let queue = self
                        .queue
                        .as_deref_mut()
                        .ok_or(RuntimeError::EffectViolation {
                            op: "pop",
                            mode: Effect::Render,
                        })?;
                    queue.enqueue(Event::Pop);
                }
                Instr::BoxEnter { id, cap, dst, skip } => {
                    // ER-BOXED, including the §5 reuse-hook splice.
                    if self.mode != Effect::Render || self.boxes.is_empty() {
                        return Err(RuntimeError::EffectViolation {
                            op: "boxed",
                            mode: self.mode,
                        });
                    }
                    let bid = BoxSourceId(id);
                    if self.hook.is_some() {
                        let locals = self.capture_locals(base, cap)?;
                        let cached = match self.hook.as_deref_mut() {
                            Some(hook) => hook.enter_boxed(bid, &locals),
                            None => None,
                        };
                        if let Some((node, value)) = cached {
                            self.cost.boxes_reused += node.box_count() as u64;
                            self.parent_frame()?.items.push(BoxItem::Child(node));
                            self.scratch.set(base + dst as usize, value)?;
                            pc = skip as usize;
                            continue;
                        }
                    }
                    self.cost.boxes_created += 1;
                    self.boxes.push(BoxNode::new(Some(bid)));
                }
                Instr::BoxExit { id, cap, src } => {
                    let node = self
                        .boxes
                        .pop()
                        .ok_or(RuntimeError::Internal("boxed frame missing"))?;
                    let value = self.scratch.get(base + src as usize)?.clone();
                    let node = Arc::new(node);
                    if self.hook.is_some() {
                        let locals = self.capture_locals(base, cap)?;
                        if let Some(hook) = self.hook.as_deref_mut() {
                            hook.after_boxed(BoxSourceId(id), &locals, &node, &value);
                        }
                    }
                    self.parent_frame()?.items.push(BoxItem::Child(node));
                }
                Instr::PostLeaf { src, prov } => {
                    let v = self.scratch.get(base + src as usize)?.clone();
                    let p = self.materialize_prov(base, prov)?;
                    self.cost.posts += 1;
                    self.parent_frame()?.items.push(BoxItem::Leaf(v, p));
                }
                Instr::SetAttr { attr, src, prov } => {
                    let v = self.scratch.get(base + src as usize)?.clone();
                    let p = self.materialize_prov(base, prov)?;
                    self.parent_frame()?.items.push(BoxItem::Attr(attr, v, p));
                }
                Instr::RememberBind { dst, id, done } => {
                    if self.mode != Effect::Render {
                        return Err(RuntimeError::EffectViolation {
                            op: "remember",
                            mode: self.mode,
                        });
                    }
                    let mode = self.mode;
                    let widgets =
                        self.widgets
                            .as_deref_mut()
                            .ok_or(RuntimeError::EffectViolation {
                                op: "remember (no widget store)",
                                mode,
                            })?;
                    let key = widgets.next_key(RememberId(id));
                    let exists = widgets.contains(key);
                    self.scratch
                        .set(base + dst as usize, Value::WidgetRef(key))?;
                    if exists {
                        pc = done as usize;
                    }
                }
                Instr::RememberInit { key, src } => {
                    let k = match self.scratch.get(base + key as usize)? {
                        Value::WidgetRef(k) => *k,
                        _ => return Err(BAD_CODE),
                    };
                    let v = self.scratch.get(base + src as usize)?.clone();
                    if let Some(widgets) = self.widgets.as_deref_mut() {
                        widgets.set(k, v);
                    }
                }
                Instr::WidgetGet { dst, src, name } => {
                    let k = match self.scratch.get(base + src as usize)? {
                        Value::WidgetRef(k) => *k,
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "widget slot reference",
                                found: other.display_text(),
                            })
                        }
                    };
                    let mode = self.mode;
                    let widgets = self
                        .widgets
                        .as_deref()
                        .ok_or(RuntimeError::EffectViolation {
                            op: "widget read (no widget store)",
                            mode,
                        })?;
                    let v = match widgets.get(k) {
                        Some(v) => v.clone(),
                        None => {
                            let n = self.sym_name(name)?.clone();
                            return Err(RuntimeError::UnknownLocal(n));
                        }
                    };
                    self.scratch.set(base + dst as usize, v)?;
                }
                Instr::WidgetSet { key, val } => {
                    let k = match self.scratch.get(base + key as usize)? {
                        Value::WidgetRef(k) => *k,
                        _ => return Err(BAD_CODE),
                    };
                    let v = self.scratch.get(base + val as usize)?.clone();
                    let mode = self.mode;
                    let widgets =
                        self.widgets
                            .as_deref_mut()
                            .ok_or(RuntimeError::EffectViolation {
                                op: "widget write (no widget store)",
                                mode,
                            })?;
                    widgets.set(k, v);
                }
                Instr::Ret { src } => {
                    return Ok(self.scratch.get(base + src as usize)?.clone());
                }
            }
        }
    }

    /// Hoisted effect-mode checks (run before operand evaluation, like
    /// bigstep's check-then-evaluate order).
    fn guard(&mut self, op: GuardOp) -> Result<(), RuntimeError> {
        let violation = |op| RuntimeError::EffectViolation {
            op,
            mode: self.mode,
        };
        match op {
            GuardOp::AssignGlobal => {
                if self.mode != Effect::State {
                    return Err(violation("g := e"));
                }
            }
            GuardOp::Push => {
                if self.mode != Effect::State {
                    return Err(violation("push"));
                }
            }
            GuardOp::Post => {
                if self.mode != Effect::Render || self.boxes.is_empty() {
                    return Err(violation("post"));
                }
            }
            GuardOp::Attr => {
                if self.mode != Effect::Render || self.boxes.is_empty() {
                    return Err(violation("box.a := e"));
                }
            }
        }
        Ok(())
    }

    /// Run a global's initializer chunk in an empty scope.
    fn run_init(&mut self, init_chunk: u32) -> Result<Value, RuntimeError> {
        let chunk = self.vmp.chunks.get(init_chunk as usize).ok_or(BAD_CODE)?;
        let regs = chunk.regs;
        let b = self.scratch.push_window(regs);
        let r = self.exec(init_chunk, b);
        self.scratch.pop_window(b);
        r
    }

    /// Apply a first-class callable to `argc` arguments already
    /// evaluated into registers `args_at..` — bigstep's `apply`.
    fn call_value(&mut self, f: Value, args_at: usize, argc: u16) -> Result<Value, RuntimeError> {
        self.tick()?;
        match f {
            Value::Closure(c) => {
                if c.params.len() != argc as usize {
                    return Err(RuntimeError::ArityMismatch {
                        expected: c.params.len(),
                        found: argc as usize,
                    });
                }
                // Closures made by this program version always resolve
                // (every lambda body is registered at compile time); a
                // miss means a cross-version closure leaked past the
                // entry pre-checks, which arrow-free store/page/widget
                // types rule out for checked programs.
                let l = self
                    .vmp
                    .lambda_for(&c.body)
                    .ok_or(RuntimeError::Internal("vm: foreign closure"))?;
                self.call_lambda(l, args_at, argc, Some(&c.env))
            }
            Value::Prim(p) => {
                if let Some(injector) = self.faults.as_deref_mut() {
                    if let Some(err) = injector.before_prim(p) {
                        return Err(err.into());
                    }
                }
                let args = self.scratch.slice(args_at, argc as usize)?;
                let v = p.apply(args, &mut self.cost.prim)?;
                Ok(v)
            }
            other => Err(RuntimeError::NotAFunction(other.display_text())),
        }
    }

    /// Invoke compiled lambda `l`: new window, env then args, run, pop.
    fn call_lambda(
        &mut self,
        l: u32,
        args_at: usize,
        argc: u16,
        env: Option<&Arc<Vec<(Name, Value)>>>,
    ) -> Result<Value, RuntimeError> {
        let vmp = self.vmp;
        let info = vmp.lambdas.get(l as usize).ok_or(BAD_CODE)?;
        let chunk_idx = info.chunk;
        let chunk = vmp.chunks.get(chunk_idx as usize).ok_or(BAD_CODE)?;
        let (regs, env_len, params) = (chunk.regs, chunk.env_len as usize, chunk.params);
        let got_env = env.map(|e| e.len()).unwrap_or(0);
        if got_env != env_len || argc != params {
            // The chunk's frame layout disagrees with the closure —
            // only possible for a foreign (cross-version) closure whose
            // captured environment has a different shape.
            return Err(RuntimeError::Internal("vm: foreign closure"));
        }
        let nbase = self.scratch.push_window(regs);
        if let Some(env) = env {
            for (i, (_, v)) in env.iter().enumerate() {
                self.scratch.set(nbase + i, v.clone())?;
            }
        }
        for i in 0..argc as usize {
            let v = self.scratch.get(args_at + i)?.clone();
            self.scratch.set(nbase + env_len + i, v)?;
        }
        let r = self.exec(chunk_idx, nbase);
        self.scratch.pop_window(nbase);
        r
    }

    /// Seed a window with entry bindings and run a root chunk — the VM
    /// half of `transition_state`/`transition_render` (no extra tick:
    /// the first instruction's tick mirrors the root node's).
    fn run_entry(
        &mut self,
        chunk_idx: u32,
        bindings: &[(Name, Value)],
    ) -> Result<Value, RuntimeError> {
        let chunk = self.vmp.chunks.get(chunk_idx as usize).ok_or(BAD_CODE)?;
        let regs = chunk.regs;
        let base = self.scratch.push_window(regs);
        for (i, (_, v)) in bindings.iter().enumerate() {
            self.scratch.set(base + i, v.clone())?;
        }
        let r = self.exec(chunk_idx, base);
        self.scratch.pop_window(base);
        r
    }

    /// Apply a handler thunk — bigstep's `apply` at the THUNK boundary.
    fn run_thunk(&mut self, thunk: &Value, args: &[Value]) -> Result<Value, RuntimeError> {
        self.tick()?;
        match thunk {
            Value::Closure(c) => {
                if c.params.len() != args.len() {
                    return Err(RuntimeError::ArityMismatch {
                        expected: c.params.len(),
                        found: args.len(),
                    });
                }
                let l = self
                    .vmp
                    .lambda_for(&c.body)
                    .ok_or(RuntimeError::Internal("vm: foreign closure"))?;
                let argc = args.len() as u16;
                let sbase = self.scratch.push_window(argc);
                for (i, v) in args.iter().enumerate() {
                    self.scratch.set(sbase + i, v.clone())?;
                }
                let r = self.call_lambda(l, sbase, argc, Some(&c.env));
                self.scratch.pop_window(sbase);
                r
            }
            Value::Prim(p) => {
                if let Some(injector) = self.faults.as_deref_mut() {
                    if let Some(err) = injector.before_prim(*p) {
                        return Err(err.into());
                    }
                }
                Ok(p.apply(args, &mut self.cost.prim)?)
            }
            other => Err(RuntimeError::NotAFunction(other.display_text())),
        }
    }

    fn stats(&self) -> RunStats {
        RunStats {
            instructions: self.instructions,
            arena_bytes: self.scratch.hiwater_bytes(),
        }
    }
}

/// Can the VM run this thunk? `None` when it cannot — decided before
/// any state is touched so bigstep can take over cleanly.
fn thunk_entry(vmp: &VmProgram, thunk: &Value, args: &[Value]) -> Option<()> {
    if args.len() > u16::MAX as usize {
        return None;
    }
    if let Value::Closure(c) = thunk {
        let l = vmp.lambda_for(&c.body)?;
        let info = vmp.lambdas.get(l as usize)?;
        let chunk = vmp.chunks.get(info.chunk as usize)?;
        if c.env.len() != chunk.env_len as usize {
            return None;
        }
    }
    // Prims and non-callables are fully handled by the VM (the latter
    // report `NotAFunction` exactly like bigstep).
    Some(())
}

/// Do the entry bindings line up with the compiled page's parameter
/// slots (same names, same order)?
fn bindings_match(params: &[crate::expr::ParamSig], bindings: &[(Name, Value)]) -> bool {
    params.len() == bindings.len()
        && params
            .iter()
            .zip(bindings)
            .all(|(p, (n, _))| Arc::ptr_eq(&p.name, n) || *p.name == **n)
}

/// VM counterpart of [`crate::bigstep::transition_thunk`]. Returns
/// `None` — with no state touched — when the thunk is outside the VM
/// subset (e.g. a closure from another program version).
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn transition_thunk(
    vmp: &VmProgram,
    scratch: &mut Scratch,
    store: &mut Store,
    queue: &mut EventQueue,
    version: u64,
    fuel: u64,
    thunk: &Value,
    args: &[Value],
    widgets: Option<&mut WidgetStore>,
    faults: Option<&mut (dyn FaultInjector + '_)>,
) -> Option<VmRun<Value>> {
    thunk_entry(vmp, thunk, args)?;
    scratch.begin();
    let mut faults = faults.map(crate::bigstep::ReborrowFaults);
    let mut vm = Vm {
        vmp,
        scratch,
        store: StoreView::Mut(store),
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        fuel,
        version,
        cost: Cost::default(),
        instructions: 0,
        hook: None,
        widgets,
        faults: faults.as_mut().map(|f| f as &mut dyn FaultInjector),
    };
    let result = vm.run_thunk(thunk, args);
    let (cost, stats) = (vm.cost, vm.stats());
    Some(VmRun {
        result,
        cost,
        stats,
    })
}

/// VM counterpart of [`crate::bigstep::transition_state`] for a page
/// `init` body. Returns `None` — with no state touched — when the page
/// or its bindings don't match the compiled program.
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn transition_page_init(
    vmp: &VmProgram,
    scratch: &mut Scratch,
    store: &mut Store,
    queue: &mut EventQueue,
    version: u64,
    fuel: u64,
    page: &str,
    bindings: &[(Name, Value)],
    widgets: Option<&mut WidgetStore>,
    faults: Option<&mut (dyn FaultInjector + '_)>,
) -> Option<VmRun<Value>> {
    let entry = vmp.pages.get(page)?;
    if !bindings_match(&entry.params, bindings) {
        return None;
    }
    let init_chunk = entry.init_chunk;
    scratch.begin();
    let mut faults = faults.map(crate::bigstep::ReborrowFaults);
    let mut vm = Vm {
        vmp,
        scratch,
        store: StoreView::Mut(store),
        queue: Some(queue),
        mode: Effect::State,
        boxes: Vec::new(),
        fuel,
        version,
        cost: Cost::default(),
        instructions: 0,
        hook: None,
        widgets,
        faults: faults.as_mut().map(|f| f as &mut dyn FaultInjector),
    };
    let result = vm.run_entry(init_chunk, bindings);
    let (cost, stats) = (vm.cost, vm.stats());
    Some(VmRun {
        result,
        cost,
        stats,
    })
}

/// VM counterpart of [`crate::bigstep::run_pure`] for a live example
/// chunk: evaluate example `index`'s body (or, with `expect` set, its
/// `expect` clause) in pure mode against a read-only store. Returns
/// `None` — with no state touched — when the index is out of range or
/// the example has no `expect` clause.
pub fn run_example(
    vmp: &VmProgram,
    scratch: &mut Scratch,
    store: &Store,
    version: u64,
    fuel: u64,
    index: usize,
    expect: bool,
) -> Option<VmRun<Value>> {
    let slot = vmp.examples.get(index)?;
    let chunk = if expect {
        slot.expect_chunk?
    } else {
        slot.body_chunk
    };
    scratch.begin();
    let mut vm = Vm {
        vmp,
        scratch,
        store: StoreView::Ref(store),
        queue: None,
        mode: Effect::Pure,
        boxes: Vec::new(),
        fuel,
        version,
        cost: Cost::default(),
        instructions: 0,
        hook: None,
        widgets: None,
        faults: None,
    };
    let result = vm.run_entry(chunk, &[]);
    let (cost, stats) = (vm.cost, vm.stats());
    Some(VmRun {
        result,
        cost,
        stats,
    })
}

/// VM counterpart of [`crate::bigstep::transition_render`]. Returns
/// `None` — with no state touched — when the page or its bindings don't
/// match the compiled program. The widget store's occurrence counters
/// must be reset (`begin_render`) by the caller, as with bigstep.
#[allow(clippy::too_many_arguments)] // mirrors the σ components + extras
pub fn transition_page_render(
    vmp: &VmProgram,
    scratch: &mut Scratch,
    store: &Store,
    version: u64,
    fuel: u64,
    page: &str,
    bindings: &[(Name, Value)],
    hook: Option<&mut (dyn RenderHook + '_)>,
    widgets: Option<&mut WidgetStore>,
    faults: Option<&mut (dyn FaultInjector + '_)>,
) -> Option<VmRun<BoxNode>> {
    let entry = vmp.pages.get(page)?;
    if !bindings_match(&entry.params, bindings) {
        return None;
    }
    let render_chunk = entry.render_chunk;
    scratch.begin();
    let mut spine = scratch.take_box_spine();
    spine.push(BoxNode::new(None));
    let mut hook = hook.map(crate::bigstep::ReborrowHook);
    let mut faults = faults.map(crate::bigstep::ReborrowFaults);
    let run = {
        let mut vm = Vm {
            vmp,
            scratch,
            store: StoreView::Ref(store),
            queue: None,
            mode: Effect::Render,
            boxes: spine,
            fuel,
            version,
            cost: Cost::default(),
            instructions: 0,
            hook: hook.as_mut().map(|h| h as &mut dyn RenderHook),
            widgets,
            faults: faults.as_mut().map(|f| f as &mut dyn FaultInjector),
        };
        let result = vm.run_entry(render_chunk, bindings).and_then(|_| {
            vm.boxes
                .pop()
                .ok_or(RuntimeError::Internal("top-level box frame missing"))
        });
        let (cost, stats) = (vm.cost, vm.stats());
        let spine = std::mem::take(&mut vm.boxes);
        (result, cost, stats, spine)
    };
    let (result, cost, stats, spine) = run;
    scratch.return_box_spine(spine);
    Some(VmRun {
        result,
        cost,
        stats,
    })
}
