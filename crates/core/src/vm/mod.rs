//! Register-based bytecode VM for the eval hot path (ROADMAP item 3).
//!
//! [`crate::bigstep`] is a tree walker: every evaluation step re-matches
//! an `ExprKind`, every variable reference scans the environment chain,
//! and every call clones name/value pairs into fresh `Vec` frames. This
//! module compiles a checked [`Program`] once into a compact
//! register-based bytecode ([`VmProgram`]) and executes transitions on a
//! pooled register stack ([`Scratch`]):
//!
//! * **Interning** — global names, page names, and every local binding
//!   name are interned into `u32` symbol IDs at compile time; the
//!   instruction stream carries only integers.
//! * **Slot resolution** — local variable lookups are resolved to frame
//!   slot indices by the compiler, eliminating the `lookup_local` walk
//!   entirely. The compile-time binding stack mirrors bigstep's
//!   flattened scope chain exactly (shadowed entries included), so
//!   closure environments and render-hook capture lists are
//!   byte-identical to the tree walker's.
//! * **Arena frames** — per-frame `Value`s live in one contiguous
//!   register stack with an epoch reset per transition
//!   ([`Scratch::begin`]); the render spine (`Vec<BoxNode>`) is pooled
//!   the same way.
//!
//! # Relationship to the oracles
//!
//! The VM is an *optimization*, never a semantic fork: for every
//! transition it must produce the same `Result`, the same store/queue/
//! widget effects, and byte-identical rendered frames as
//! [`crate::bigstep`], which in turn is cross-checked against the
//! substitution machine in [`crate::smallstep`]. Anything the compiler
//! cannot prove it can reproduce exactly — unresolvable names, foreign
//! closures from another program version — falls back to bigstep at the
//! transition boundary instead of approximating (see
//! [`crate::system::EvalEngine`]). `tests/vm_differential.rs` holds the
//! three-way differential walk.

mod arena;
mod compile;
mod exec;

pub use arena::Scratch;
pub use compile::CompileError;
pub use exec::{
    run_example, transition_page_init, transition_page_render, transition_thunk, RunStats, VmRun,
};

use std::collections::HashMap;
use std::sync::Arc;

use alive_syntax::ast::BinOp;
use alive_syntax::Span;

use crate::attr::Attr;
use crate::expr::Expr;
use crate::program::Program;
use crate::types::{Effect, Name};
use crate::value::Value;

/// A register index within the current frame window.
pub(crate) type Reg = u16;

/// One bytecode instruction. Register operands are frame-relative; the
/// executor adds the window base. Jump targets are absolute pcs within
/// the chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Instr {
    /// `dst = consts[k]`.
    Const { dst: Reg, k: u32 },
    /// `dst = src`.
    Move { dst: Reg, src: Reg },
    /// `dst = store[globals[g]]`, running the interned initializer
    /// chunk on a store miss (EP-GLOBAL-2).
    Global { dst: Reg, g: u32 },
    /// `store[globals[g]] = src` (guarded by [`GuardOp::AssignGlobal`]).
    SetGlobal { g: u32, src: Reg },
    /// `dst = closure(lambdas[l])`, capturing registers listed in the
    /// lambda's capture set.
    MakeClosure { dst: Reg, l: u32 },
    /// `dst = (r[base], …, r[base+len-1])`.
    MakeTuple { dst: Reg, base: Reg, len: u16 },
    /// `dst = [r[base], …, r[base+len-1]]`.
    MakeList { dst: Reg, base: Reg, len: u16 },
    /// `dst = src.index` (1-based tuple projection).
    Proj { dst: Reg, src: Reg, index: u32 },
    /// `dst = r[callee](r[base] … r[base+argc-1])`.
    Call {
        dst: Reg,
        callee: Reg,
        base: Reg,
        argc: u16,
    },
    /// Direct call of a statically resolved function — no intermediate
    /// closure value is allocated.
    CallFun {
        dst: Reg,
        l: u32,
        base: Reg,
        argc: u16,
    },
    /// Unconditional jump (fuel-free; cannot loop without a ticking
    /// condition instruction in between).
    Jump { to: u32 },
    /// Jump if `cond` is `false`; errors like `eval_bool` on non-bools.
    JumpIfFalse { cond: Reg, to: u32 },
    /// Jump if `cond` is `true`; errors like `eval_bool` on non-bools.
    JumpIfTrue { cond: Reg, to: u32 },
    /// Assert `src` is a bool (the `&&`/`||` right operand check).
    CheckBool { src: Reg },
    /// Assert `src` is a number (`for` bound checks).
    CheckNum { src: Reg },
    /// `dst = a op b` for non-short-circuit operators.
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = -src` (number-checked).
    Neg { dst: Reg, src: Reg },
    /// `dst = !src` (bool-checked).
    Not { dst: Reg, src: Reg },
    /// Foreach step: if `idx < len(list)` then `var = list[idx]; idx += 1`
    /// else jump to `exit`. Errors like bigstep on non-lists.
    IterNext {
        list: Reg,
        idx: Reg,
        var: Reg,
        exit: u32,
    },
    /// Effect-mode check, emitted *before* operand evaluation to match
    /// the tree walker's check-then-evaluate order.
    Guard { op: GuardOp },
    /// Widget-write guard: state-mode check plus `src` must hold a
    /// `WidgetRef`, which is copied to `key` so the slot key is pinned
    /// before the value expression runs (bigstep resolves it first).
    GuardWidget { src: Reg, key: Reg },
    /// Enqueue `Event::Push(pages[page], (args…))`.
    PushEvent { page: u32, base: Reg, argc: u16 },
    /// Enqueue `Event::Pop` (carries its own mode/queue checks).
    PopEvent,
    /// Open `boxed` frame `id`; on a render-hook cache hit, splice the
    /// cached subtree, write the cached value to `dst`, and jump `skip`.
    BoxEnter {
        id: u32,
        cap: u32,
        dst: Reg,
        skip: u32,
    },
    /// Close the current `boxed` frame; the body value is in `src`.
    BoxExit { id: u32, cap: u32, src: Reg },
    /// `post` the value in `src` as a leaf of the open box. `prov`
    /// indexes the program's [`ProvSpec`] table; the executor
    /// materializes it into a [`crate::provenance::Provenance`] by
    /// reading the listed registers *at this instruction* — after the
    /// operand ran, matching bigstep's lookup-after-eval order.
    PostLeaf { src: Reg, prov: u32 },
    /// `box.attr := src` on the open box (`prov` as in `PostLeaf`).
    SetAttr { attr: Attr, src: Reg, prov: u32 },
    /// `remember` slot bind: allocate the occurrence key for `id`, put
    /// its `WidgetRef` in `dst`, and jump `done` if the slot already
    /// holds a value (skipping the initializer).
    RememberBind { dst: Reg, id: u32, done: u32 },
    /// Store `src` into the widget slot referenced by `key` (the
    /// `remember` initializer commit).
    RememberInit { key: Reg, src: Reg },
    /// `dst = widgets[r[src]]`; `name` is the surface binding for the
    /// `UnknownLocal` error on a missing slot.
    WidgetGet { dst: Reg, src: Reg, name: u32 },
    /// `widgets[r[key]] = r[val]`.
    WidgetSet { key: Reg, val: Reg },
    /// Return `src` from the current chunk (fuel-free).
    Ret { src: Reg },
}

/// Mode checks hoisted before operand evaluation (ES-ASSIGN, ES-PUSH,
/// ER-POST, ER-ATTR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GuardOp {
    /// `g := e` requires state mode.
    AssignGlobal,
    /// `push p(…)` requires state mode (page existence is compile-time).
    Push,
    /// `post e` requires render mode with an open box.
    Post,
    /// `box.a := e` requires render mode with an open box.
    Attr,
}

/// Compile-time provenance for one `post`/`box.a :=` operand: the
/// literal's span, or the expression span plus its free locals resolved
/// to `(symbol, register)` pairs in [`crate::provenance::free_locals`]
/// order — the compile-time mirror of bigstep's `provenance_of`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ProvSpec {
    /// The operand is a literal occurrence.
    Literal(Span),
    /// The operand is a computed expression with the given free locals.
    Expr {
        /// Span of the operand expression.
        span: Span,
        /// Free locals as `(symbol, frame register)`.
        free: Arc<[(u32, Reg)]>,
    },
}

/// One compiled body: a straight-line instruction vector plus its frame
/// shape. Frame layout is `[captured env | params | lets and temps]`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Chunk {
    pub code: Vec<Instr>,
    /// Registers the frame window needs.
    pub regs: u16,
    /// Leading registers filled from a closure environment.
    pub env_len: u16,
    /// Registers after the environment filled from call arguments.
    pub params: u16,
}

/// Compile-time metadata for one lambda or named function.
#[derive(Debug, Clone)]
pub(crate) struct LambdaInfo {
    pub chunk: u32,
    pub params: Arc<[crate::expr::ParamSig]>,
    pub effect: Effect,
    /// The source body — closures built by the VM share this `Arc`, so
    /// bigstep can apply them and the executor can recognize its own
    /// closures by pointer.
    pub body: Arc<Expr>,
    /// `(symbol, register)` pairs to capture, in bigstep `capture_env`
    /// order (outermost first, shadowed entries included).
    pub captures: Arc<[(u32, Reg)]>,
}

/// One interned global: its name and initializer chunk.
#[derive(Debug, Clone)]
pub(crate) struct GlobalSlot {
    pub name: Name,
    pub init_chunk: u32,
}

/// One compiled live example: its pure body chunk (slot order matches
/// `Program::examples()`, so names live on the `Program` side).
#[derive(Debug, Clone)]
pub(crate) struct ExampleSlot {
    pub body_chunk: u32,
    /// The `expect` clause's chunk, when the example is self-checking.
    pub expect_chunk: Option<u32>,
}

/// Compiled entry points for one page.
#[derive(Debug, Clone)]
pub(crate) struct PageEntry {
    pub init_chunk: u32,
    pub render_chunk: u32,
    pub params: Arc<[crate::expr::ParamSig]>,
}

/// A whole program compiled to bytecode. Immutable and `Arc`-shared;
/// built once per program version via [`Program::vm`].
#[derive(Debug)]
pub struct VmProgram {
    pub(crate) chunks: Vec<Chunk>,
    pub(crate) consts: Vec<Value>,
    pub(crate) lambdas: Vec<LambdaInfo>,
    /// Render-hook capture sets for `boxed` sites.
    pub(crate) captures: Vec<Arc<[(u32, Reg)]>>,
    /// Constant-provenance table indexed by the `prov` operand of
    /// `PostLeaf`/`SetAttr`.
    pub(crate) provs: Vec<ProvSpec>,
    pub(crate) globals: Vec<GlobalSlot>,
    pub(crate) examples: Vec<ExampleSlot>,
    pub(crate) page_names: Vec<Name>,
    /// The intern table: symbol ID → name.
    pub(crate) syms: Vec<Name>,
    pub(crate) pages: HashMap<Name, PageEntry>,
    /// `Arc::as_ptr` of a lambda/function body → lambda index, for
    /// dispatching closure calls without comparing expressions.
    pub(crate) by_body: HashMap<usize, u32>,
    compile_us: u64,
}

impl VmProgram {
    /// Compile `program` to bytecode. Errors mean "this program (or one
    /// construct in it) is outside the VM subset" — the caller falls
    /// back to the tree walker, it is never a user-visible failure.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on unresolvable names (programs that bypassed
    /// the type checker) or compiler capacity limits.
    pub fn compile(program: &Program) -> Result<VmProgram, CompileError> {
        let start = std::time::Instant::now();
        let mut vmp = compile::compile_program(program)?;
        vmp.compile_us = start.elapsed().as_micros() as u64;
        Ok(vmp)
    }

    pub(crate) fn new_empty() -> VmProgram {
        VmProgram {
            chunks: Vec::new(),
            consts: Vec::new(),
            lambdas: Vec::new(),
            captures: Vec::new(),
            provs: Vec::new(),
            globals: Vec::new(),
            examples: Vec::new(),
            page_names: Vec::new(),
            syms: Vec::new(),
            pages: HashMap::new(),
            by_body: HashMap::new(),
            compile_us: 0,
        }
    }

    /// Wall-clock microseconds the bytecode compile took.
    pub fn compile_us(&self) -> u64 {
        self.compile_us
    }

    /// Number of interned symbols (names).
    pub fn symbol_count(&self) -> usize {
        self.syms.len()
    }

    /// Number of compiled chunks (function/page/global bodies).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total instructions across all chunks.
    pub fn instruction_count(&self) -> usize {
        self.chunks.iter().map(|c| c.code.len()).sum()
    }

    /// The lambda index for a closure body created by this program (or
    /// by bigstep from the same program version), if any.
    pub(crate) fn lambda_for(&self, body: &Arc<Expr>) -> Option<u32> {
        self.by_body.get(&(Arc::as_ptr(body) as usize)).copied()
    }
}
