//! Pooled evaluation scratch for the bytecode VM.
//!
//! The VM evaluates every call frame on one contiguous register stack:
//! [`Scratch::push_window`] reserves a frame's registers at the top and
//! [`Scratch::pop_window`] releases them, so a whole transition performs
//! at most a handful of `Vec` growths and zero per-value heap
//! allocations for locals. The backing storage is an epoch arena: each
//! transition calls [`Scratch::begin`], which bumps the epoch and
//! resets the *length* but keeps the *capacity*, mirroring the
//! two-generation `LayoutCache` eviction — memory stays warm across the
//! RENDER loop instead of being reallocated per frame.
//!
//! The same object pools the render spine: the `Vec<BoxNode>` of open
//! box frames is borrowed per run ([`Scratch::take_box_spine`]) and
//! returned cleared, so steady-state renders reuse its capacity too.

use crate::boxtree::BoxNode;
use crate::error::RuntimeError;
use crate::value::Value;

/// Reusable register/arena storage for one session's VM runs.
///
/// A `Scratch` is *not* part of the semantic state: cloning a system for
/// a transaction checkpoint yields a fresh, empty pool (capacity is a
/// cache, never data), and two runs with different pools are
/// byte-identical in every observable output.
#[derive(Debug, Default)]
pub struct Scratch {
    regs: Vec<Value>,
    box_spine: Vec<BoxNode>,
    hiwater: usize,
    epochs: u64,
}

/// Checkpoint clones must not drag pooled capacity along — a clone is a
/// fresh pool that warms up on first use.
impl Clone for Scratch {
    fn clone(&self) -> Self {
        Scratch::new()
    }
}

impl Scratch {
    /// A new, empty pool.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Start a new epoch: drop all live windows, keep capacity.
    pub(crate) fn begin(&mut self) {
        self.epochs = self.epochs.wrapping_add(1);
        self.regs.clear();
    }

    /// Reserve `n` registers at the top of the stack, initialized to a
    /// filler value, returning the window's base index.
    pub(crate) fn push_window(&mut self, n: u16) -> usize {
        let base = self.regs.len();
        self.regs.resize(base + n as usize, Value::Bool(false));
        if self.regs.len() > self.hiwater {
            self.hiwater = self.regs.len();
        }
        base
    }

    /// Release every register at or above `base`.
    pub(crate) fn pop_window(&mut self, base: usize) {
        self.regs.truncate(base);
    }

    /// Read register `i` (absolute index).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Result<&Value, RuntimeError> {
        self.regs
            .get(i)
            .ok_or(RuntimeError::Internal("vm: register out of range"))
    }

    /// Write register `i` (absolute index).
    #[inline]
    pub(crate) fn set(&mut self, i: usize, v: Value) -> Result<(), RuntimeError> {
        match self.regs.get_mut(i) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(RuntimeError::Internal("vm: register out of range")),
        }
    }

    /// A contiguous run of `n` registers starting at absolute index
    /// `base` — used to pass primitive arguments without re-collecting
    /// them into a fresh `Vec`.
    #[inline]
    pub(crate) fn slice(&self, base: usize, n: usize) -> Result<&[Value], RuntimeError> {
        self.regs
            .get(base..base + n)
            .ok_or(RuntimeError::Internal("vm: register out of range"))
    }

    /// Borrow the pooled render spine (open box frames) for one run.
    pub(crate) fn take_box_spine(&mut self) -> Vec<BoxNode> {
        let mut spine = std::mem::take(&mut self.box_spine);
        spine.clear();
        spine
    }

    /// Return the render spine after a run, keeping its capacity.
    pub(crate) fn return_box_spine(&mut self, mut spine: Vec<BoxNode>) {
        spine.clear();
        self.box_spine = spine;
    }

    /// High-water mark of live register bytes across all epochs.
    pub fn hiwater_bytes(&self) -> u64 {
        (self.hiwater * std::mem::size_of::<Value>()) as u64
    }

    /// Number of epochs started (transitions run on this pool).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_stack_and_reset_keeps_capacity() {
        let mut s = Scratch::new();
        s.begin();
        let a = s.push_window(4);
        assert_eq!(a, 0);
        s.set(0, Value::Number(1.0)).unwrap();
        let b = s.push_window(2);
        assert_eq!(b, 4);
        s.set(4, Value::Number(2.0)).unwrap();
        assert_eq!(s.get(0).unwrap(), &Value::Number(1.0));
        s.pop_window(b);
        assert!(s.get(4).is_err());
        assert_eq!(s.hiwater_bytes(), 6 * std::mem::size_of::<Value>() as u64);
        s.begin();
        assert_eq!(s.epochs(), 2);
        assert!(s.get(0).is_err());
        // Capacity is retained; high-water survives the epoch reset.
        assert_eq!(s.hiwater_bytes(), 6 * std::mem::size_of::<Value>() as u64);
    }

    #[test]
    fn clone_is_a_fresh_pool() {
        let mut s = Scratch::new();
        s.begin();
        s.push_window(8);
        let c = s.clone();
        assert_eq!(c.epochs(), 0);
        assert_eq!(c.hiwater_bytes(), 0);
    }
}
