//! Programs — the paper's code component `C` (Figure 7).
//!
//! `d ::= global g : τ = v | fun f : τ is e | page p(τ) init e1 render e2`

use crate::expr::{Expr, ParamSig};
use crate::types::{Effect, FnType, Name, Type};
use alive_syntax::Span;
use std::collections::HashMap;
use std::sync::Arc;

/// `global g : τ = e` — a global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Variable name.
    pub name: Name,
    /// Declared →-free type.
    pub ty: Type,
    /// Pure initializer expression.
    pub init: Arc<Expr>,
    /// Source span of the definition.
    pub span: Span,
}

/// `fun f : τ is e` — a global function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Function name.
    pub name: Name,
    /// Parameters.
    pub params: Arc<[ParamSig]>,
    /// Declared return type.
    pub ret: Type,
    /// Latent effect.
    pub effect: Effect,
    /// Body expression.
    pub body: Arc<Expr>,
    /// Source span of the definition.
    pub span: Span,
}

impl FunDef {
    /// The function's type `(τ1, ..., τn) →µ τ`.
    pub fn fn_type(&self) -> FnType {
        FnType {
            params: self.params.iter().map(|p| p.ty.clone()).collect(),
            effect: self.effect,
            ret: self.ret.clone(),
        }
    }
}

/// `page p(τ) init e1 render e2` — a page definition.
#[derive(Debug, Clone, PartialEq)]
pub struct PageDef {
    /// Page name.
    pub name: Name,
    /// Page parameters; the page argument value is the tuple of these.
    pub params: Arc<[ParamSig]>,
    /// Initialization body (state effect; runs once on push).
    pub init: Arc<Expr>,
    /// Render body (render effect; re-runs on every refresh).
    pub render: Arc<Expr>,
    /// Source span of the definition.
    pub span: Span,
}

impl PageDef {
    /// The type of the page's argument tuple (→-free by T-C-PAGE).
    pub fn arg_type(&self) -> Type {
        Type::tuple(self.params.iter().map(|p| p.ty.clone()).collect())
    }
}

/// `example e = body [expect e']` — a Babylonian live example: a pure
/// expression re-evaluated continuously while the program is edited,
/// with an optional self-checking expected value.
#[derive(Debug, Clone, PartialEq)]
pub struct ExampleDef {
    /// Example (probe) name.
    pub name: Name,
    /// The probed pure expression.
    pub body: Arc<Expr>,
    /// Optional expected value expression (pure).
    pub expect: Option<Arc<Expr>>,
    /// Source span of the definition.
    pub span: Span,
}

/// The name of the page every program starts on (rule STARTUP / T-SYS).
pub const START_PAGE: &str = "start";

/// A complete program `C`, after lowering from surface syntax.
#[derive(Debug, Clone, Default)]
pub struct Program {
    globals: Vec<GlobalDef>,
    funs: Vec<FunDef>,
    pages: Vec<PageDef>,
    examples: Vec<ExampleDef>,
    global_index: HashMap<Name, usize>,
    fun_index: HashMap<Name, usize>,
    page_index: HashMap<Name, usize>,
    /// Span of each `boxed` statement, indexed by [`crate::expr::BoxSourceId`].
    pub box_spans: Vec<Span>,
    /// Span of each `remember` statement, indexed by
    /// [`crate::expr::RememberId`].
    pub remember_spans: Vec<Span>,
    /// Lazily compiled bytecode for this program version (`None` once
    /// initialized means the program is outside the VM subset and runs
    /// on the tree walker). Every mutator resets this cache.
    vm_cache: std::sync::OnceLock<Option<Arc<crate::vm::VmProgram>>>,
}

impl Program {
    /// An empty program (no definitions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a global definition. Returns `false` (and ignores the
    /// definition) if the name is already taken in any namespace.
    pub fn add_global(&mut self, def: GlobalDef) -> bool {
        if self.is_defined(&def.name) {
            return false;
        }
        self.vm_cache = std::sync::OnceLock::new();
        self.global_index
            .insert(def.name.clone(), self.globals.len());
        self.globals.push(def);
        true
    }

    /// Add a function definition. Returns `false` on duplicate names.
    pub fn add_fun(&mut self, def: FunDef) -> bool {
        if self.is_defined(&def.name) {
            return false;
        }
        self.vm_cache = std::sync::OnceLock::new();
        self.fun_index.insert(def.name.clone(), self.funs.len());
        self.funs.push(def);
        true
    }

    /// Add a page definition. Returns `false` on duplicate names.
    pub fn add_page(&mut self, def: PageDef) -> bool {
        if self.is_defined(&def.name) {
            return false;
        }
        self.vm_cache = std::sync::OnceLock::new();
        self.page_index.insert(def.name.clone(), self.pages.len());
        self.pages.push(def);
        true
    }

    /// Add a live example definition. Returns `false` when another
    /// example already uses the name (examples have their own
    /// namespace: an example may legally probe a global of the same
    /// name).
    pub fn add_example(&mut self, def: ExampleDef) -> bool {
        if self.examples.iter().any(|e| e.name == def.name) {
            return false;
        }
        self.vm_cache = std::sync::OnceLock::new();
        self.examples.push(def);
        true
    }

    /// Whether any definition uses this name (T-C-* uniqueness).
    pub fn is_defined(&self, name: &str) -> bool {
        self.global_index.contains_key(name)
            || self.fun_index.contains_key(name)
            || self.page_index.contains_key(name)
    }

    /// Look up a global definition.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.global_index.get(name).map(|&i| &self.globals[i])
    }

    /// Look up a function definition.
    pub fn fun(&self, name: &str) -> Option<&FunDef> {
        self.fun_index.get(name).map(|&i| &self.funs[i])
    }

    /// Look up a page definition — the paper's `C(p) = (fi, fr)`.
    pub fn page(&self, name: &str) -> Option<&PageDef> {
        self.page_index.get(name).map(|&i| &self.pages[i])
    }

    /// All globals, in definition order.
    pub fn globals(&self) -> &[GlobalDef] {
        &self.globals
    }

    /// All functions, in definition order.
    pub fn funs(&self) -> &[FunDef] {
        &self.funs
    }

    /// All pages, in definition order.
    pub fn pages(&self) -> &[PageDef] {
        &self.pages
    }

    /// All live examples, in definition order.
    pub fn examples(&self) -> &[ExampleDef] {
        &self.examples
    }

    /// Allocate a fresh box-source id for a `boxed` statement at `span`.
    pub fn alloc_box_source(&mut self, span: Span) -> crate::expr::BoxSourceId {
        let id = crate::expr::BoxSourceId(self.box_spans.len() as u32);
        self.vm_cache = std::sync::OnceLock::new();
        self.box_spans.push(span);
        id
    }

    /// The span of a `boxed` statement, for navigation.
    pub fn box_span(&self, id: crate::expr::BoxSourceId) -> Option<Span> {
        self.box_spans.get(id.0 as usize).copied()
    }

    /// Allocate a fresh id for a `remember` statement at `span`.
    pub fn alloc_remember(&mut self, span: Span) -> crate::expr::RememberId {
        let id = crate::expr::RememberId(self.remember_spans.len() as u32);
        self.vm_cache = std::sync::OnceLock::new();
        self.remember_spans.push(span);
        id
    }

    /// The span of a `remember` statement.
    pub fn remember_span(&self, id: crate::expr::RememberId) -> Option<Span> {
        self.remember_spans.get(id.0 as usize).copied()
    }

    /// The program compiled to bytecode, compiling on first use and
    /// caching the result for the lifetime of this program version
    /// (mutators invalidate). `None` means the program is outside the
    /// VM subset and must run on the tree walker — which preserves
    /// semantics exactly, since the VM is only ever an optimization.
    pub fn vm(&self) -> Option<Arc<crate::vm::VmProgram>> {
        self.vm_cache
            .get_or_init(|| crate::vm::VmProgram::compile(self).ok().map(Arc::new))
            .clone()
    }

    /// Whether the bytecode cache is already populated (successfully or
    /// not) — i.e. whether the next [`Program::vm`] call is free.
    pub fn vm_ready(&self) -> bool {
        self.vm_cache.get().is_some()
    }

    /// Total node count across all bodies (a size metric for benches).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        for g in &self.globals {
            n += g.init.node_count();
        }
        for f in &self.funs {
            n += f.body.node_count();
        }
        for p in &self.pages {
            n += p.init.node_count() + p.render.node_count();
        }
        for e in &self.examples {
            n += e.body.node_count();
            if let Some(expect) = &e.expect {
                n += expect.node_count();
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprKind;

    fn unit_expr() -> Arc<Expr> {
        Arc::new(Expr::unit(Span::DUMMY))
    }

    #[test]
    fn duplicate_names_rejected_across_namespaces() {
        let mut p = Program::new();
        assert!(p.add_global(GlobalDef {
            name: Arc::from("x"),
            ty: Type::Number,
            init: Arc::new(Expr::new(ExprKind::Num(0.0), Span::DUMMY)),
            span: Span::DUMMY,
        }));
        // A page named `x` clashes with the global `x`.
        assert!(!p.add_page(PageDef {
            name: Arc::from("x"),
            params: Arc::from(Vec::new()),
            init: unit_expr(),
            render: unit_expr(),
            span: Span::DUMMY,
        }));
        assert!(p.is_defined("x"));
        assert!(p.global("x").is_some());
        assert!(p.page("x").is_none());
    }

    #[test]
    fn page_arg_type_is_param_tuple() {
        let page = PageDef {
            name: Arc::from("detail"),
            params: Arc::from(vec![
                ParamSig::new("addr", Type::String),
                ParamSig::new("price", Type::Number),
            ]),
            init: unit_expr(),
            render: unit_expr(),
            span: Span::DUMMY,
        };
        assert_eq!(
            page.arg_type(),
            Type::tuple(vec![Type::String, Type::Number])
        );
        assert!(page.arg_type().is_arrow_free());
    }

    #[test]
    fn box_source_allocation() {
        let mut p = Program::new();
        let a = p.alloc_box_source(Span::new(1, 5));
        let b = p.alloc_box_source(Span::new(7, 9));
        assert_ne!(a, b);
        assert_eq!(p.box_span(a), Some(Span::new(1, 5)));
        assert_eq!(p.box_span(b), Some(Span::new(7, 9)));
        assert_eq!(p.box_span(crate::expr::BoxSourceId(99)), None);
    }
}
