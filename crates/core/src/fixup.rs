//! State fix-up on code update — the paper's Figure 12.
//!
//! When the UPDATE transition swaps in new code `C'`, the store and page
//! stack are *fixed up* against `C'`: entries that no longer type-check
//! are deleted (`S-SKIP`, `P-SKIP`), everything else is kept verbatim
//! (`S-OKAY`, `P-OKAY`). "Essentially, it just deletes whatever does not
//! type." (§4.3)

use crate::program::Program;
use crate::store::Store;
use crate::types::Name;
use crate::value::Value;
use std::fmt;

/// Why a store or page-stack entry was dropped during fix-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropReason {
    /// The definition no longer exists in the new code (`g ∉ C'`, `p ∉ C'`).
    NoLongerDefined,
    /// The value no longer has the declared type (`C'; ε ⊬s v : τ`).
    TypeChanged,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropReason::NoLongerDefined => "no longer defined",
            DropReason::TypeChanged => "declared type changed",
        })
    }
}

/// A report of what the fix-up did, for the live environment's UI and
/// for tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FixupReport {
    /// Globals kept with their values (`S-OKAY`).
    pub kept_globals: Vec<Name>,
    /// Globals dropped, with reasons (`S-SKIP`).
    pub dropped_globals: Vec<(Name, DropReason)>,
    /// Page-stack entries kept (`P-OKAY`), by page name.
    pub kept_pages: Vec<Name>,
    /// Page-stack entries dropped (`P-SKIP`), with reasons.
    pub dropped_pages: Vec<(Name, DropReason)>,
}

impl FixupReport {
    /// Whether anything was dropped.
    pub fn dropped_anything(&self) -> bool {
        !self.dropped_globals.is_empty() || !self.dropped_pages.is_empty()
    }
}

/// Fix up a store against new code: `C' : S ▷ S'` (rules S-EMPTY,
/// S-SKIP, S-OKAY). Returns the new store and the decisions taken.
pub fn fixup_store(new_program: &Program, old: &Store) -> (Store, FixupReport) {
    let mut report = FixupReport::default();
    let mut kept = Store::new();
    for (name, value) in old.iter() {
        match new_program.global(name) {
            None => {
                report
                    .dropped_globals
                    .push((name.clone(), DropReason::NoLongerDefined));
            }
            Some(def) if !value.has_type(&def.ty) => {
                report
                    .dropped_globals
                    .push((name.clone(), DropReason::TypeChanged));
            }
            Some(_) => {
                report.kept_globals.push(name.clone());
                kept.set(name, value.clone());
            }
        }
    }
    (kept, report)
}

/// Fix up a page stack against new code: `C' : P ▷ P'` (rules P-EMPTY,
/// P-SKIP, P-OKAY). Appends decisions to `report`.
pub fn fixup_pages(
    new_program: &Program,
    old: &[(Name, Value)],
    report: &mut FixupReport,
) -> Vec<(Name, Value)> {
    let mut kept = Vec::new();
    for (page_name, arg) in old {
        match new_program.page(page_name) {
            None => {
                report
                    .dropped_pages
                    .push((page_name.clone(), DropReason::NoLongerDefined));
            }
            Some(def) if !arg.has_type(&def.arg_type()) => {
                report
                    .dropped_pages
                    .push((page_name.clone(), DropReason::TypeChanged));
            }
            Some(_) => {
                report.kept_pages.push(page_name.clone());
                kept.push((page_name.clone(), arg.clone()));
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use std::sync::Arc;

    fn name(s: &str) -> Name {
        Arc::from(s)
    }

    #[test]
    fn keeps_well_typed_entries() {
        let new = compile(
            "global count : number = 0
             page start() { render { } }",
        )
        .expect("compiles");
        let mut old = Store::new();
        old.set("count", Value::Number(42.0));
        let (fixed, report) = fixup_store(&new, &old);
        assert_eq!(fixed.get("count"), Some(&Value::Number(42.0)));
        assert_eq!(report.kept_globals, vec![name("count")]);
        assert!(!report.dropped_anything());
    }

    #[test]
    fn drops_undefined_globals() {
        let new = compile("page start() { render { } }").expect("compiles");
        let mut old = Store::new();
        old.set("ghost", Value::Number(1.0));
        let (fixed, report) = fixup_store(&new, &old);
        assert!(fixed.is_empty());
        assert_eq!(
            report.dropped_globals,
            vec![(name("ghost"), DropReason::NoLongerDefined)]
        );
    }

    #[test]
    fn drops_retyped_globals() {
        // `count` used to be a number; the new code declares it a string.
        let new = compile(
            "global count : string = \"zero\"
             page start() { render { } }",
        )
        .expect("compiles");
        let mut old = Store::new();
        old.set("count", Value::Number(42.0));
        let (fixed, report) = fixup_store(&new, &old);
        assert!(!fixed.contains("count"));
        assert_eq!(
            report.dropped_globals,
            vec![(name("count"), DropReason::TypeChanged)]
        );
    }

    #[test]
    fn page_stack_fixup_mirrors_store_fixup() {
        let new = compile(
            "page start() { render { } }
             page detail(addr: string, price: number) { render { } }",
        )
        .expect("compiles");
        let old_stack = vec![
            (name("start"), Value::unit()),
            (
                name("detail"),
                Value::tuple(vec![Value::str("12 Oak"), Value::Number(5.0)]),
            ),
            (name("gone"), Value::unit()),
            (
                name("detail"),
                Value::tuple(vec![Value::Number(1.0), Value::Number(2.0)]),
            ),
        ];
        let mut report = FixupReport::default();
        let kept = fixup_pages(&new, &old_stack, &mut report);
        assert_eq!(kept.len(), 2);
        assert_eq!(&*kept[0].0, "start");
        assert_eq!(&*kept[1].0, "detail");
        assert_eq!(
            report.dropped_pages,
            vec![
                (name("gone"), DropReason::NoLongerDefined),
                (name("detail"), DropReason::TypeChanged),
            ]
        );
    }

    #[test]
    fn empty_inputs_fix_to_empty() {
        let new = compile("page start() { render { } }").expect("compiles");
        let (fixed, report) = fixup_store(&new, &Store::new());
        assert!(fixed.is_empty());
        let mut r = FixupReport::default();
        assert!(fixup_pages(&new, &[], &mut r).is_empty());
        assert!(!report.dropped_anything());
    }
}
