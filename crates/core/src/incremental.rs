//! Incremental compilation: the per-keystroke pipeline with an
//! item-granular parse cache (see [`alive_syntax::incremental`]).
//!
//! Lowering and type checking re-run in full — they are an order of
//! magnitude cheaper than parsing (experiment E5) — so the result is
//! always byte-identical to [`crate::compile`] while the dominant cost
//! scales with the *edit*, not the program.

use crate::lower::lower_program;
use crate::program::Program;
use crate::typeck::check_program;
use alive_syntax::{Diagnostics, IncrementalParser};

/// A compiler with per-item parse caching across calls.
///
/// ```
/// use alive_core::IncrementalCompiler;
///
/// let mut compiler = IncrementalCompiler::new();
/// let v1 = "global n : number = 1
///     fun f(x : number) : number pure { x + n }
///     page start() { render { post f(1); } }";
/// compiler.compile(v1).expect("compiles");
///
/// // One keystroke later: only the edited item re-parses.
/// let v2 = v1.replace("x + n", "x * n");
/// compiler.compile(&v2).expect("compiles");
/// let (reused, parsed) = compiler.stats();
/// assert_eq!((reused, parsed), (2, 4)); // 3 initial + 1 changed
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalCompiler {
    parser: IncrementalParser,
}

impl IncrementalCompiler {
    /// A compiler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile `src`; behaves exactly like [`crate::compile`] but
    /// re-parses only the top-level items whose text changed since the
    /// previous call.
    ///
    /// # Errors
    ///
    /// All diagnostics, if any stage reports an error.
    pub fn compile(&mut self, src: &str) -> Result<Program, Diagnostics> {
        self.parser.update(src);
        let mut diags = self.parser.diagnostics();
        if diags.has_errors() {
            return Err(diags);
        }
        // Lower straight off the parser-owned document: unchanged items
        // are moved, not cloned.
        let lowered = self.parser.with_program(src, lower_program);
        diags.extend(lowered.diagnostics.clone());
        if diags.has_errors() {
            return Err(diags);
        }
        diags.extend(check_program(&lowered.program));
        if diags.has_errors() {
            return Err(diags);
        }
        Ok(lowered.program)
    }

    /// `(chunks reused, chunks parsed)` over the compiler's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.parser.reused, self.parser.parsed)
    }

    /// Drop the parse cache.
    pub fn clear(&mut self) {
        self.parser.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn agrees_with_full_compile_across_edits() {
        let base = "global n : number = 1
             fun f(x : number) : number pure { x + n }
             page start() { render { boxed { post f(1); } } }";
        let mut inc = IncrementalCompiler::new();
        let a = inc.compile(base).expect("compiles");
        let b = compile(base).expect("compiles");
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.box_spans, b.box_spans);

        let edited = base.replace("x + n", "x * n + 2");
        let a = inc.compile(&edited).expect("compiles");
        let b = compile(&edited).expect("compiles");
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.box_spans, b.box_spans);
        let (reused, parsed) = inc.stats();
        assert_eq!(parsed, 4, "3 initial + 1 changed");
        assert_eq!(reused, 2);
    }

    #[test]
    fn rejects_like_full_compile() {
        let mut inc = IncrementalCompiler::new();
        let bad = "global g : number = 0
             page start() { render { g := 1; } }";
        let inc_err = inc.compile(bad).expect_err("rejected");
        let full_err = compile(bad).expect_err("rejected");
        assert_eq!(inc_err.to_string(), full_err.to_string());
    }
}
