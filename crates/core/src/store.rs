//! The store `S` — values of global variables (the program's *model*).

use crate::types::Name;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The store `S`: a map from global variable names to values.
///
/// The paper represents `S` as a sequence of `[g ↦ v]` pairs with
/// rightmost-wins lookup; a map is the obvious data-structure refinement
/// ("an actual implementation would use specialized data structures",
/// §4.2). Iteration order is deterministic (sorted by name) so renders
/// and tests are reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Store {
    entries: BTreeMap<Name, Value>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a global (`S(g)`).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Write a global (`S[g ↦ v]`).
    pub fn set(&mut self, name: impl AsRef<str>, value: Value) {
        self.entries.insert(Arc::from(name.as_ref()), value);
    }

    /// Whether `g ∈ dom S`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Remove an entry, returning it.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entries.remove(name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Value)> {
        self.entries.iter()
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k} ↦ {v}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<(Name, Value)> for Store {
    fn from_iter<T: IntoIterator<Item = (Name, Value)>>(iter: T) -> Self {
        Store {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rightmost_write_wins() {
        let mut s = Store::new();
        s.set("g", Value::Number(1.0));
        s.set("g", Value::Number(2.0));
        assert_eq!(s.get("g"), Some(&Value::Number(2.0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut s = Store::new();
        s.set("b", Value::Number(2.0));
        s.set("a", Value::Number(1.0));
        let names: Vec<&str> = s.iter().map(|(k, _)| &**k).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(s.to_string(), "{a ↦ 1, b ↦ 2}");
    }

    #[test]
    fn remove_and_contains() {
        let mut s = Store::new();
        s.set("x", Value::Bool(true));
        assert!(s.contains("x"));
        assert_eq!(s.remove("x"), Some(Value::Bool(true)));
        assert!(!s.contains("x"));
        assert!(s.is_empty());
    }
}
