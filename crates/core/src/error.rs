//! Runtime errors of the evaluators.
//!
//! For type-checked programs most variants are unreachable — the
//! progress/preservation property tests in this crate rely on that. The
//! exceptions the paper acknowledges: divergence (modelled by fuel
//! exhaustion) and partial primitives (`list.nth` out of range).

use crate::prim::PrimError;
use crate::types::{Effect, Name};
use std::fmt;

/// An error raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The step budget ran out — the program (or this handler) diverges.
    FuelExhausted,
    /// A local variable was not bound (unreachable after lowering).
    UnknownLocal(Name),
    /// A global variable is not defined (unreachable after type check).
    UnknownGlobal(Name),
    /// A function is not defined (unreachable after type check).
    UnknownFun(Name),
    /// A page is not defined (unreachable after type check).
    UnknownPage(Name),
    /// A non-function was applied (unreachable after type check).
    NotAFunction(String),
    /// Wrong number of call arguments (unreachable after type check).
    ArityMismatch {
        /// Number of parameters expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// A value had the wrong shape (unreachable after type check).
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it got, rendered.
        found: String,
    },
    /// Tuple projection out of range (unreachable after type check).
    ProjOutOfRange {
        /// 1-based index requested.
        index: u32,
        /// Tuple arity.
        len: usize,
    },
    /// A primitive failed (e.g. `list.nth` out of range).
    Prim(PrimError),
    /// An effectful operation ran in the wrong mode — the dynamic witness
    /// of the type-and-effect discipline (unreachable after type check).
    EffectViolation {
        /// The offending operation.
        op: &'static str,
        /// The mode it ran in.
        mode: Effect,
    },
    /// A construct outside the substitution kernel reached the faithful
    /// small-step machine (local assignment).
    NotInKernel(&'static str),
    /// An evaluator invariant was broken (unreachable; reported as a
    /// typed error instead of aborting the process).
    Internal(&'static str),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::FuelExhausted => f.write_str("evaluation fuel exhausted"),
            RuntimeError::UnknownLocal(n) => write!(f, "unbound local `{n}`"),
            RuntimeError::UnknownGlobal(n) => write!(f, "unknown global `{n}`"),
            RuntimeError::UnknownFun(n) => write!(f, "unknown function `{n}`"),
            RuntimeError::UnknownPage(n) => write!(f, "unknown page `{n}`"),
            RuntimeError::NotAFunction(v) => write!(f, "cannot call non-function {v}"),
            RuntimeError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} argument(s), found {found}")
            }
            RuntimeError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            RuntimeError::ProjOutOfRange { index, len } => {
                write!(
                    f,
                    "projection .{index} out of range for tuple of size {len}"
                )
            }
            RuntimeError::Prim(e) => write!(f, "{e}"),
            RuntimeError::EffectViolation { op, mode } => {
                write!(f, "`{op}` is not permitted in {mode} mode")
            }
            RuntimeError::NotInKernel(what) => {
                write!(f, "`{what}` is outside the substitution kernel")
            }
            RuntimeError::Internal(what) => {
                write!(f, "internal evaluator invariant broken: {what}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<PrimError> for RuntimeError {
    fn from(e: PrimError) -> Self {
        RuntimeError::Prim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::EffectViolation {
            op: "g := e",
            mode: Effect::Render,
        };
        assert_eq!(e.to_string(), "`g := e` is not permitted in render mode");
        let e = RuntimeError::ArityMismatch {
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }
}
