//! Fault containment — structured records of contained runtime failures
//! plus deterministic fault injection.
//!
//! The paper acknowledges two ways live user code can fail at run time:
//! divergence (modelled by fuel exhaustion) and partial primitives
//! (`list.nth` out of range). Instead of letting either poison the
//! machine, every [`crate::system::System`] transition is *transactional*:
//! mutable state is snapshotted before INIT/HANDLER/RENDER runs and
//! rolled back on error, and the error is surfaced as a [`Fault`] — a
//! record of *which* transition failed, *where* (page provenance), *why*
//! (the underlying [`RuntimeError`]), and *how much* fuel it burned.
//! The display keeps its last good box tree, tagged stale
//! ([`crate::boxtree::Display::Stale`]), so there is always something to
//! show the user while they fix their code.
//!
//! [`FaultInjector`] is the seam for deterministic fault *injection*:
//! a test harness can make chosen primitives fail or chosen transitions
//! run out of fuel on their Nth occurrence, driving the machine into
//! every rollback path on purpose (see `alive-testkit`).

use crate::error::RuntimeError;
use crate::prim::{Prim, PrimError};
use crate::types::Name;
use std::fmt;

/// Which kind of transition a fault occurred in (its "mode").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A page's `init` body failed during a PUSH transition.
    Init,
    /// An event handler thunk failed during a THUNK transition.
    Handler,
    /// A page's `render` body failed during a RENDER transition.
    Render,
    /// An event cascade exceeded the configured
    /// [`crate::system::SystemConfig::max_transitions`] bound — pages
    /// that push pages forever. Distinguishable from in-transition
    /// divergence, which is reported as one of the kinds above.
    CascadeOverflow,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Init => f.write_str("init"),
            FaultKind::Handler => f.write_str("handler"),
            FaultKind::Render => f.write_str("render"),
            FaultKind::CascadeOverflow => f.write_str("event cascade"),
        }
    }
}

/// The transition about to run, as seen by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// A PUSH transition running a page's `init` body.
    Init,
    /// A THUNK transition running an event handler.
    Handler,
    /// A RENDER transition running a page's `render` body.
    Render,
}

impl From<TransitionKind> for FaultKind {
    fn from(kind: TransitionKind) -> Self {
        match kind {
            TransitionKind::Init => FaultKind::Init,
            TransitionKind::Handler => FaultKind::Handler,
            TransitionKind::Render => FaultKind::Render,
        }
    }
}

/// A contained runtime failure. The transition it describes was rolled
/// back: the machine is in a consistent (pre-transition) state and can
/// keep running.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Which transition failed.
    pub kind: FaultKind,
    /// The page whose code was running (provenance), when known.
    pub page: Option<Name>,
    /// The underlying runtime error.
    pub error: RuntimeError,
    /// Evaluation steps spent before the failure (for
    /// [`FaultKind::CascadeOverflow`]: transitions taken).
    pub fuel_spent: u64,
    /// The fuel budget the transition ran under (for
    /// [`FaultKind::CascadeOverflow`]: the transition bound).
    pub fuel_limit: u64,
    /// The code version that was running.
    pub version: u64,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fault", self.kind)?;
        if let Some(page) = &self.page {
            write!(f, " in page `{page}`")?;
        }
        write!(
            f,
            ": {} ({}/{} fuel, code v{})",
            self.error, self.fuel_spent, self.fuel_limit, self.version
        )
    }
}

impl std::error::Error for Fault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Deterministic fault injection: a hook the system consults before
/// running transitions and applying primitives.
///
/// Both methods have identity defaults, so an injector only overrides
/// the failure modes it wants to drive. Implementations must be
/// deterministic functions of their own state for replayable tests.
///
/// Injectors are `Send` so a [`crate::system::System`] carrying one can
/// migrate between host worker threads; the system guards all calls
/// behind a mutex, so implementations need no internal locking.
pub trait FaultInjector: fmt::Debug + Send {
    /// The fuel budget for the next transition of `kind`. Return
    /// `default_fuel` to leave it alone, or something tiny to make the
    /// transition run out of fuel.
    fn fuel_for(&mut self, kind: TransitionKind, default_fuel: u64) -> u64 {
        let _ = kind;
        default_fuel
    }

    /// Called before each primitive application. Return `Some(error)`
    /// to make this application fail instead of running.
    fn before_prim(&mut self, prim: Prim) -> Option<PrimError> {
        let _ = prim;
        None
    }
}
