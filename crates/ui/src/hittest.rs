//! Hit-testing: mapping a screen point to a box path.
//!
//! This is how user taps reach the (TAP) transition: the user taps a
//! point, hit-testing finds the deepest box under it, and the system
//! invokes that box's `ontap` handler. It also implements the paper's
//! *nested selection* (§5): "the user can tap the same box multiple
//! times to select enclosing boxes" — [`hit_stack`] returns the whole
//! chain from root to the deepest box.

use crate::geom::Point;
use crate::layout::{LayoutBox, LayoutItem, LayoutTree};

/// The deepest box containing `point`, as a box-tree path.
pub fn hit_test(tree: &LayoutTree, point: Point) -> Option<Vec<usize>> {
    hit_stack(tree, point).into_iter().next_back()
}

/// All boxes containing `point`, outermost first (each entry is a path).
/// Tapping repeatedly can walk up this chain to select enclosing boxes.
pub fn hit_stack(tree: &LayoutTree, point: Point) -> Vec<Vec<usize>> {
    let mut stack = Vec::new();
    collect_hits(&tree.root, point, &mut stack);
    stack
}

fn collect_hits(node: &LayoutBox, point: Point, out: &mut Vec<Vec<usize>>) {
    if !node.rect.contains(point) {
        return;
    }
    out.push(node.path.clone());
    for item in &node.items {
        if let LayoutItem::Child(child) = item {
            collect_hits(child, point, out);
        }
    }
}

/// The deepest box under `point` that has a tap handler — where a user
/// tap actually lands. Inner boxes win over enclosing ones, like DOM
/// event targeting.
pub fn hit_test_tappable(tree: &LayoutTree, point: Point) -> Option<Vec<usize>> {
    let mut found = None;
    for path in hit_stack(tree, point) {
        let node = tree.by_path(&path).expect("hit paths are valid");
        if node.style.tappable {
            found = Some(path);
        }
    }
    found
}

/// The text cell under `point`: the deepest box containing the point
/// that has a text item whose rect contains it, as `(box path, leaf
/// ordinal)`. The ordinal counts `Text` items within the box in item
/// order, which is exactly the order of `BoxNode::leaves()` — so the
/// result keys straight into
/// `BoxNode::leaf_with_provenance(ordinal)` for bidirectional
/// manipulation (select a rendered value, recover where it came from).
pub fn hit_test_leaf(tree: &LayoutTree, point: Point) -> Option<(Vec<usize>, usize)> {
    let mut found = None;
    for path in hit_stack(tree, point) {
        let node = tree.by_path(&path).expect("hit paths are valid");
        let mut ordinal = 0usize;
        for item in &node.items {
            if let LayoutItem::Text { rect, .. } = item {
                if rect.contains(point) {
                    found = Some((path.clone(), ordinal));
                }
                ordinal += 1;
            }
        }
    }
    found
}

/// The deepest box under `point` with an edit handler.
pub fn hit_test_editable(tree: &LayoutTree, point: Point) -> Option<Vec<usize>> {
    let mut found = None;
    for path in hit_stack(tree, point) {
        let node = tree.by_path(&path).expect("hit paths are valid");
        if node.style.editable {
            found = Some(path);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::layout;
    use alive_core::boxtree::{BoxItem, BoxNode};
    use alive_core::{Attr, Value};

    /// root(vertical): [a "aaaa"] [b: [c "cc"]] where b has ontap.
    fn sample() -> LayoutTree {
        let mut a = BoxNode::new(None);
        a.items.push(BoxItem::leaf(Value::str("aaaa")));
        let mut c = BoxNode::new(None);
        c.items.push(BoxItem::leaf(Value::str("cc")));
        let mut b = BoxNode::new(None);
        b.items.push(BoxItem::attr(
            Attr::OnTap,
            Value::Prim(alive_core::Prim::MathFloor),
        ));
        b.push_child(c);
        let mut root = BoxNode::new(None);
        root.push_child(a);
        root.push_child(b);
        layout(&root)
    }

    #[test]
    fn hit_finds_deepest_box() {
        let tree = sample();
        // Row 0 is box a; row 1 is c inside b.
        assert_eq!(hit_test(&tree, Point::new(0, 0)), Some(vec![0]));
        assert_eq!(hit_test(&tree, Point::new(0, 1)), Some(vec![1, 0]));
        assert_eq!(hit_test(&tree, Point::new(50, 50)), None);
    }

    #[test]
    fn hit_stack_supports_nested_selection() {
        let tree = sample();
        let stack = hit_stack(&tree, Point::new(0, 1));
        assert_eq!(stack, vec![Vec::<usize>::new(), vec![1], vec![1, 0]]);
    }

    #[test]
    fn leaf_hit_resolves_box_and_ordinal() {
        let tree = sample();
        // Row 0 is the only leaf of box a; row 1 is the only leaf of c.
        assert_eq!(hit_test_leaf(&tree, Point::new(0, 0)), Some((vec![0], 0)));
        assert_eq!(
            hit_test_leaf(&tree, Point::new(0, 1)),
            Some((vec![1, 0], 0))
        );
        assert_eq!(hit_test_leaf(&tree, Point::new(50, 50)), None);
    }

    #[test]
    fn tappable_targeting_bubbles_to_handler() {
        let tree = sample();
        // The point is inside c (no handler); the tap lands on b.
        assert_eq!(hit_test_tappable(&tree, Point::new(0, 1)), Some(vec![1]));
        // Box a has no handler anywhere in its chain.
        assert_eq!(hit_test_tappable(&tree, Point::new(0, 0)), None);
        assert_eq!(hit_test_editable(&tree, Point::new(0, 1)), None);
    }
}
