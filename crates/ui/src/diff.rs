//! Display diffing: which boxes changed between two renders?
//!
//! The paper's model rebuilds the whole box tree per refresh; a real
//! screen only wants to repaint what changed. This module computes the
//! structural difference between two displays and the corresponding
//! *damage rectangles*. The damage drives the retained-frame backends
//! ([`crate::render_text::TextFrame`], [`crate::render_ansi::AnsiFramebuffer`]):
//! only damaged cells are repainted per frame. The E4 discussion also
//! uses the same rectangles to quantify how little of the screen
//! changes per model update.
//!
//! Diffing exploits structural sharing: children are `Arc`-shared across
//! frames, so a subtree spliced unchanged from the render memo cache is
//! pointer-identical to last frame's and is skipped without descending.

use crate::geom::Rect;
use crate::layout::{LayoutBox, LayoutItem, LayoutTree};
use alive_core::boxtree::{BoxItem, BoxNode};
use std::sync::Arc;

/// One difference between two displays, located by box path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoxChange {
    /// A box exists in the new display but not the old.
    Added(Vec<usize>),
    /// A box existed in the old display but not the new.
    Removed(Vec<usize>),
    /// The box exists in both but its own content (leaves, attributes,
    /// or source statement) differs; children are reported separately.
    Changed(Vec<usize>),
}

impl BoxChange {
    /// The path the change is located at.
    pub fn path(&self) -> &[usize] {
        match self {
            BoxChange::Added(p) | BoxChange::Removed(p) | BoxChange::Changed(p) => p,
        }
    }
}

/// Compare two displays structurally. Children are matched by index
/// (the box tree is ordered); a box is `Changed` if its non-child items
/// or its source id differ.
pub fn diff_displays(old: &BoxNode, new: &BoxNode) -> Vec<BoxChange> {
    let mut out = Vec::new();
    diff_nodes(old, new, &mut Vec::new(), &mut out);
    out
}

fn own_items(node: &BoxNode) -> Vec<&BoxItem> {
    node.items
        .iter()
        .filter(|i| !matches!(i, BoxItem::Child(_)))
        .collect()
}

fn diff_nodes(old: &BoxNode, new: &BoxNode, path: &mut Vec<usize>, out: &mut Vec<BoxChange>) {
    if old.source != new.source || own_items(old) != own_items(new) {
        out.push(BoxChange::Changed(path.clone()));
    }
    let old_children: Vec<&Arc<BoxNode>> = old.children_shared().collect();
    let new_children: Vec<&Arc<BoxNode>> = new.children_shared().collect();
    let shared = old_children.len().min(new_children.len());
    for i in 0..shared {
        // Pointer-identical subtrees (memo splices) cannot differ.
        if Arc::ptr_eq(old_children[i], new_children[i]) {
            continue;
        }
        path.push(i);
        diff_nodes(old_children[i], new_children[i], path, out);
        path.pop();
    }
    for i in shared..old_children.len() {
        let mut p = path.clone();
        p.push(i);
        out.push(BoxChange::Removed(p));
    }
    for i in shared..new_children.len() {
        let mut p = path.clone();
        p.push(i);
        out.push(BoxChange::Added(p));
    }
}

/// The screen rectangles a backend would repaint to go from the old
/// layout to the new one: the new bounds of every added/changed box
/// plus the old bounds of every removed/changed box (content may have
/// moved). Bounds are the box rect *plus* its text blocks — text can
/// overflow a `width`/`height`-overridden rect, and a partial repaint
/// that missed the overflow would leave stale cells behind.
pub fn damage_rects(
    old_tree: &LayoutTree,
    new_tree: &LayoutTree,
    changes: &[BoxChange],
) -> Vec<Rect> {
    let mut rects = Vec::new();
    // A changed box damages its own content; its children are diffed
    // and damaged separately. A box entering or leaving the display
    // damages its whole subtree at once.
    fn push_own(rects: &mut Vec<Rect>, b: Option<&LayoutBox>) {
        if let Some(r) = b.and_then(own_bounds) {
            rects.push(r);
        }
    }
    for change in changes {
        match change {
            BoxChange::Added(p) => {
                if let Some(r) = new_tree.by_path(p).and_then(subtree_bounds) {
                    rects.push(r);
                }
            }
            BoxChange::Removed(p) => {
                if let Some(r) = old_tree.by_path(p).and_then(subtree_bounds) {
                    rects.push(r);
                }
            }
            BoxChange::Changed(p) => {
                push_own(&mut rects, old_tree.by_path(p));
                push_own(&mut rects, new_tree.by_path(p));
            }
        }
    }
    // Also repaint anything whose rectangle moved even if its content
    // did not (relayout shifts siblings below a grown box).
    collect_moved(&old_tree.root, new_tree, &mut rects);
    dedup_rects(rects)
}

/// Union of two rects (smallest rect containing both).
fn union(a: Rect, b: Rect) -> Rect {
    let left = a.left().min(b.left());
    let top = a.top().min(b.top());
    let right = a.right().max(b.right());
    let bottom = a.bottom().max(b.bottom());
    Rect::new(left, top, right - left, bottom - top)
}

/// The cells a box's *own* drawing can touch: its rect plus its text
/// blocks (which may overflow the rect under size overrides). `None`
/// if it draws nothing.
fn own_bounds(b: &LayoutBox) -> Option<Rect> {
    let mut out = (!b.rect.size.is_empty()).then_some(b.rect);
    for item in &b.items {
        if let LayoutItem::Text { rect, .. } = item {
            if !rect.size.is_empty() {
                out = Some(match out {
                    Some(acc) => union(acc, *rect),
                    None => *rect,
                });
            }
        }
    }
    out
}

/// The cells a box's whole subtree can touch.
fn subtree_bounds(b: &LayoutBox) -> Option<Rect> {
    let mut out = own_bounds(b);
    for item in &b.items {
        if let LayoutItem::Child(c) = item {
            if let Some(r) = subtree_bounds(c) {
                out = Some(match out {
                    Some(acc) => union(acc, r),
                    None => r,
                });
            }
        }
    }
    out
}

fn collect_moved(old: &LayoutBox, new_tree: &LayoutTree, rects: &mut Vec<Rect>) {
    if let Some(new_box) = new_tree.by_path(&old.path) {
        if new_box.rect != old.rect {
            if let Some(r) = own_bounds(old) {
                rects.push(r);
            }
            if let Some(r) = own_bounds(new_box) {
                rects.push(r);
            }
        } else {
            // Even with an unmoved box rect, a text block after a
            // resized child shifts within the box. Content changes are
            // caught by the diff; here only positions can differ.
            let text_rects = |b: &LayoutBox| -> Vec<Rect> {
                b.items
                    .iter()
                    .filter_map(|i| match i {
                        LayoutItem::Text { rect, .. } => Some(*rect),
                        LayoutItem::Child(_) => None,
                    })
                    .collect()
            };
            for (o, n) in text_rects(old).iter().zip(text_rects(new_box).iter()) {
                if o != n {
                    if !o.size.is_empty() {
                        rects.push(*o);
                    }
                    if !n.size.is_empty() {
                        rects.push(*n);
                    }
                }
            }
        }
    }
    for item in &old.items {
        if let LayoutItem::Child(c) = item {
            collect_moved(c, new_tree, rects);
        }
    }
}

fn dedup_rects(mut rects: Vec<Rect>) -> Vec<Rect> {
    rects.sort_by_key(|r| (r.origin.y, r.origin.x, r.size.h, r.size.w));
    rects.dedup();
    // Drop rects fully contained in another.
    let containing = rects.clone();
    rects.retain(|r| {
        !containing.iter().any(|big| {
            big != r
                && big.left() <= r.left()
                && big.top() <= r.top()
                && big.right() >= r.right()
                && big.bottom() >= r.bottom()
        })
    });
    rects
}

/// Fraction of the (new) display area covered by damage — a 0.0–1.0
/// repaint ratio.
pub fn damage_ratio(new_tree: &LayoutTree, damage: &[Rect]) -> f64 {
    let total = new_tree.size();
    let total_area = f64::from(total.w.max(1)) * f64::from(total.h.max(1));
    let damaged: f64 = damage
        .iter()
        .map(|r| f64::from(r.size.w) * f64::from(r.size.h))
        .sum();
    (damaged / total_area).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::layout;
    use alive_core::{Attr, Value};

    fn leaf_box(text: &str) -> BoxNode {
        let mut b = BoxNode::new(None);
        b.items.push(BoxItem::leaf(Value::str(text)));
        b
    }

    fn root_of(children: Vec<BoxNode>) -> BoxNode {
        let mut root = BoxNode::new(None);
        for c in children {
            root.push_child(c);
        }
        root
    }

    #[test]
    fn identical_displays_have_no_diff() {
        let a = root_of(vec![leaf_box("x"), leaf_box("y")]);
        assert!(diff_displays(&a, &a.clone()).is_empty());
    }

    #[test]
    fn leaf_change_is_located_exactly() {
        let old = root_of(vec![leaf_box("x"), leaf_box("y")]);
        let new = root_of(vec![leaf_box("x"), leaf_box("z")]);
        assert_eq!(diff_displays(&old, &new), vec![BoxChange::Changed(vec![1])]);
    }

    #[test]
    fn attr_change_is_a_change() {
        let old = root_of(vec![leaf_box("x")]);
        let mut changed = leaf_box("x");
        changed
            .items
            .push(BoxItem::attr(Attr::Margin, Value::Number(2.0)));
        let new = root_of(vec![changed]);
        assert_eq!(diff_displays(&old, &new), vec![BoxChange::Changed(vec![0])]);
    }

    #[test]
    fn added_and_removed_children() {
        let old = root_of(vec![leaf_box("a"), leaf_box("b"), leaf_box("c")]);
        let new = root_of(vec![leaf_box("a")]);
        assert_eq!(
            diff_displays(&old, &new),
            vec![BoxChange::Removed(vec![1]), BoxChange::Removed(vec![2])]
        );
        let grown = diff_displays(&new, &old);
        assert_eq!(
            grown,
            vec![BoxChange::Added(vec![1]), BoxChange::Added(vec![2])]
        );
    }

    #[test]
    fn damage_covers_changed_rows_only() {
        let old = root_of(vec![leaf_box("aaaa"), leaf_box("bbbb"), leaf_box("cccc")]);
        let new = root_of(vec![leaf_box("aaaa"), leaf_box("BBBB"), leaf_box("cccc")]);
        let old_tree = layout(&old);
        let new_tree = layout(&new);
        let changes = diff_displays(&old, &new);
        let damage = damage_rects(&old_tree, &new_tree, &changes);
        assert_eq!(damage, vec![Rect::new(0, 1, 4, 1)]);
        let ratio = damage_ratio(&new_tree, &damage);
        assert!(
            (ratio - 1.0 / 3.0).abs() < 1e-9,
            "one of three rows: {ratio}"
        );
    }

    #[test]
    fn relayout_shift_damages_moved_siblings() {
        // The first box grows a margin; the second box moves down.
        let old = root_of(vec![leaf_box("top"), leaf_box("below")]);
        let mut grown = leaf_box("top");
        grown
            .items
            .insert(0, BoxItem::attr(Attr::Margin, Value::Number(1.0)));
        let new = root_of(vec![grown, leaf_box("below")]);
        let changes = diff_displays(&old, &new);
        let damage = damage_rects(&layout(&old), &layout(&new), &changes);
        // The "below" row's old position must be repainted even though
        // its content is unchanged.
        assert!(
            damage
                .iter()
                .any(|r| r.contains(crate::geom::Point::new(0, 1))),
            "{damage:?}"
        );
    }
}
