//! # alive-ui
//!
//! The display substrate for *its-alive*: deterministic layout, text
//! rendering, and hit-testing of the box trees produced by render code.
//!
//! The PLDI 2013 paper runs its system in a browser and explicitly does
//! not formalize layout; this crate is the simulated replacement. It
//! preserves everything the model cares about — the box tree structure,
//! attribute semantics (margins, fonts, colors, stacking direction),
//! and the mapping from user taps to `ontap` handlers — while being
//! fully deterministic and dependency-free.
//!
//! # Example
//!
//! ```
//! use alive_core::compile;
//! use alive_core::system::System;
//! use alive_ui::{layout, render_to_text};
//!
//! let mut system = System::new(compile(r#"
//!     page start() {
//!         render { boxed { post "hello"; } }
//!     }
//! "#).expect("compiles"));
//! let root = system.rendered().expect("renders").clone();
//! let text = render_to_text(&layout(&root));
//! assert_eq!(text, "hello\n");
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod geom;
pub mod hittest;
pub mod layout;
pub mod render_ansi;
pub mod render_text;

pub use diff::{damage_ratio, damage_rects, diff_displays, BoxChange};
pub use geom::{Point, Rect, Size};
pub use hittest::{hit_stack, hit_test, hit_test_editable, hit_test_leaf, hit_test_tappable};
pub use layout::{
    layout, layout_incremental, LayoutBox, LayoutCache, LayoutItem, LayoutStats, LayoutTree, Style,
};
pub use render_ansi::{render_to_ansi, strip_ansi, AnsiCanvas, AnsiFramebuffer};
pub use render_text::{
    render_to_text, render_with_options, render_zoomed_out, Canvas, RenderOptions, TextFrame,
};

use alive_core::system::{ActionError, System};

/// Tap the screen at a point: hit-test the current display and deliver
/// the tap to the deepest box with an `ontap` handler (doing nothing,
/// like a real screen, if no handler is under the finger).
///
/// # Errors
///
/// [`ActionError::DisplayInvalid`] if the display is stale.
pub fn tap_at(system: &mut System, point: Point) -> Result<bool, ActionError> {
    let Some(root) = system.display().content() else {
        return Err(ActionError::DisplayInvalid);
    };
    let tree = layout(root);
    match hit_test_tappable(&tree, point) {
        Some(path) => {
            system.tap(&path)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Edit the box at a point: deliver `text` to the deepest box with an
/// `onedit` handler under the point. Returns whether an editable box
/// was found.
///
/// # Errors
///
/// [`ActionError::DisplayInvalid`] if the display is stale.
pub fn edit_at(system: &mut System, point: Point, text: &str) -> Result<bool, ActionError> {
    let Some(root) = system.display().content() else {
        return Err(ActionError::DisplayInvalid);
    };
    let tree = layout(root);
    match hit_test_editable(&tree, point) {
        Some(path) => {
            system.edit_box(&path, text)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;
    use alive_core::Value;

    #[test]
    fn tap_at_drives_the_system() {
        let mut system = System::new(
            compile(
                "global n : number = 0
                 page start() {
                     render {
                         boxed { post \"inert\"; }
                         boxed {
                             post \"button\";
                             on tap { n := n + 1; }
                         }
                     }
                 }",
            )
            .expect("compiles"),
        );
        system.run_to_stable().expect("starts");
        // Row 0 is the inert box: tap falls through.
        assert_eq!(tap_at(&mut system, Point::new(0, 0)), Ok(false));
        // Row 1 is the button.
        assert_eq!(tap_at(&mut system, Point::new(0, 1)), Ok(true));
        system.run_to_stable().expect("handles tap");
        assert_eq!(system.store().get("n"), Some(&Value::Number(1.0)));
    }

    #[test]
    fn edit_at_drives_onedit() {
        let mut system = System::new(
            compile(
                "global term : string = \"30\"
                 page start() {
                     render {
                         boxed {
                             post term;
                             on edited(text: string) { term := text; }
                         }
                     }
                 }",
            )
            .expect("compiles"),
        );
        system.run_to_stable().expect("starts");
        assert_eq!(edit_at(&mut system, Point::new(0, 0), "15"), Ok(true));
        system.run_to_stable().expect("handles edit");
        assert_eq!(system.store().get("term"), Some(&Value::str("15")));
    }

    #[test]
    fn tap_at_requires_valid_display() {
        let mut system = System::new(compile("page start() { render { } }").expect("compiles"));
        assert_eq!(
            tap_at(&mut system, Point::new(0, 0)),
            Err(ActionError::DisplayInvalid)
        );
    }
}
