//! Box-tree layout.
//!
//! The paper deliberately does not formalize visual layout ("We do not
//! formalize the visual layout of box trees", §4); this module is the
//! deterministic substrate standing in for TouchDevelop's browser
//! renderer. Boxes stack vertically by default and horizontally when
//! `box.horizontal := true` — "nested boxes, akin to TeX and HTML" (§1).
//!
//! Layout is two-pass: a bottom-up *measure* pass computes content
//! sizes, then a top-down *place* pass assigns rectangles. Attributes
//! used: `margin`, `padding`, `border`, `width`, `height`, `font_size`,
//! `horizontal`, `background`, `foreground`.

use crate::geom::{Point, Rect, Size};
use alive_core::boxtree::{BoxItem, BoxNode};
use alive_core::expr::BoxSourceId;
use alive_core::value::Color;
use alive_core::{Attr, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Visual style resolved from a box's attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Style {
    /// Outer spacing.
    pub margin: i32,
    /// Inner spacing.
    pub padding: i32,
    /// Border thickness (0 or 1 in the text backend).
    pub border: i32,
    /// Integer text scale (1 = normal).
    pub font_size: i32,
    /// Horizontal stacking instead of vertical.
    pub horizontal: bool,
    /// Background fill, if set.
    pub background: Option<Color>,
    /// Text color, if set.
    pub foreground: Option<Color>,
    /// Fixed width override.
    pub width: Option<i32>,
    /// Fixed height override.
    pub height: Option<i32>,
    /// Whether the box has a tap handler (hit-testing cares).
    pub tappable: bool,
    /// Whether the box has an edit handler.
    pub editable: bool,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            margin: 0,
            padding: 0,
            border: 0,
            font_size: 1,
            horizontal: false,
            background: None,
            foreground: None,
            width: None,
            height: None,
            tappable: false,
            editable: false,
        }
    }
}

impl Style {
    /// Resolve a style from a box's attribute items (rightmost wins,
    /// which [`BoxNode::attr`] already implements).
    pub fn from_box(node: &BoxNode) -> Style {
        let num = |attr: Attr| match node.attr(attr) {
            Some(Value::Number(n)) => Some(n.round().max(0.0) as i32),
            _ => None,
        };
        let color = |attr: Attr| match node.attr(attr) {
            Some(Value::Color(c)) => Some(*c),
            _ => None,
        };
        Style {
            margin: num(Attr::Margin).unwrap_or(0),
            padding: num(Attr::Padding).unwrap_or(0),
            border: num(Attr::Border).unwrap_or(0).min(1),
            font_size: num(Attr::FontSize).unwrap_or(1).max(1),
            horizontal: matches!(node.attr(Attr::Horizontal), Some(Value::Bool(true))),
            background: color(Attr::Background),
            foreground: color(Attr::Foreground),
            width: num(Attr::Width),
            height: num(Attr::Height),
            tappable: node.attr(Attr::OnTap).is_some(),
            editable: node.attr(Attr::OnEdit).is_some(),
        }
    }
}

/// One laid-out item inside a box.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutItem {
    /// A posted leaf rendered as text.
    Text {
        /// Where the text sits (border-box of the text block).
        rect: Rect,
        /// The lines of text (pre-split).
        lines: Vec<String>,
        /// Text scale inherited from the box.
        font_size: i32,
    },
    /// A nested box.
    Child(LayoutBox),
}

/// A laid-out box: its rectangle, style, and laid-out contents.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutBox {
    /// Path of child indices from the root box.
    pub path: Vec<usize>,
    /// The `boxed` statement that created this box, for navigation.
    pub source: Option<BoxSourceId>,
    /// The border box (everything but the margin).
    pub rect: Rect,
    /// Resolved style.
    pub style: Style,
    /// Contents in order.
    pub items: Vec<LayoutItem>,
}

impl LayoutBox {
    /// Total number of boxes in this subtree.
    pub fn box_count(&self) -> usize {
        1 + self
            .items
            .iter()
            .map(|i| match i {
                LayoutItem::Child(c) => c.box_count(),
                LayoutItem::Text { .. } => 0,
            })
            .sum::<usize>()
    }

    /// Visit every box, pre-order.
    pub fn walk(&self, visit: &mut dyn FnMut(&LayoutBox)) {
        visit(self);
        for item in &self.items {
            if let LayoutItem::Child(c) = item {
                c.walk(visit);
            }
        }
    }
}

/// A complete layout of a display.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutTree {
    /// The laid-out top-level box.
    pub root: LayoutBox,
}

impl LayoutTree {
    /// Overall size of the laid-out display.
    pub fn size(&self) -> Size {
        Size::new(
            self.root.rect.right() + self.root.style.margin,
            self.root.rect.bottom() + self.root.style.margin,
        )
    }

    /// Find the laid-out box for a box-tree path.
    pub fn by_path(&self, path: &[usize]) -> Option<&LayoutBox> {
        let mut node = &self.root;
        for &i in path {
            node = self.nth_child(node, i)?;
        }
        Some(node)
    }

    fn nth_child<'t>(&self, node: &'t LayoutBox, i: usize) -> Option<&'t LayoutBox> {
        node.items
            .iter()
            .filter_map(|item| match item {
                LayoutItem::Child(c) => Some(c),
                LayoutItem::Text { .. } => None,
            })
            .nth(i)
    }
}

/// Lay out a box tree. The root box is placed at the origin (its margin
/// included).
pub fn layout(root: &BoxNode) -> LayoutTree {
    let measured = measure(root);
    let style = Style::from_box(root);
    let root_box = place(
        root,
        &measured,
        Point::new(style.margin, style.margin),
        Vec::new(),
    );
    LayoutTree { root: root_box }
}

/// Per-frame counters from an incremental layout pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Boxes whose measure pass actually ran this frame.
    pub nodes_measured: u64,
    /// Boxes skipped because their subtree was pointer-identical to a
    /// previously measured one (memo splices keep subtrees shared).
    pub nodes_reused: u64,
}

/// A measured subtree held by the cache, pinned so its pointer key
/// stays valid.
struct CacheEntry {
    /// Keeps the box subtree allocation alive while the entry exists:
    /// the cache is keyed by `Arc::as_ptr`, and a recycled allocation at
    /// the same address would otherwise alias a stale measurement.
    _keeper: Arc<BoxNode>,
    measured: Arc<Measured>,
}

/// Pointer-keyed cache for the bottom-up measure pass.
///
/// Box trees are immutable once built, and [`measure`] depends only on
/// the subtree's own content (no inherited inputs affect sizing), so a
/// subtree that is pointer-identical to one measured last frame must
/// measure identically — the `Arc` pointer alone is a sound cache key as
/// long as the allocation cannot be recycled, which each entry's keeper
/// `Arc` guarantees. Eviction is two-generation, like the render memo
/// cache: entries not reused for one whole frame are dropped.
#[derive(Default)]
pub struct LayoutCache {
    current: HashMap<usize, CacheEntry>,
    previous: HashMap<usize, CacheEntry>,
    stats: LayoutStats,
}

impl std::fmt::Debug for LayoutCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayoutCache")
            .field("current", &self.current.len())
            .field("previous", &self.previous.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl LayoutCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached subtree measurements (both generations).
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Whether the cache holds no measurements.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.previous.is_empty()
    }

    /// Drop all cached measurements (e.g. after a code update).
    pub fn clear(&mut self) {
        self.current.clear();
        self.previous.clear();
    }

    fn begin_frame(&mut self) {
        // Anything not reused during the previous frame dies here.
        self.previous = std::mem::take(&mut self.current);
        self.stats = LayoutStats::default();
    }

    fn lookup(&mut self, key: usize) -> Option<Arc<Measured>> {
        if let Some(entry) = self.current.get(&key) {
            self.stats.nodes_reused += entry.measured.boxes;
            return Some(Arc::clone(&entry.measured));
        }
        if let Some(entry) = self.previous.remove(&key) {
            self.stats.nodes_reused += entry.measured.boxes;
            let measured = Arc::clone(&entry.measured);
            self.current.insert(key, entry);
            return Some(measured);
        }
        None
    }
}

/// Lay out a box tree, reusing measurements of subtrees that are
/// pointer-identical to ones measured on an earlier call.
///
/// Output is byte-identical to [`layout`] — only the measure pass is
/// skipped for shared subtrees; the cheap top-down place pass always
/// runs in full. Returns the tree plus this frame's reuse counters.
pub fn layout_incremental(cache: &mut LayoutCache, root: &BoxNode) -> (LayoutTree, LayoutStats) {
    cache.begin_frame();
    let measured = measure_items(root, &mut |child| measure_cached(cache, child));
    cache.stats.nodes_measured += 1; // the root itself
    let style = Style::from_box(root);
    let root_box = place(
        root,
        &measured,
        Point::new(style.margin, style.margin),
        Vec::new(),
    );
    (LayoutTree { root: root_box }, cache.stats)
}

fn measure_cached(cache: &mut LayoutCache, node: &Arc<BoxNode>) -> Arc<Measured> {
    let key = Arc::as_ptr(node) as usize;
    if let Some(measured) = cache.lookup(key) {
        return measured;
    }
    let measured = Arc::new(measure_items(node, &mut |child| {
        measure_cached(cache, child)
    }));
    cache.stats.nodes_measured += 1;
    cache.current.insert(
        key,
        CacheEntry {
            _keeper: Arc::clone(node),
            measured: Arc::clone(&measured),
        },
    );
    measured
}

/// Measured sizes for one box subtree.
struct Measured {
    /// Size of the border box (without margin).
    inner: Size,
    /// Outer size (border box + margin on all sides).
    outer: Size,
    /// Boxes in this subtree, including self (for reuse accounting).
    boxes: u64,
    items: Vec<MeasuredItem>,
}

enum MeasuredItem {
    Text {
        size: Size,
        lines: Vec<String>,
        font_size: i32,
    },
    Child(Arc<Measured>),
}

fn text_lines(value: &Value) -> Vec<String> {
    value
        .display_text()
        .split('\n')
        .map(str::to_string)
        .collect()
}

fn measure(node: &BoxNode) -> Measured {
    measure_items(node, &mut |child| Arc::new(measure(child)))
}

fn measure_items(
    node: &BoxNode,
    measure_child: &mut dyn FnMut(&Arc<BoxNode>) -> Arc<Measured>,
) -> Measured {
    let style = Style::from_box(node);
    let mut items = Vec::new();
    let mut boxes = 1u64;
    let mut main = 0i32; // along the stacking axis
    let mut cross = 0i32;
    for item in &node.items {
        let size = match item {
            BoxItem::Leaf(v, _) => {
                let lines = text_lines(v);
                let w = lines
                    .iter()
                    .map(|l| l.chars().count() as i32)
                    .max()
                    .unwrap_or(0)
                    * style.font_size;
                let h = lines.len() as i32 * style.font_size;
                let size = Size::new(w, h);
                items.push(MeasuredItem::Text {
                    size,
                    lines,
                    font_size: style.font_size,
                });
                size
            }
            BoxItem::Child(child) => {
                let measured = measure_child(child);
                let size = measured.outer;
                boxes += measured.boxes;
                items.push(MeasuredItem::Child(measured));
                size
            }
            BoxItem::Attr(..) => continue,
        };
        if style.horizontal {
            main += size.w;
            cross = cross.max(size.h);
        } else {
            main += size.h;
            cross = cross.max(size.w);
        }
    }
    let content = if style.horizontal {
        Size::new(main, cross)
    } else {
        Size::new(cross, main)
    };
    let chrome = 2 * (style.padding + style.border);
    let mut inner = Size::new(content.w + chrome, content.h + chrome);
    if let Some(w) = style.width {
        inner.w = w;
    }
    if let Some(h) = style.height {
        inner.h = h;
    }
    let outer = Size::new(inner.w + 2 * style.margin, inner.h + 2 * style.margin);
    Measured {
        inner,
        outer,
        boxes,
        items,
    }
}

fn place(node: &BoxNode, measured: &Measured, origin: Point, path: Vec<usize>) -> LayoutBox {
    let style = Style::from_box(node);
    let rect = Rect {
        origin,
        size: measured.inner,
    };
    let content_origin = Point::new(
        origin.x + style.padding + style.border,
        origin.y + style.padding + style.border,
    );
    let mut cursor = content_origin;
    let mut items = Vec::new();
    let mut child_index = 0usize;
    let mut measured_items = measured.items.iter();
    for item in &node.items {
        match item {
            BoxItem::Attr(..) => continue,
            BoxItem::Leaf(..) => {
                let Some(MeasuredItem::Text {
                    size,
                    lines,
                    font_size,
                }) = measured_items.next()
                else {
                    unreachable!("measure and place see the same items");
                };
                let text_rect = Rect {
                    origin: cursor,
                    size: *size,
                };
                items.push(LayoutItem::Text {
                    rect: text_rect,
                    lines: lines.clone(),
                    font_size: *font_size,
                });
                if style.horizontal {
                    cursor.x += size.w;
                } else {
                    cursor.y += size.h;
                }
            }
            BoxItem::Child(child) => {
                let Some(MeasuredItem::Child(child_measured)) = measured_items.next() else {
                    unreachable!("measure and place see the same items");
                };
                let child_style = Style::from_box(child);
                let child_origin =
                    Point::new(cursor.x + child_style.margin, cursor.y + child_style.margin);
                let mut child_path = path.clone();
                child_path.push(child_index);
                child_index += 1;
                let laid = place(child, child_measured, child_origin, child_path);
                if style.horizontal {
                    cursor.x += child_measured.outer.w;
                } else {
                    cursor.y += child_measured.outer.h;
                }
                items.push(LayoutItem::Child(laid));
            }
        }
    }
    LayoutBox {
        path,
        source: node.source,
        rect,
        style,
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::boxtree::BoxItem;

    fn leaf_box(text: &str) -> BoxNode {
        let mut b = BoxNode::new(None);
        b.items.push(BoxItem::leaf(Value::str(text)));
        b
    }

    fn with_attr(mut b: BoxNode, attr: Attr, v: Value) -> BoxNode {
        b.items.insert(0, BoxItem::attr(attr, v));
        b
    }

    #[test]
    fn vertical_stacking_is_default() {
        let mut root = BoxNode::new(None);
        root.push_child(leaf_box("aaaa"));
        root.push_child(leaf_box("bb"));
        let tree = layout(&root);
        let first = tree.by_path(&[0]).expect("first child");
        let second = tree.by_path(&[1]).expect("second child");
        assert_eq!(first.rect, Rect::new(0, 0, 4, 1));
        assert_eq!(second.rect, Rect::new(0, 1, 2, 1));
        assert_eq!(tree.root.rect.size, Size::new(4, 2));
    }

    #[test]
    fn horizontal_attribute_changes_axis() {
        let mut root = BoxNode::new(None);
        root.items
            .push(BoxItem::attr(Attr::Horizontal, Value::Bool(true)));
        root.push_child(leaf_box("aaaa"));
        root.push_child(leaf_box("bb"));
        let tree = layout(&root);
        let first = tree.by_path(&[0]).expect("first");
        let second = tree.by_path(&[1]).expect("second");
        assert_eq!(first.rect.origin, Point::new(0, 0));
        assert_eq!(second.rect.origin, Point::new(4, 0));
        assert_eq!(tree.root.rect.size, Size::new(6, 1));
    }

    #[test]
    fn margin_offsets_and_grows_parent() {
        let mut root = BoxNode::new(None);
        let child = with_attr(leaf_box("xx"), Attr::Margin, Value::Number(2.0));
        root.push_child(child);
        let tree = layout(&root);
        let child = tree.by_path(&[0]).expect("child");
        assert_eq!(child.rect.origin, Point::new(2, 2));
        // Outer size of the child = 2+2 margin on each axis + content.
        assert_eq!(tree.root.rect.size, Size::new(6, 5));
    }

    #[test]
    fn padding_and_border_inset_content() {
        let b = with_attr(
            with_attr(leaf_box("hi"), Attr::Padding, Value::Number(1.0)),
            Attr::Border,
            Value::Number(1.0),
        );
        let mut root = BoxNode::new(None);
        root.push_child(b);
        let tree = layout(&root);
        let child = tree.by_path(&[0]).expect("child");
        // content 2x1 + 2*(padding 1 + border 1) = 6x5.
        assert_eq!(child.rect.size, Size::new(6, 5));
        let LayoutItem::Child(ref c) = tree.root.items[0] else {
            panic!()
        };
        let LayoutItem::Text { rect, .. } = &c.items[0] else {
            panic!()
        };
        assert_eq!(rect.origin, Point::new(2, 2));
    }

    #[test]
    fn font_size_scales_text() {
        let b = with_attr(leaf_box("ab"), Attr::FontSize, Value::Number(2.0));
        let mut root = BoxNode::new(None);
        root.push_child(b);
        let tree = layout(&root);
        assert_eq!(
            tree.by_path(&[0]).expect("child").rect.size,
            Size::new(4, 2)
        );
    }

    #[test]
    fn width_height_overrides() {
        let b = with_attr(
            with_attr(leaf_box("hello"), Attr::Width, Value::Number(3.0)),
            Attr::Height,
            Value::Number(4.0),
        );
        let mut root = BoxNode::new(None);
        root.push_child(b);
        let tree = layout(&root);
        assert_eq!(
            tree.by_path(&[0]).expect("child").rect.size,
            Size::new(3, 4)
        );
    }

    #[test]
    fn style_reads_handlers() {
        let mut b = leaf_box("x");
        b.items.push(BoxItem::attr(
            Attr::OnTap,
            Value::Prim(alive_core::Prim::MathFloor), // any function-ish value
        ));
        let style = Style::from_box(&b);
        assert!(style.tappable);
        assert!(!style.editable);
    }

    #[test]
    fn paths_match_box_tree_indices() {
        let mut inner = BoxNode::new(None);
        inner.push_child(leaf_box("deep"));
        let mut root = BoxNode::new(None);
        root.push_child(leaf_box("a"));
        root.push_child(inner);
        let tree = layout(&root);
        assert_eq!(tree.by_path(&[1, 0]).expect("nested").path, vec![1, 0]);
        assert!(tree.by_path(&[2]).is_none());
        assert_eq!(tree.root.box_count(), 4);
    }

    #[test]
    fn leaves_interleave_with_children() {
        let mut root = BoxNode::new(None);
        root.items.push(BoxItem::leaf(Value::str("top")));
        root.push_child(leaf_box("mid"));
        root.items.push(BoxItem::leaf(Value::str("bottom")));
        let tree = layout(&root);
        let LayoutItem::Text { rect: top, .. } = &tree.root.items[0] else {
            panic!()
        };
        let LayoutItem::Child(mid) = &tree.root.items[1] else {
            panic!()
        };
        let LayoutItem::Text { rect: bottom, .. } = &tree.root.items[2] else {
            panic!()
        };
        assert_eq!(top.origin.y, 0);
        assert_eq!(mid.rect.origin.y, 1);
        assert_eq!(bottom.origin.y, 2);
    }

    #[test]
    fn incremental_layout_matches_from_scratch() {
        let mut root = BoxNode::new(None);
        root.push_child(with_attr(
            leaf_box("aaaa"),
            Attr::Margin,
            Value::Number(1.0),
        ));
        let mut inner = BoxNode::new(None);
        inner.push_child(leaf_box("deep"));
        root.push_child(inner);
        let mut cache = LayoutCache::new();
        let (tree, stats) = layout_incremental(&mut cache, &root);
        assert_eq!(tree, layout(&root));
        // Cold cache: everything measured, nothing reused.
        assert_eq!(stats.nodes_measured, 4);
        assert_eq!(stats.nodes_reused, 0);
    }

    #[test]
    fn shared_subtrees_skip_the_measure_pass() {
        let mut inner = BoxNode::new(None);
        inner.push_child(leaf_box("deep"));
        let mut root = BoxNode::new(None);
        root.push_child(leaf_box("a"));
        root.push_child(inner);

        let mut cache = LayoutCache::new();
        let (first, _) = layout_incremental(&mut cache, &root);

        // Next frame: same children, shared by pointer (as the memo
        // cache produces), inside a freshly built root.
        let mut next = BoxNode::new(None);
        next.items.extend(root.items.iter().cloned());
        let (second, stats) = layout_incremental(&mut cache, &next);
        assert_eq!(first, second);
        assert_eq!(stats.nodes_measured, 1, "only the new root measures");
        assert_eq!(stats.nodes_reused, 3, "both subtrees splice from cache");
        assert_eq!(second, layout(&next), "incremental == from-scratch");
    }

    #[test]
    fn layout_cache_evicts_after_one_idle_frame() {
        let mut root = BoxNode::new(None);
        root.push_child(leaf_box("x"));
        let mut cache = LayoutCache::new();
        layout_incremental(&mut cache, &root);
        assert_eq!(cache.len(), 1);

        // A frame that shares nothing: the old entry survives one
        // rotation (previous generation), then dies.
        let mut other = BoxNode::new(None);
        other.push_child(leaf_box("y"));
        layout_incremental(&mut cache, &other);
        assert_eq!(cache.len(), 2);
        let mut third = BoxNode::new(None);
        third.push_child(leaf_box("z"));
        layout_incremental(&mut cache, &third);
        assert_eq!(cache.len(), 2, "the x entry was evicted");

        cache.clear();
        assert!(cache.is_empty());
    }
}
