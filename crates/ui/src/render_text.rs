//! Text rendering of a laid-out display.
//!
//! Renders a [`LayoutTree`] onto a character canvas: text leaves are
//! drawn at their rectangles, boxes with a `border` get `+--+` frames,
//! and colored backgrounds get a light shading. This is the
//! screen-substitute for the paper's browser view — deterministic, so
//! tests can assert on it, and human-readable, so the examples can show
//! the mortgage calculator actually rendering.

use crate::geom::{Point, Rect};
use crate::layout::{LayoutBox, LayoutItem, LayoutTree};

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Draw an outline around *every* box (the live view's box
    /// inspection mode), not just boxes with a `border` attribute.
    pub outline_all_boxes: bool,
    /// Character used to shade boxes with a background color.
    pub shade: char,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            outline_all_boxes: false,
            shade: '░',
        }
    }
}

/// A character canvas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canvas {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl Canvas {
    /// A blank canvas of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        Canvas {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    /// Canvas width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Set one cell, ignoring out-of-bounds writes.
    pub fn put(&mut self, x: i32, y: i32, ch: char) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.cells[y as usize * self.width + x as usize] = ch;
        }
    }

    /// Read one cell (`None` out of bounds).
    pub fn get(&self, x: i32, y: i32) -> Option<char> {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            Some(self.cells[y as usize * self.width + x as usize])
        } else {
            None
        }
    }

    /// The canvas as newline-joined rows, right-trimmed.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.cells.len() + self.height);
        for row in 0..self.height {
            let line: String = self.cells[row * self.width..(row + 1) * self.width]
                .iter()
                .collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        // Trim fully blank trailing rows.
        while out.ends_with("\n\n") {
            out.pop();
        }
        out
    }
}

/// Render a layout tree to text with default options.
pub fn render_to_text(tree: &LayoutTree) -> String {
    render_with_options(tree, RenderOptions::default())
}

/// A retained character frame for damage-driven repaint.
///
/// Holds the previous frame's canvas; [`TextFrame::render_damaged`]
/// repaints only the cells inside the given damage rectangles and
/// re-serializes, so steady-state frames touch a handful of cells
/// instead of the whole screen. Output is byte-identical to
/// [`render_to_text`] as long as the damage covers everything that
/// changed (which [`crate::diff::damage_rects`] guarantees).
#[derive(Debug, Clone, Default)]
pub struct TextFrame {
    canvas: Option<Canvas>,
    /// Cell-generation stamps for counting distinct repainted cells.
    stamp: Vec<u32>,
    generation: u32,
    cells_repainted: u64,
}

impl TextFrame {
    /// An empty frame; the first render is necessarily full.
    pub fn new() -> Self {
        Self::default()
    }

    /// Repaint the whole frame from scratch and retain it.
    pub fn render_full(&mut self, tree: &LayoutTree) -> String {
        let size = tree.size();
        let (w, h) = (size.w.max(0) as usize, size.h.max(0) as usize);
        let mut canvas = Canvas::new(w, h);
        draw_box(&mut canvas, &tree.root, RenderOptions::default());
        self.cells_repainted = (w * h) as u64;
        self.stamp = vec![0; w * h];
        self.generation = 0;
        let text = canvas.to_text();
        self.canvas = Some(canvas);
        text
    }

    /// Repaint only the damaged cells of the retained frame.
    ///
    /// Returns `None` when there is no retained frame or the layout
    /// size changed — the caller must fall back to
    /// [`TextFrame::render_full`]. (A size change moves every cell's
    /// screen position, so a full repaint is the honest cost.)
    pub fn render_damaged(&mut self, tree: &LayoutTree, damage: &[Rect]) -> Option<String> {
        let size = tree.size();
        let canvas = self.canvas.as_mut()?;
        if canvas.width() != size.w.max(0) as usize || canvas.height() != size.h.max(0) as usize {
            return None;
        }
        // Clear the damaged cells, counting each distinct cell once.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
        let mut repainted = 0u64;
        for rect in damage {
            for y in rect.top().max(0)..rect.bottom().min(canvas.height() as i32) {
                for x in rect.left().max(0)..rect.right().min(canvas.width() as i32) {
                    canvas.put(x, y, ' ');
                    let i = y as usize * canvas.width() + x as usize;
                    if self.stamp[i] != self.generation {
                        self.stamp[i] = self.generation;
                        repainted += 1;
                    }
                }
            }
        }
        self.cells_repainted = repainted;
        // Redraw everything that intersects the damage, clipped to it:
        // cells outside the damage are unchanged by construction, and
        // cells inside see every overlapping draw in z-order.
        draw_box_clipped(canvas, &tree.root, RenderOptions::default(), damage);
        Some(canvas.to_text())
    }

    /// Distinct cells repainted by the most recent render call.
    pub fn cells_repainted(&self) -> u64 {
        self.cells_repainted
    }

    /// Drop the retained frame (forces the next render to be full).
    pub fn invalidate(&mut self) {
        self.canvas = None;
    }
}

fn intersects_any(rect: Rect, damage: &[Rect]) -> bool {
    damage.iter().any(|d| {
        rect.left() < d.right()
            && d.left() < rect.right()
            && rect.top() < d.bottom()
            && d.top() < rect.bottom()
    })
}

fn put_clipped(canvas: &mut Canvas, damage: &[Rect], x: i32, y: i32, ch: char) {
    if damage.iter().any(|d| d.contains(Point::new(x, y))) {
        canvas.put(x, y, ch);
    }
}

fn draw_box_clipped(
    canvas: &mut Canvas,
    node: &LayoutBox,
    options: RenderOptions,
    damage: &[Rect],
) {
    let rect = node.rect;
    if intersects_any(rect, damage) {
        if node.style.background.is_some() {
            for y in rect.top()..rect.bottom() {
                for x in rect.left()..rect.right() {
                    put_clipped(canvas, damage, x, y, options.shade);
                }
            }
        }
        if (node.style.border > 0 || options.outline_all_boxes) && !rect.size.is_empty() {
            let (l, t, r, b) = (rect.left(), rect.top(), rect.right() - 1, rect.bottom() - 1);
            for x in l..=r {
                put_clipped(canvas, damage, x, t, '-');
                put_clipped(canvas, damage, x, b, '-');
            }
            for y in t..=b {
                put_clipped(canvas, damage, l, y, '|');
                put_clipped(canvas, damage, r, y, '|');
            }
            put_clipped(canvas, damage, l, t, '+');
            put_clipped(canvas, damage, r, t, '+');
            put_clipped(canvas, damage, l, b, '+');
            put_clipped(canvas, damage, r, b, '+');
        }
    }
    for item in &node.items {
        match item {
            LayoutItem::Text {
                rect,
                lines,
                font_size,
            } => {
                if !intersects_any(*rect, damage) {
                    continue;
                }
                let scale = (*font_size).max(1);
                for (row, line) in lines.iter().enumerate() {
                    for (col, ch) in line.chars().enumerate() {
                        for dy in 0..scale {
                            for dx in 0..scale {
                                put_clipped(
                                    canvas,
                                    damage,
                                    rect.left() + (col as i32) * scale + dx,
                                    rect.top() + (row as i32) * scale + dy,
                                    ch,
                                );
                            }
                        }
                    }
                }
            }
            // Always recurse: children can overflow a parent whose rect
            // was clamped by a width/height override.
            LayoutItem::Child(child) => draw_box_clipped(canvas, child, options, damage),
        }
    }
}

/// Render a layout tree to text.
pub fn render_with_options(tree: &LayoutTree, options: RenderOptions) -> String {
    let size = tree.size();
    let mut canvas = Canvas::new(size.w.max(0) as usize, size.h.max(0) as usize);
    draw_box(&mut canvas, &tree.root, options);
    canvas.to_text()
}

fn draw_box(canvas: &mut Canvas, node: &LayoutBox, options: RenderOptions) {
    let rect = node.rect;
    if node.style.background.is_some() {
        fill(canvas, rect, options.shade);
    }
    if node.style.border > 0 || options.outline_all_boxes {
        frame(canvas, rect);
    }
    for item in &node.items {
        match item {
            LayoutItem::Text {
                rect,
                lines,
                font_size,
            } => {
                draw_text(canvas, *rect, lines, *font_size);
            }
            LayoutItem::Child(child) => draw_box(canvas, child, options),
        }
    }
}

fn fill(canvas: &mut Canvas, rect: Rect, ch: char) {
    for y in rect.top()..rect.bottom() {
        for x in rect.left()..rect.right() {
            canvas.put(x, y, ch);
        }
    }
}

fn frame(canvas: &mut Canvas, rect: Rect) {
    if rect.size.is_empty() {
        return;
    }
    let (l, t, r, b) = (rect.left(), rect.top(), rect.right() - 1, rect.bottom() - 1);
    for x in l..=r {
        canvas.put(x, t, '-');
        canvas.put(x, b, '-');
    }
    for y in t..=b {
        canvas.put(l, y, '|');
        canvas.put(r, y, '|');
    }
    canvas.put(l, t, '+');
    canvas.put(r, t, '+');
    canvas.put(l, b, '+');
    canvas.put(r, b, '+');
}

fn draw_text(canvas: &mut Canvas, rect: Rect, lines: &[String], font_size: i32) {
    let scale = font_size.max(1);
    for (row, line) in lines.iter().enumerate() {
        for (col, ch) in line.chars().enumerate() {
            // Scaled text repeats each character into a scale×scale block,
            // a cheap stand-in for larger fonts.
            for dy in 0..scale {
                for dx in 0..scale {
                    canvas.put(
                        rect.left() + (col as i32) * scale + dx,
                        rect.top() + (row as i32) * scale + dy,
                        ch,
                    );
                }
            }
        }
    }
}

/// Render zoomed out by an integer factor — §5: "The live view is
/// automatically scaled down to fit on a smaller portion of the screen,
/// but we support interactive zooming to allow programmers to inspect
/// the effect of detail adjustments."
///
/// Each `zoom × zoom` cell block collapses to one output cell: box
/// glyphs win over text, text wins over background shading, shading
/// wins over blanks — so the page's *structure* stays legible at a
/// glance even when the text does not.
pub fn render_zoomed_out(tree: &LayoutTree, zoom: usize) -> String {
    let zoom = zoom.max(1);
    let full = {
        let size = tree.size();
        let mut canvas = Canvas::new(size.w.max(0) as usize, size.h.max(0) as usize);
        draw_box(&mut canvas, &tree.root, RenderOptions::default());
        canvas
    };
    let out_w = full.width().div_ceil(zoom);
    let out_h = full.height().div_ceil(zoom);
    let mut out = Canvas::new(out_w, out_h);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let mut best = ' ';
            let mut best_rank = 0u8;
            for dy in 0..zoom {
                for dx in 0..zoom {
                    let ch = full
                        .get((ox * zoom + dx) as i32, (oy * zoom + dy) as i32)
                        .unwrap_or(' ');
                    let rank = match ch {
                        ' ' => 0,
                        '░' => 1,
                        '+' | '-' | '|' => 3,
                        _ => 2,
                    };
                    if rank > best_rank {
                        best_rank = rank;
                        best = match rank {
                            3 => '▫',
                            2 => '▪',
                            _ => ch,
                        };
                    }
                }
            }
            out.put(ox as i32, oy as i32, best);
        }
    }
    out.to_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::layout;
    use alive_core::boxtree::{BoxItem, BoxNode};
    use alive_core::{Attr, Value};

    fn render(node: &BoxNode) -> String {
        render_to_text(&layout(node))
    }

    #[test]
    fn renders_stacked_text() {
        let mut root = BoxNode::new(None);
        root.items.push(BoxItem::leaf(Value::str("hello")));
        root.items.push(BoxItem::leaf(Value::str("world")));
        assert_eq!(render(&root), "hello\nworld\n");
    }

    #[test]
    fn renders_border() {
        let mut inner = BoxNode::new(None);
        inner
            .items
            .push(BoxItem::attr(Attr::Border, Value::Number(1.0)));
        inner.items.push(BoxItem::leaf(Value::str("x")));
        let mut root = BoxNode::new(None);
        root.push_child(inner);
        assert_eq!(render(&root), "+-+\n|x|\n+-+\n");
    }

    #[test]
    fn renders_background_shading() {
        let mut inner = BoxNode::new(None);
        inner.items.push(BoxItem::attr(
            Attr::Background,
            Value::Color(alive_core::Color::new(170, 210, 240)),
        ));
        inner
            .items
            .push(BoxItem::attr(Attr::Width, Value::Number(3.0)));
        inner
            .items
            .push(BoxItem::attr(Attr::Height, Value::Number(1.0)));
        let mut root = BoxNode::new(None);
        root.push_child(inner);
        assert_eq!(render(&root), "░░░\n");
    }

    #[test]
    fn scaled_text_doubles_cells() {
        let mut root = BoxNode::new(None);
        root.items
            .push(BoxItem::attr(Attr::FontSize, Value::Number(2.0)));
        root.items.push(BoxItem::leaf(Value::str("a")));
        assert_eq!(render(&root), "aa\naa\n");
    }

    #[test]
    fn outline_all_boxes_mode() {
        let mut inner = BoxNode::new(None);
        inner
            .items
            .push(BoxItem::attr(Attr::Padding, Value::Number(1.0)));
        inner.items.push(BoxItem::leaf(Value::str("x")));
        let mut root = BoxNode::new(None);
        root.push_child(inner);
        let tree = layout(&root);
        let plain = render_with_options(&tree, RenderOptions::default());
        let outlined = render_with_options(
            &tree,
            RenderOptions {
                outline_all_boxes: true,
                ..RenderOptions::default()
            },
        );
        assert!(!plain.contains('+'), "no frames by default: {plain}");
        assert_eq!(outlined, "+-+\n|x|\n+-+\n");
    }

    #[test]
    fn zoomed_out_view_shrinks_but_keeps_structure() {
        // Two bordered boxes stacked; at zoom 2 they remain two distinct
        // structures at half size.
        let mut a = BoxNode::new(None);
        a.items
            .push(BoxItem::attr(Attr::Border, Value::Number(1.0)));
        a.items.push(BoxItem::leaf(Value::str("alpha")));
        let mut b = BoxNode::new(None);
        b.items.push(BoxItem::leaf(Value::str("beta one")));
        b.items.push(BoxItem::leaf(Value::str("beta two")));
        let mut root = BoxNode::new(None);
        root.push_child(a);
        root.push_child(b);
        let tree = layout(&root);
        let full = render_to_text(&tree);
        let zoomed = render_zoomed_out(&tree, 2);
        assert!(zoomed.lines().count() < full.lines().count());
        assert!(zoomed.contains('▫'), "borders survive: {zoomed}");
        assert!(zoomed.contains('▪'), "text survives as blocks: {zoomed}");
        // Zoom 1 == plain text modulo glyph substitution size.
        let zoom1 = render_zoomed_out(&tree, 1);
        assert_eq!(zoom1.lines().count(), full.lines().count());
    }

    #[test]
    fn canvas_bounds_are_safe() {
        let mut c = Canvas::new(2, 2);
        c.put(-1, 0, 'x');
        c.put(5, 5, 'x');
        assert_eq!(c.get(-1, 0), None);
        assert_eq!(c.get(0, 0), Some(' '));
        assert_eq!(c.width(), 2);
        assert_eq!(c.height(), 2);
    }

    #[test]
    fn text_frame_partial_repaint_is_byte_identical() {
        use crate::diff::{damage_rects, diff_displays};

        let build = |mid: &str| {
            let mut root = BoxNode::new(None);
            root.items.push(BoxItem::leaf(Value::str("header")));
            let mut inner = BoxNode::new(None);
            inner
                .items
                .push(BoxItem::attr(Attr::Border, Value::Number(1.0)));
            inner.items.push(BoxItem::leaf(Value::str(mid)));
            root.push_child(inner);
            root.items.push(BoxItem::leaf(Value::str("footer")));
            root
        };
        let old = build("aa");
        let new = build("zz");
        let old_tree = layout(&old);
        let new_tree = layout(&new);

        let mut frame = TextFrame::new();
        let full_first = frame.render_full(&old_tree);
        assert_eq!(full_first, render_to_text(&old_tree));

        let damage = damage_rects(&old_tree, &new_tree, &diff_displays(&old, &new));
        let partial = frame
            .render_damaged(&new_tree, &damage)
            .expect("same size, retained frame");
        assert_eq!(partial, render_to_text(&new_tree));
        // Only the bordered box (4x3) was repainted, not the screen.
        assert!(
            frame.cells_repainted() < 6 * 5,
            "repainted {} cells",
            frame.cells_repainted()
        );
        assert!(frame.cells_repainted() >= 4 * 3);
    }

    #[test]
    fn text_frame_refuses_size_changes() {
        let mut one = BoxNode::new(None);
        one.items.push(BoxItem::leaf(Value::str("x")));
        let mut two = BoxNode::new(None);
        two.items.push(BoxItem::leaf(Value::str("x")));
        two.items.push(BoxItem::leaf(Value::str("y")));
        let mut frame = TextFrame::new();
        frame.render_full(&layout(&one));
        assert!(frame.render_damaged(&layout(&two), &[]).is_none());
        frame.invalidate();
        assert!(frame.render_damaged(&layout(&one), &[]).is_none());
    }
}
