//! Integer cell geometry for the text-based display substrate.

use std::fmt;

/// A point in cell coordinates (x right, y down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Point {
    /// Column.
    pub x: i32,
    /// Row.
    pub y: i32,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Translate by a delta.
    pub fn offset(self, dx: i32, dy: i32) -> Point {
        Point {
            x: self.x + dx,
            y: self.y + dy,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A size in cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Size {
    /// Width in cells.
    pub w: i32,
    /// Height in cells.
    pub h: i32,
}

impl Size {
    /// Construct a size; clamps negatives to zero.
    pub fn new(w: i32, h: i32) -> Self {
        Size {
            w: w.max(0),
            h: h.max(0),
        }
    }

    /// Whether either dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

/// An axis-aligned rectangle: origin plus size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Top-left corner.
    pub origin: Point,
    /// Extent.
    pub size: Size,
}

impl Rect {
    /// Construct a rectangle.
    pub fn new(x: i32, y: i32, w: i32, h: i32) -> Self {
        Rect {
            origin: Point::new(x, y),
            size: Size::new(w, h),
        }
    }

    /// Left edge.
    pub fn left(&self) -> i32 {
        self.origin.x
    }

    /// Top edge.
    pub fn top(&self) -> i32 {
        self.origin.y
    }

    /// One past the right edge.
    pub fn right(&self) -> i32 {
        self.origin.x + self.size.w
    }

    /// One past the bottom edge.
    pub fn bottom(&self) -> i32 {
        self.origin.y + self.size.h
    }

    /// Whether the point is inside the rectangle.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.left() && p.x < self.right() && p.y >= self.top() && p.y < self.bottom()
    }

    /// Shrink the rectangle by `amount` cells on every side (clamping).
    pub fn inset(&self, amount: i32) -> Rect {
        Rect::new(
            self.origin.x + amount,
            self.origin.y + amount,
            self.size.w - 2 * amount,
            self.size.h - 2 * amount,
        )
    }

    /// Translate by a delta.
    pub fn offset(&self, dx: i32, dy: i32) -> Rect {
        Rect {
            origin: self.origin.offset(dx, dy),
            size: self.size,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.size, self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_edges_and_containment() {
        let r = Rect::new(2, 3, 4, 2);
        assert_eq!(r.left(), 2);
        assert_eq!(r.right(), 6);
        assert_eq!(r.top(), 3);
        assert_eq!(r.bottom(), 5);
        assert!(r.contains(Point::new(2, 3)));
        assert!(r.contains(Point::new(5, 4)));
        assert!(!r.contains(Point::new(6, 4)));
        assert!(!r.contains(Point::new(2, 5)));
    }

    #[test]
    fn inset_clamps() {
        let r = Rect::new(0, 0, 4, 4).inset(1);
        assert_eq!(r, Rect::new(1, 1, 2, 2));
        let tiny = Rect::new(0, 0, 1, 1).inset(1);
        assert!(tiny.size.is_empty());
    }

    #[test]
    fn size_clamps_negatives() {
        assert_eq!(Size::new(-3, 5), Size::new(0, 5));
    }
}
