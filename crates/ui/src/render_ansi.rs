//! ANSI terminal rendering: the colored sibling of
//! [`crate::render_text`]. Produces 24-bit color escape sequences for
//! backgrounds and foregrounds, so the examples can show the paper's
//! light-blue highlights as actual colors in a terminal.

use crate::geom::Rect;
use crate::layout::{LayoutBox, LayoutItem, LayoutTree};
use alive_core::value::Color;

/// One styled cell of the ANSI canvas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cell {
    ch: char,
    fg: Option<Color>,
    bg: Option<Color>,
}

impl Cell {
    const BLANK: Cell = Cell {
        ch: ' ',
        fg: None,
        bg: None,
    };
}

/// A canvas of styled cells.
#[derive(Debug, Clone)]
pub struct AnsiCanvas {
    width: usize,
    height: usize,
    cells: Vec<Cell>,
}

impl AnsiCanvas {
    /// A blank canvas.
    pub fn new(width: usize, height: usize) -> Self {
        AnsiCanvas {
            width,
            height,
            cells: vec![Cell::BLANK; width * height],
        }
    }

    fn idx(&self, x: i32, y: i32) -> Option<usize> {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            Some(y as usize * self.width + x as usize)
        } else {
            None
        }
    }

    fn put(&mut self, x: i32, y: i32, ch: char, fg: Option<Color>) {
        if let Some(i) = self.idx(x, y) {
            self.cells[i].ch = ch;
            if fg.is_some() {
                self.cells[i].fg = fg;
            }
        }
    }

    fn fill_bg(&mut self, rect: Rect, bg: Color) {
        for y in rect.top()..rect.bottom() {
            for x in rect.left()..rect.right() {
                if let Some(i) = self.idx(x, y) {
                    self.cells[i].bg = Some(bg);
                }
            }
        }
    }

    /// Serialize to a string with ANSI 24-bit color escapes. Runs of
    /// identical style share one escape sequence; every line ends with
    /// a reset so terminal state never leaks.
    pub fn to_ansi(&self) -> String {
        let mut out = String::new();
        for row in 0..self.height {
            self.write_row_ansi(row, &mut out);
            out.push('\n');
        }
        out
    }

    /// One row as an ANSI-escaped string (no trailing newline).
    fn write_row_ansi(&self, row: usize, out: &mut String) {
        let mut current: (Option<Color>, Option<Color>) = (None, None);
        let mut line = String::new();
        let cells = &self.cells[row * self.width..(row + 1) * self.width];
        // Trim trailing blank cells per line.
        let end = cells
            .iter()
            .rposition(|c| *c != Cell::BLANK)
            .map(|i| i + 1)
            .unwrap_or(0);
        for cell in &cells[..end] {
            let style = (cell.fg, cell.bg);
            if style != current {
                line.push_str("\x1b[0m");
                if let Some(fg) = cell.fg {
                    line.push_str(&format!("\x1b[38;2;{};{};{}m", fg.r, fg.g, fg.b));
                }
                if let Some(bg) = cell.bg {
                    line.push_str(&format!("\x1b[48;2;{};{};{}m", bg.r, bg.g, bg.b));
                }
                current = style;
            }
            line.push(cell.ch);
        }
        if current != (None, None) || !line.is_empty() {
            line.push_str("\x1b[0m");
        }
        out.push_str(&line);
    }

    fn row_cells(&self, row: usize) -> &[Cell] {
        &self.cells[row * self.width..(row + 1) * self.width]
    }
}

/// Render a layout tree with ANSI colors.
pub fn render_to_ansi(tree: &LayoutTree) -> String {
    let size = tree.size();
    let mut canvas = AnsiCanvas::new(size.w.max(0) as usize, size.h.max(0) as usize);
    draw(&mut canvas, &tree.root, None);
    canvas.to_ansi()
}

/// A retained ANSI framebuffer for partial terminal repaint.
///
/// [`AnsiFramebuffer::render`] returns an escape string that, printed
/// right after the previous frame's output, updates the terminal:
/// the first frame (and any frame after a size change or
/// [`AnsiFramebuffer::reset`]) paints the whole view; steady-state
/// frames move the cursor up to each changed row, erase it, and
/// repaint just that row.
///
/// The caller owns the terminal protocol: the cursor must still sit on
/// the line just below the previously printed frame. Anything else
/// printed in between (log lines, prompts) invalidates that assumption
/// — call [`AnsiFramebuffer::reset`] first and a full frame is emitted.
#[derive(Debug, Clone, Default)]
pub struct AnsiFramebuffer {
    previous: Option<AnsiCanvas>,
    rows_repainted: u64,
    cells_repainted: u64,
}

impl AnsiFramebuffer {
    /// A fresh framebuffer; the first render paints fully.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget the retained frame (e.g. after unrelated terminal
    /// output); the next render paints the whole view.
    pub fn reset(&mut self) {
        self.previous = None;
    }

    /// Distinct rows rewritten by the most recent render.
    pub fn rows_repainted(&self) -> u64 {
        self.rows_repainted
    }

    /// Cells covered by the rows rewritten in the most recent render.
    pub fn cells_repainted(&self) -> u64 {
        self.cells_repainted
    }

    /// Render the next frame, returning the terminal update string.
    pub fn render(&mut self, tree: &LayoutTree) -> String {
        let size = tree.size();
        let (w, h) = (size.w.max(0) as usize, size.h.max(0) as usize);
        let mut canvas = AnsiCanvas::new(w, h);
        draw(&mut canvas, &tree.root, None);

        let out = match &self.previous {
            Some(prev) if prev.width == w && prev.height == h => {
                let mut out = String::new();
                // Cursor starts on the line below the old frame; walk
                // changed rows top-to-bottom with relative moves.
                let mut cursor_row = h; // rows are 0-based; h = below
                let mut rows = 0u64;
                for row in 0..h {
                    if prev.row_cells(row) == canvas.row_cells(row) {
                        continue;
                    }
                    rows += 1;
                    let up = cursor_row - row;
                    out.push_str(&format!("\x1b[{up}A\r\x1b[2K"));
                    canvas.write_row_ansi(row, &mut out);
                    out.push('\n');
                    cursor_row = row + 1;
                }
                if cursor_row < h {
                    out.push_str(&format!("\x1b[{}B", h - cursor_row));
                }
                self.rows_repainted = rows;
                self.cells_repainted = rows * w as u64;
                out
            }
            _ => {
                self.rows_repainted = h as u64;
                self.cells_repainted = (w * h) as u64;
                canvas.to_ansi()
            }
        };
        self.previous = Some(canvas);
        out
    }
}

fn draw(canvas: &mut AnsiCanvas, node: &LayoutBox, inherited_fg: Option<Color>) {
    if let Some(bg) = node.style.background {
        canvas.fill_bg(node.rect, bg);
    }
    let fg = node.style.foreground.or(inherited_fg);
    if node.style.border > 0 {
        frame(canvas, node.rect, fg);
    }
    for item in &node.items {
        match item {
            LayoutItem::Text {
                rect,
                lines,
                font_size,
            } => {
                let scale = (*font_size).max(1);
                for (row, line) in lines.iter().enumerate() {
                    for (col, ch) in line.chars().enumerate() {
                        for dy in 0..scale {
                            for dx in 0..scale {
                                canvas.put(
                                    rect.left() + (col as i32) * scale + dx,
                                    rect.top() + (row as i32) * scale + dy,
                                    ch,
                                    fg,
                                );
                            }
                        }
                    }
                }
            }
            LayoutItem::Child(child) => draw(canvas, child, fg),
        }
    }
}

fn frame(canvas: &mut AnsiCanvas, rect: Rect, fg: Option<Color>) {
    if rect.size.is_empty() {
        return;
    }
    let (l, t, r, b) = (rect.left(), rect.top(), rect.right() - 1, rect.bottom() - 1);
    for x in l..=r {
        canvas.put(x, t, '─', fg);
        canvas.put(x, b, '─', fg);
    }
    for y in t..=b {
        canvas.put(l, y, '│', fg);
        canvas.put(r, y, '│', fg);
    }
    canvas.put(l, t, '┌', fg);
    canvas.put(r, t, '┐', fg);
    canvas.put(l, b, '└', fg);
    canvas.put(r, b, '┘', fg);
}

/// Strip ANSI escape sequences — useful for asserting on colored output.
pub fn strip_ansi(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\x1b' {
            // Skip to the terminating `m` of the CSI sequence.
            for esc in chars.by_ref() {
                if esc == 'm' {
                    break;
                }
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::layout;
    use alive_core::boxtree::{BoxItem, BoxNode};
    use alive_core::{Attr, Value};

    fn colored_box() -> BoxNode {
        let mut inner = BoxNode::new(None);
        inner.items.push(BoxItem::attr(
            Attr::Background,
            Value::Color(Color::new(170, 210, 240)),
        ));
        inner.items.push(BoxItem::attr(
            Attr::Foreground,
            Value::Color(Color::new(220, 50, 47)),
        ));
        inner.items.push(BoxItem::leaf(Value::str("hi")));
        let mut root = BoxNode::new(None);
        root.push_child(inner);
        root
    }

    #[test]
    fn emits_color_escapes_and_resets() {
        let ansi = render_to_ansi(&layout(&colored_box()));
        assert!(ansi.contains("\x1b[48;2;170;210;240m"), "{ansi:?}");
        assert!(ansi.contains("\x1b[38;2;220;50;47m"), "{ansi:?}");
        assert!(ansi.trim_end().ends_with("\x1b[0m"), "{ansi:?}");
    }

    #[test]
    fn stripped_output_matches_plain_renderer_text() {
        let tree = layout(&colored_box());
        let plain = strip_ansi(&render_to_ansi(&tree));
        assert_eq!(plain, "hi\n");
    }

    #[test]
    fn border_uses_box_drawing_chars() {
        let mut b = BoxNode::new(None);
        b.items
            .push(BoxItem::attr(Attr::Border, Value::Number(1.0)));
        b.items.push(BoxItem::leaf(Value::str("x")));
        let mut root = BoxNode::new(None);
        root.push_child(b);
        let ansi = strip_ansi(&render_to_ansi(&layout(&root)));
        assert_eq!(ansi, "┌─┐\n│x│\n└─┘\n");
    }

    #[test]
    fn strip_ansi_is_identity_on_plain_text() {
        assert_eq!(strip_ansi("plain\ntext"), "plain\ntext");
        assert_eq!(strip_ansi("\x1b[0m\x1b[38;2;0;0;0mz\x1b[0m"), "z");
    }

    fn three_rows(mid: &str) -> BoxNode {
        let mut root = BoxNode::new(None);
        root.items.push(BoxItem::leaf(Value::str("top row")));
        root.items.push(BoxItem::leaf(Value::str(mid)));
        root.items.push(BoxItem::leaf(Value::str("bottom!")));
        root
    }

    #[test]
    fn framebuffer_first_frame_is_full() {
        let tree = layout(&three_rows("mid one"));
        let mut fb = AnsiFramebuffer::new();
        let first = fb.render(&tree);
        assert_eq!(first, render_to_ansi(&tree));
        assert_eq!(fb.rows_repainted(), 3);
    }

    #[test]
    fn framebuffer_repaints_only_changed_rows() {
        let mut fb = AnsiFramebuffer::new();
        fb.render(&layout(&three_rows("mid one")));
        let update = fb.render(&layout(&three_rows("mid TWO")));
        // One changed row: cursor up 2 (from below row 2 to row 1),
        // erase, rewrite, newline, then back down to the bottom.
        assert_eq!(fb.rows_repainted(), 1);
        assert!(update.starts_with("\x1b[2A\r\x1b[2K"), "{update:?}");
        assert!(update.contains("mid TWO"));
        assert!(!update.contains("top row"), "unchanged rows not resent");
        assert!(update.ends_with("\x1b[1B"), "{update:?}");

        // An identical frame sends nothing at all.
        let idle = fb.render(&layout(&three_rows("mid TWO")));
        assert_eq!(idle, "");
        assert_eq!(fb.rows_repainted(), 0);
    }

    #[test]
    fn framebuffer_resets_to_full_frames() {
        let tree = layout(&three_rows("mid one"));
        let mut fb = AnsiFramebuffer::new();
        fb.render(&tree);
        fb.reset();
        assert_eq!(fb.render(&tree), render_to_ansi(&tree));
        assert_eq!(fb.rows_repainted(), 3);

        // A size change also forces a full frame.
        let mut bigger = three_rows("mid one");
        bigger.items.push(BoxItem::leaf(Value::str("fourth")));
        let big_tree = layout(&bigger);
        assert_eq!(fb.render(&big_tree), render_to_ansi(&big_tree));
        assert_eq!(fb.rows_repainted(), 4);
    }
}
