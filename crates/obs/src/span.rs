//! A bounded ring-buffer span/event log.
//!
//! Spans are the "what just happened" companion to the metrics'
//! "how much has happened": a fixed-capacity window of recent timed
//! operations (name, start µs, duration µs) plus point events. The
//! buffer never grows — old records are evicted and counted, the same
//! discipline as `alive-live`'s `FaultLog` — so it is safe to leave on
//! in a host serving many sessions.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::Clock;

/// One completed span or instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static label, e.g. `"frame.eval"` or `"host.drain"`.
    pub name: &'static str,
    /// Clock reading when the span opened.
    pub start_us: u64,
    /// Elapsed µs (0 for instant events).
    pub duration_us: u64,
}

#[derive(Debug, Default)]
struct SpanBuffer {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded, shareable log of recent spans.
#[derive(Debug, Clone)]
pub struct SpanLog {
    buffer: Arc<Mutex<SpanBuffer>>,
    capacity: usize,
}

impl SpanLog {
    /// A log keeping the most recent `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SpanLog {
            buffer: Arc::new(Mutex::new(SpanBuffer::default())),
            capacity: capacity.max(1),
        }
    }

    /// Poison recovery: a panicked writer leaves at worst a missing
    /// record, and losing the span window is never worth killing the
    /// host (same policy as `alive-serve`'s locks).
    fn lock(&self) -> MutexGuard<'_, SpanBuffer> {
        match self.buffer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Append a completed record, evicting the oldest at capacity.
    pub fn push(&self, record: SpanRecord) {
        let mut buf = self.lock();
        if buf.records.len() == self.capacity {
            buf.records.pop_front();
            buf.dropped = buf.dropped.saturating_add(1);
        }
        buf.records.push_back(record);
    }

    /// Record an instant event (zero duration) at `clock`'s now.
    pub fn event(&self, clock: &dyn Clock, name: &'static str) {
        self.push(SpanRecord {
            name,
            start_us: clock.now_us(),
            duration_us: 0,
        });
    }

    /// Time a closure against `clock` and log it as `name`.
    pub fn time<T>(&self, clock: &dyn Clock, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = clock.now_us();
        let out = f();
        self.push(SpanRecord {
            name,
            start_us: start,
            duration_us: clock.now_us().saturating_sub(start),
        });
        out
    }

    /// Copy of the current window, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.lock().records.iter().cloned().collect()
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// True when nothing has been logged (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.lock().records.is_empty()
    }

    /// Maximum records held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for SpanLog {
    fn default() -> Self {
        // Matches FaultLog's window: enough to see a recent episode,
        // small enough to forget about.
        SpanLog::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let log = SpanLog::new(2);
        for i in 0..5u64 {
            log.push(SpanRecord {
                name: "tick",
                start_us: i,
                duration_us: 0,
            });
        }
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].start_us, 3);
        assert_eq!(records[1].start_us, 4);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn time_measures_with_injected_clock() {
        let clock = ManualClock::with_auto_step(11);
        let log = SpanLog::new(4);
        let got = log.time(&clock, "work", || 42);
        assert_eq!(got, 42);
        let records = log.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "work");
        assert_eq!(records[0].duration_us, 11);
    }
}
