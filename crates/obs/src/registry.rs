//! The [`Registry`]: named metric handles, one shared clock, one span
//! log, one snapshot call.
//!
//! A registry is cheap to clone (everything inside is `Arc`-shared) and
//! is meant to be threaded through a subsystem at construction time:
//! `System`, `LiveSession`, and `SessionHost` each hold one and resolve
//! their handles once, so the hot path never touches the name map —
//! recording is a plain atomic op on a pre-fetched [`Counter`] /
//! [`Gauge`] / [`Histogram`] handle.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::{Clock, MonotonicClock};
use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::MetricsSnapshot;
use crate::span::SpanLog;

#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shareable bundle of named metrics plus the clock they are timed
/// against.
#[derive(Debug, Clone)]
pub struct Registry {
    tables: Arc<Mutex<Tables>>,
    clock: Arc<dyn Clock>,
    spans: SpanLog,
}

impl Registry {
    /// A registry on the real monotonic clock.
    pub fn new() -> Self {
        Registry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an injected clock — the deterministic-tests entry
    /// point (pass a [`crate::ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry {
            tables: Arc::new(Mutex::new(Tables::default())),
            clock,
            spans: SpanLog::default(),
        }
    }

    /// Poison recovery: losing metrics fidelity is never worth a
    /// panic cascade (same policy as `alive-serve`'s locks).
    fn lock(&self) -> MutexGuard<'_, Tables> {
        match self.tables.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Metric names: non-empty ASCII without whitespace, so the wire
    /// format needs no escaping. Invalid names are sanitized (not
    /// rejected — no-panic discipline): whitespace becomes `_`, empty
    /// becomes `"unnamed"`.
    fn sanitize(name: &str) -> String {
        if name.is_empty() {
            return "unnamed".to_string();
        }
        name.chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect()
    }

    /// Get-or-create the counter `name`. The returned handle is shared:
    /// every caller asking for the same name gets the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let name = Registry::sanitize(name);
        self.lock().counters.entry(name).or_default().clone()
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let name = Registry::sanitize(name);
        self.lock().gauges.entry(name).or_default().clone()
    }

    /// Get-or-create the histogram `name` over the default latency
    /// bounds.
    pub fn histogram(&self, name: &str) -> Histogram {
        let name = Registry::sanitize(name);
        self.lock().histograms.entry(name).or_default().clone()
    }

    /// Get-or-create the histogram `name` over explicit bounds. If the
    /// name already exists its original bounds win (handles must stay
    /// consistent).
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Histogram {
        let name = Registry::sanitize(name);
        self.lock()
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// The clock this registry times against.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// The registry's bounded span log.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Time a closure against the registry clock and log it as a span.
    pub fn span<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.spans.time(self.clock.as_ref(), name, f)
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let tables = self.lock();
        let mut snap = MetricsSnapshot::new();
        for (name, c) in &tables.counters {
            snap.counters.insert(name.clone(), c.get());
        }
        for (name, g) in &tables.gauges {
            snap.gauges.insert(name.clone(), g.get());
        }
        for (name, h) in &tables.histograms {
            snap.histograms.insert(name.clone(), h.snapshot());
        }
        snap
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn same_name_same_cell() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x").get(), 2);
    }

    #[test]
    fn clones_share_tables() {
        let reg = Registry::new();
        let other = reg.clone();
        reg.counter("shared").add(5);
        assert_eq!(other.snapshot().counter("shared"), 5);
    }

    #[test]
    fn names_are_sanitized_not_rejected() {
        let reg = Registry::new();
        reg.counter("has space").inc();
        reg.counter("").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("has_space"), 1);
        assert_eq!(snap.counter("unnamed"), 1);
    }

    #[test]
    fn span_uses_injected_clock() {
        let reg = Registry::with_clock(Arc::new(ManualClock::with_auto_step(3)));
        reg.span("work", || ());
        let records = reg.spans().records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].duration_us, 3);
    }

    #[test]
    fn snapshot_reflects_all_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(2);
        reg.gauge("g").observe_max(7);
        reg.histogram("h").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.gauge("g"), 7);
        assert_eq!(snap.histogram("h").map(|h| h.count), Some(1));
    }
}
