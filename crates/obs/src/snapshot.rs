//! [`MetricsSnapshot`]: the owned, serializable, mergeable view of a
//! registry at a point in time.
//!
//! Snapshots are what cross layer boundaries: a `LiveSession` answers
//! `SessionCommand::Metrics` with one, a `SessionHost` sums its
//! sessions' snapshots into a host-level one, and the multisession
//! bench writes one into `BENCH_multisession.json`. Everything is
//! `BTreeMap`-keyed so serialization order is deterministic and the
//! wire round-trip is byte-identical.

use std::collections::BTreeMap;

use crate::metric::HistogramSnapshot;

/// Magic first line of the wire format. Versioned so a future format
/// change can coexist with old snapshots in artifacts.
pub const WIRE_HEADER: &str = "#alive-metrics v1";

/// A point-in-time copy of every metric in a registry (or the merged
/// sum of several registries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotone event totals. Merge policy: add.
    pub counters: BTreeMap<String, u64>,
    /// Levels and high-water marks. Merge policy: max (a host-level
    /// "deepest mailbox" is the max over sessions, not their sum).
    pub gauges: BTreeMap<String, i64>,
    /// Latency distributions. Merge policy: bucket-wise add.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// True when nothing has been recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by name (0 when absent — counters start at 0).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Fold `other` into `self`: counters add, gauges take the max,
    /// histograms merge bucket-wise. This is how a host snapshot is
    /// built as the sum of its session snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(i64::MIN);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Sum of all counter values — the coarse "how much happened"
    /// total the invariant suite reconciles host-vs-sessions with.
    pub fn counters_total(&self) -> u64 {
        self.counters
            .values()
            .fold(0u64, |a, v| a.saturating_add(*v))
    }

    /// Line-oriented wire form, ending in a newline:
    ///
    /// ```text
    /// #alive-metrics v1
    /// counter <name> <value>
    /// gauge <name> <value>
    /// hist <name> count=<n> sum=<n> bounds=<b,b,..> buckets=<n,n,..>
    /// ```
    ///
    /// Names are validated on the way in by [`crate::Registry`] (no
    /// whitespace), so the format needs no escaping. `BTreeMap` order
    /// makes the output deterministic; `parse_wire` of the output
    /// re-serializes byte-identically (golden-tested).
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(WIRE_HEADER);
        out.push('\n');
        for (name, v) in &self.counters {
            out.push_str("counter ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str("gauge ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str("hist ");
            out.push_str(name);
            out.push_str(" count=");
            out.push_str(&h.count.to_string());
            out.push_str(" sum=");
            out.push_str(&h.sum.to_string());
            out.push_str(" bounds=");
            push_joined(&mut out, &h.bounds);
            out.push_str(" buckets=");
            push_joined(&mut out, &h.buckets);
            out.push('\n');
        }
        out
    }

    /// Parse the wire form produced by [`MetricsSnapshot::to_wire`].
    /// Returns `None` on a missing/unknown header or any malformed
    /// line — snapshots are all-or-nothing, a truncated artifact never
    /// half-parses.
    pub fn parse_wire(text: &str) -> Option<MetricsSnapshot> {
        let mut lines = text.lines();
        if lines.next()?.trim_end() != WIRE_HEADER {
            return None;
        }
        let mut snap = MetricsSnapshot::new();
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let kind = parts.next()?;
            let name = parts.next()?.to_string();
            let rest = parts.next()?;
            match kind {
                "counter" => {
                    snap.counters.insert(name, rest.parse().ok()?);
                }
                "gauge" => {
                    snap.gauges.insert(name, rest.parse().ok()?);
                }
                "hist" => {
                    snap.histograms.insert(name, parse_hist(rest)?);
                }
                _ => return None,
            }
        }
        Some(snap)
    }
}

fn push_joined(out: &mut String, values: &[u64]) {
    let mut first = true;
    for v in values {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&v.to_string());
    }
}

fn parse_u64_list(text: &str) -> Option<Vec<u64>> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',').map(|v| v.parse().ok()).collect()
}

fn parse_hist(rest: &str) -> Option<HistogramSnapshot> {
    let mut count = None;
    let mut sum = None;
    let mut bounds = None;
    let mut buckets = None;
    for field in rest.split(' ') {
        let (key, value) = field.split_once('=')?;
        match key {
            "count" => count = Some(value.parse().ok()?),
            "sum" => sum = Some(value.parse().ok()?),
            "bounds" => bounds = Some(parse_u64_list(value)?),
            "buckets" => buckets = Some(parse_u64_list(value)?),
            _ => return None,
        }
    }
    Some(HistogramSnapshot {
        bounds: bounds?,
        buckets: buckets?,
        sum: sum?,
        count: count?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.counters.insert("edits_total".into(), 7);
        snap.counters.insert("faults_total".into(), 2);
        snap.gauges.insert("mailbox_depth_hw".into(), 4);
        let h = crate::metric::Histogram::with_bounds(&[10, 100]);
        h.record(5);
        h.record(60);
        h.record(999);
        snap.histograms
            .insert("cmd_latency_us".into(), h.snapshot());
        snap
    }

    #[test]
    fn wire_round_trip_is_byte_identical() {
        let snap = sample();
        let wire = snap.to_wire();
        let parsed = MetricsSnapshot::parse_wire(&wire).expect("parses");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_wire(), wire);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricsSnapshot::parse_wire("").is_none());
        assert!(MetricsSnapshot::parse_wire("#alive-metrics v0\n").is_none());
        assert!(MetricsSnapshot::parse_wire("#alive-metrics v1\nbogus line here\n").is_none());
        assert!(MetricsSnapshot::parse_wire("#alive-metrics v1\ncounter x notanumber\n").is_none());
    }

    #[test]
    fn merge_adds_counters_maxes_gauges() {
        let mut a = sample();
        let mut b = sample();
        b.gauges.insert("mailbox_depth_hw".into(), 9);
        a.merge(&b);
        assert_eq!(a.counter("edits_total"), 14);
        assert_eq!(a.gauge("mailbox_depth_hw"), 9);
        let h = a.histogram("cmd_latency_us").expect("merged");
        assert_eq!(h.count, 6);
    }
}
