//! Atomic metric primitives: [`Counter`], [`Gauge`], and a fixed-bucket
//! latency [`Histogram`].
//!
//! Handles are `Arc`-backed: cloning is cheap, recording is a single
//! atomic RMW, and every clone observes the same cell. That is load-
//! bearing for the live loop — `alive-core::System` is cloned as a
//! transaction checkpoint, and metrics must survive a quarantine
//! rollback exactly like the fault log does, so clones deliberately
//! share their cells rather than fork them.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Saturates at `u64::MAX` in the sense that wrapping is
    /// practically unreachable (2^64 events).
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time level: queue depths, high-water marks, cache sizes.
///
/// Unlike [`Counter`], a gauge may move both ways. `observe_max` gives
/// high-water semantics (mailbox depth peaks, ready-queue length peaks)
/// with a single `fetch_max`.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the level to `v` if `v` is higher — high-water tracking.
    pub fn observe_max(&self, v: i64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Default bucket upper bounds (µs) for latency histograms: tuned for a
/// live loop whose interesting range spans "memo hit" (~µs) to "cold
/// compile under load" (~100ms). The final implicit bucket is overflow.
pub const DEFAULT_LATENCY_BOUNDS_US: &[u64] = &[
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

struct HistogramCells {
    /// Upper (inclusive) bound per bucket; one extra overflow bucket
    /// follows the last bound.
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` buckets; the last is overflow.
    buckets: Box<[AtomicU64]>,
    /// Sum of all recorded values.
    sum: AtomicU64,
    /// Number of recorded values. Written LAST in `record` so a
    /// concurrent snapshot that reads it FIRST always sees
    /// `buckets_sum >= count` — torn reads under-count, never
    /// over-count (asserted by the invariant suite).
    count: AtomicU64,
}

impl std::fmt::Debug for HistogramCells {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCells")
            .field("bounds", &self.bounds)
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

/// A fixed-bucket histogram for latency-style values (µs).
///
/// Recording is three relaxed atomic adds; quantiles come from a
/// [`HistogramSnapshot`] via linear interpolation inside the winning
/// bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// A histogram over [`DEFAULT_LATENCY_BOUNDS_US`].
    pub fn new() -> Self {
        Histogram::with_bounds(DEFAULT_LATENCY_BOUNDS_US)
    }

    /// A histogram over explicit bucket upper bounds. Bounds must be
    /// strictly increasing; out-of-order bounds are sorted and deduped
    /// rather than rejected (no-panic discipline).
    pub fn with_bounds(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets: Box<[AtomicU64]> = (0..sorted.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            cells: Arc::new(HistogramCells {
                bounds: sorted.into_boxed_slice(),
                buckets,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Index of the bucket that holds `value`: first bucket whose upper
    /// bound is `>= value`, else the overflow bucket.
    fn bucket_index(&self, value: u64) -> usize {
        self.cells.bounds.partition_point(|&b| b < value)
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let idx = self.bucket_index(value);
        if let Some(bucket) = self.cells.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
        // Count moves last: see the field comment on `count`.
        self.cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Measure a closure with `clock` and record the elapsed µs.
    pub fn time<T>(&self, clock: &dyn crate::clock::Clock, f: impl FnOnce() -> T) -> T {
        let start = clock.now_us();
        let out = f();
        self.record(clock.now_us().saturating_sub(start));
        out
    }

    /// Point-in-time copy of the cells. Count is read FIRST (the
    /// mirror of `record` writing it last) so concurrent recording can
    /// only make `buckets_sum >= count`, never the reverse.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.cells.count.load(Ordering::Relaxed);
        let sum = self.cells.sum.load(Ordering::Relaxed);
        let buckets = self
            .cells
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.cells.bounds.to_vec(),
            buckets,
            sum,
            count,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An owned, immutable copy of a histogram's state: what crosses the
/// wire and what quantiles are computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper (inclusive) bound per bucket, strictly increasing.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over the default latency bounds.
    pub fn empty() -> Self {
        HistogramSnapshot {
            bounds: DEFAULT_LATENCY_BOUNDS_US.to_vec(),
            buckets: vec![0; DEFAULT_LATENCY_BOUNDS_US.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Total of the bucket counts (≥ `count` under torn concurrent
    /// reads, == `count` at quiescence).
    pub fn buckets_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values, or `None` when empty.
    pub fn mean_us(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }

    /// Quantile `q` in `[0, 1]` by linear interpolation inside the
    /// winning bucket. Returns `None` when the histogram is empty.
    ///
    /// The overflow bucket has no upper bound, so values landing there
    /// report the last finite bound (a deliberate floor: quantiles
    /// saturate rather than invent data beyond the instrumented range).
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.buckets_total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, in [1, total].
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lower = if i == 0 {
                    0
                } else {
                    self.bounds.get(i - 1).copied().unwrap_or(0)
                };
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: saturate at the last finite bound.
                    None => return Some(self.bounds.last().copied().unwrap_or(0)),
                };
                let into = rank - seen; // 1..=in_bucket
                let width = upper - lower;
                let frac = into as f64 / in_bucket as f64;
                return Some(lower + (width as f64 * frac).round() as u64);
            }
            seen += in_bucket;
        }
        // Unreachable when total > 0, but stay total anyway.
        self.bounds.last().copied()
    }

    /// p50 shorthand.
    pub fn p50_us(&self) -> Option<u64> {
        self.quantile_us(0.50)
    }

    /// p90 shorthand.
    pub fn p90_us(&self) -> Option<u64> {
        self.quantile_us(0.90)
    }

    /// p99 shorthand.
    pub fn p99_us(&self) -> Option<u64> {
        self.quantile_us(0.99)
    }

    /// Fold `other` into `self`. Requires equal bounds to merge
    /// bucket-wise; on a bounds mismatch only `sum`/`count` are folded
    /// (counts stay truthful, shape degrades — no panic). Merge over
    /// equal bounds is associative and commutative (property-tested).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.sum = self.sum.saturating_add(other.sum);
        self.count = self.count.saturating_add(other.count);
        if self.bounds == other.bounds && self.buckets.len() == other.buckets.len() {
            for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
                *mine = mine.saturating_add(*theirs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_across_clones() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn gauge_high_water() {
        let g = Gauge::new();
        g.observe_max(5);
        g.observe_max(3);
        assert_eq!(g.get(), 5);
        g.set(-2);
        g.add(1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.record(10); // lands in [0,10]
        h.record(11); // lands in (10,100]
        h.record(100); // lands in (10,100]
        h.record(101); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10 + 11 + 100 + 101);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50_us(), None);
        assert_eq!(s.mean_us(), None);
    }

    #[test]
    fn overflow_quantiles_saturate_at_last_bound() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.record(5_000);
        h.record(9_999);
        let s = h.snapshot();
        assert_eq!(s.p50_us(), Some(100));
        assert_eq!(s.p99_us(), Some(100));
    }
}
