//! # alive-obs — observing the live loop
//!
//! Zero-dependency, `Send + Sync`, no-panic observability for the
//! its-alive workspace: the measurement substrate the paper's Section 5
//! experience report asks for, built to stay on in a host serving many
//! sessions.
//!
//! The pieces:
//!
//! * [`Counter`] / [`Gauge`] — single-atomic-op event totals and
//!   levels (with `observe_max` high-water tracking).
//! * [`Histogram`] — fixed-bucket latency distribution; p50/p90/p99 by
//!   linear interpolation inside the winning bucket.
//! * [`Registry`] — named get-or-create handles, cloned `Arc`-shared;
//!   resolve once at construction, record lock-free on the hot path.
//! * [`SpanLog`] — bounded ring buffer of recent timed operations.
//! * [`Clock`] — injectable time: [`MonotonicClock`] in production,
//!   [`ManualClock`] in tests so every latency assertion is
//!   deterministic and seed-replayable, [`NullClock`] for runs that
//!   want counts without timestamps.
//! * [`MetricsSnapshot`] — the owned, mergeable, line-format-
//!   serializable view that crosses layer boundaries (session →
//!   host → bench artifact).
//!
//! Design rules, enforced here and leaned on by the layers above:
//!
//! 1. **Recording never blocks and never panics.** Hot-path ops are
//!    relaxed atomics on pre-fetched handles; the only mutex guards the
//!    name map (touched at construction) and the span log, both with
//!    poison recovery.
//! 2. **Handles are shared, not forked, across clones.** `System` is
//!    cloned as a transaction checkpoint; a quarantine rollback must
//!    keep its fault counts (exactly like the `FaultLog` keeps its
//!    entries), so metrics ride the `Arc`, not the clone.
//! 3. **Torn reads under-count, never over-count.** `Histogram::record`
//!    bumps `count` last and `snapshot` reads it first, so a concurrent
//!    snapshot always sees `buckets_total() >= count`.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![deny(missing_docs)]

mod clock;
mod metric;
mod registry;
mod snapshot;
mod span;

pub use clock::{Clock, ManualClock, MonotonicClock, NullClock};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, DEFAULT_LATENCY_BOUNDS_US};
pub use registry::Registry;
pub use snapshot::{MetricsSnapshot, WIRE_HEADER};
pub use span::{SpanLog, SpanRecord};

// The whole point is to share these across host worker threads; make
// "is Send + Sync" a compile error rather than a runtime surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<Registry>();
    assert_send_sync::<SpanLog>();
    assert_send_sync::<MetricsSnapshot>();
    assert_send_sync::<MonotonicClock>();
    assert_send_sync::<ManualClock>();
    assert_send_sync::<NullClock>();
};
