//! Injectable time: a [`Clock`] trait with a real monotonic
//! implementation for production and a manually driven one for tests.
//!
//! Every duration the observability layer records flows through a
//! `Clock`, so a test can replace wall time with a counter it controls
//! and every latency histogram, span, and busy/idle split becomes a
//! deterministic function of the test script — replayable from a seed,
//! assertable to the microsecond (see docs/TESTING.md).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of monotonic microseconds. Implementations must be
/// `Send + Sync` (clocks are shared across host worker threads) and
/// must never go backwards.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Microseconds since an arbitrary (per-clock) epoch.
    fn now_us(&self) -> u64;
}

/// The production clock: [`Instant`]-based monotonic microseconds since
/// the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A test clock driven by hand: time moves only when the test says so.
///
/// Two modes compose:
/// * [`ManualClock::advance_us`] moves time explicitly;
/// * a non-zero `auto_step` (see [`ManualClock::with_auto_step`])
///   additionally advances time by a fixed amount on *every read*, so
///   code that brackets work with two `now_us` calls measures exactly
///   `auto_step` µs — deterministic non-zero durations with no test
///   choreography.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
    auto_step: u64,
}

impl ManualClock {
    /// A clock frozen at 0 µs.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock that advances by `step_us` on every [`Clock::now_us`]
    /// read (after returning the pre-advance value).
    pub fn with_auto_step(step_us: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(0),
            auto_step: step_us,
        }
    }

    /// Move time forward by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Ordering::AcqRel);
    }

    /// Convenience: the clock wrapped for sharing.
    pub fn shared(self) -> Arc<ManualClock> {
        Arc::new(self)
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        if self.auto_step == 0 {
            self.now.load(Ordering::Acquire)
        } else {
            self.now.fetch_add(self.auto_step, Ordering::AcqRel)
        }
    }
}

/// A clock that always reads 0 — for runs that want metric *counts*
/// without paying for timestamps (e.g. the metrics-disabled arm of the
/// overhead bench). All durations recorded under it are zero.
#[derive(Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_us(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_us(), 0);
        assert_eq!(clock.now_us(), 0);
        clock.advance_us(250);
        assert_eq!(clock.now_us(), 250);
    }

    #[test]
    fn auto_step_clock_measures_fixed_durations() {
        let clock = ManualClock::with_auto_step(7);
        let start = clock.now_us();
        let end = clock.now_us();
        assert_eq!(end - start, 7, "one bracketed read pair = one step");
        clock.advance_us(100);
        assert_eq!(clock.now_us(), 14 + 100);
    }
}
