//! The observability invariant suite — what "the numbers are true"
//! means, pinned as tests:
//!
//! 1. **Monotonicity.** Counters and histogram counts never decrease
//!    over a session's lifetime, whatever a 256-step random walk of
//!    commands does (edits, taps, undo, faults, quarantines).
//! 2. **Reconciliation.** `system.faults.*` counters equal the fault
//!    log's per-kind totals; `session.edits.*` equal the session's
//!    update bookkeeping — the metrics describe the same history the
//!    session itself reports, exactly.
//! 3. **Torn-read direction.** Snapshots taken while other threads
//!    record may under-count, never over-count: for every histogram,
//!    `buckets_total() >= count` in every snapshot ever observed.
//! 4. **Host additivity.** A host snapshot's counters are exactly the
//!    sum of its live sessions' counters, even when the sessions were
//!    driven concurrently from as many threads as there are CPUs.
//!
//! Every walk is seed-replayable: `ALIVE_TESTKIT_SEED=0x… cargo test`.

use alive_core::system::SystemConfig;
use alive_core::FaultKind;
use alive_live::{LiveSession, SessionCommand};
use alive_obs::{Histogram, HistogramSnapshot, ManualClock, MetricsSnapshot, Registry};
use alive_serve::{HostConfig, SessionHost};
use alive_testkit::{prop, prop_assert, prop_assert_eq, Rng};
use std::sync::atomic::{AtomicBool, Ordering};

const APP: &str = r#"
global count : number = 0
page start() {
    render {
        boxed {
            post "count is " ++ count;
            on tap { count := count + 1; }
        }
        boxed {
            post "open detail";
            on tap { push detail(count); }
        }
    }
}
page detail(n : number) {
    render {
        boxed { post "detail of " ++ n; on tap { pop; } }
    }
}
"#;

/// A session with a deterministic manual clock (auto-stepping so every
/// timed stage has a nonzero duration) and a tight divergence budget.
fn observed_session(registry: &Registry) -> LiveSession {
    LiveSession::observed(
        APP,
        SystemConfig {
            fuel: 50_000,
            max_transitions: 500,
            ..SystemConfig::default()
        },
        false,
        registry,
    )
    .expect("APP compiles")
}

/// Decode one walk step into a session command. Step 4 is a rejected
/// edit (parse error), step 5 a applied-or-noop toggle edit; both keep
/// the walk exercising every counter family.
fn command_for(step: u8, session: &LiveSession) -> SessionCommand {
    match step % 8 {
        0 => SessionCommand::Frame,
        1 => SessionCommand::TapPath(vec![0]),
        2 => SessionCommand::TapPath(vec![1]),
        3 => SessionCommand::Back,
        4 => SessionCommand::EditSource("not a program".to_string()),
        5 => {
            let source = session.source();
            let toggled = if source.contains("count is ") {
                source.replace("count is ", "count = ")
            } else {
                source.replace("count = ", "count is ")
            };
            SessionCommand::EditSource(toggled)
        }
        6 => SessionCommand::Undo,
        _ => SessionCommand::Redo,
    }
}

/// Every counter present in `before` is still present and no smaller in
/// `after`; histogram counts likewise.
fn assert_monotone(before: &MetricsSnapshot, after: &MetricsSnapshot) -> Result<(), String> {
    for (name, &v) in &before.counters {
        prop_assert!(
            after.counter(name) >= v,
            "counter `{name}` decreased: {} -> {}",
            v,
            after.counter(name)
        );
    }
    for (name, h) in &before.histograms {
        let after_count = after.histogram(name).map_or(0, |h| h.count);
        prop_assert!(
            after_count >= h.count,
            "histogram `{name}` count decreased: {} -> {after_count}",
            h.count
        );
    }
    Ok(())
}

#[test]
fn counters_are_monotone_over_random_walks() {
    prop::check(
        "counters_are_monotone_over_random_walks",
        prop::Config::with_cases(8),
        |rng: &mut Rng| (0..256).map(|_| rng.below(256) as u8).collect::<Vec<u8>>(),
        |steps: &Vec<u8>| {
            let registry = Registry::with_clock(ManualClock::with_auto_step(3).shared());
            let mut session = observed_session(&registry);
            let mut previous = session.metrics_snapshot();
            for &step in steps {
                let command = command_for(step, &session);
                session.apply(command);
                let next = session.metrics_snapshot();
                assert_monotone(&previous, &next)?;
                previous = next;
            }
            // End-of-walk reconciliation: the metrics agree with the
            // session's own bookkeeping and fault log.
            let snapshot = session.metrics_snapshot();
            let (applied, rejected) = session.update_counts();
            prop_assert_eq!(snapshot.counter("session.edits.applied"), applied);
            prop_assert_eq!(
                snapshot.counter("session.edits.rejected")
                    + snapshot.counter("session.edits.quarantined"),
                rejected
            );
            prop_assert_eq!(snapshot.counter("session.commands"), steps.len() as u64);
            for (kind, name) in [
                (FaultKind::Init, "system.faults.init"),
                (FaultKind::Handler, "system.faults.handler"),
                (FaultKind::Render, "system.faults.render"),
                (FaultKind::CascadeOverflow, "system.faults.cascade_overflow"),
            ] {
                prop_assert_eq!(
                    snapshot.counter(name),
                    session.fault_log().total_by_kind(kind),
                    "fault counter `{name}` diverged from the fault log"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn fault_counters_reconcile_with_the_fault_log_by_kind() {
    use alive_core::prim::Prim;
    use alive_testkit::FaultPlan;

    let registry = Registry::with_clock(ManualClock::with_auto_step(5).shared());
    let mut session = LiveSession::observed(
        APP.replace("count + 1", "count + math.abs(0 - 1)").as_str(),
        SystemConfig {
            fuel: 50_000,
            max_transitions: 500,
            ..SystemConfig::default()
        },
        false,
        &registry,
    )
    .expect("compiles");

    // Two handler faults: math.abs fails on its 1st and 3rd call.
    let plan = FaultPlan::new()
        .fail_prim(Prim::MathAbs, 1)
        .fail_prim(Prim::MathAbs, 3)
        .shared();
    session.system_mut().set_fault_injector(plan);
    session.tap_path(&[0]).expect("tap delivered"); // faults (call 1)
    session.tap_path(&[0]).expect("tap delivered"); // commits (call 2)
    session.tap_path(&[0]).expect("tap delivered"); // faults (call 3)

    // One render fault: a type-correct but diverging edit, quarantined.
    let diverging = session.source().replace(
        "post \"count is \" ++ count;",
        "while true { count; } post \"never\";",
    );
    let outcome = session.edit_source(&diverging);
    assert!(
        matches!(outcome, alive_live::EditOutcome::Quarantined { .. }),
        "expected quarantine, got {outcome:?}"
    );

    let snapshot = session.metrics_snapshot();
    let log = session.fault_log();
    assert_eq!(log.total(), 3, "two handler faults + one render fault");
    for (kind, name) in [
        (FaultKind::Init, "system.faults.init"),
        (FaultKind::Handler, "system.faults.handler"),
        (FaultKind::Render, "system.faults.render"),
        (FaultKind::CascadeOverflow, "system.faults.cascade_overflow"),
    ] {
        assert_eq!(
            snapshot.counter(name),
            log.total_by_kind(kind),
            "fault counter `{name}` diverged from the fault log"
        );
    }
    assert_eq!(
        snapshot.counter("system.rollbacks"),
        log.total(),
        "every logged fault rolled a transaction back"
    );
    assert_eq!(snapshot.counter("session.edits.quarantined"), 1);
}

#[test]
fn host_snapshot_is_the_sum_of_sessions_under_concurrent_load() {
    const COMMANDS_PER_SESSION: usize = 50;
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let clock = ManualClock::with_auto_step(2).shared();
    let host = SessionHost::with_clock(HostConfig::with_workers(threads), clock);
    let ids: Vec<_> = (0..threads)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();

    // One driver thread per CPU hammers its own session while a reader
    // thread snapshots the host continuously, checking the torn-read
    // direction on every histogram it ever sees.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let host = &host;
        let stop = &stop;
        let reader = scope.spawn(move || {
            let mut snapshots_taken = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snapshot = host.metrics_snapshot();
                for (name, h) in &snapshot.histograms {
                    assert!(
                        h.buckets_total() >= h.count,
                        "torn read over-counted `{name}`: buckets {} < count {}",
                        h.buckets_total(),
                        h.count
                    );
                }
                snapshots_taken += 1;
            }
            snapshots_taken
        });
        for id in &ids {
            scope.spawn(move || {
                for step in 0..COMMANDS_PER_SESSION {
                    let command = if step % 3 == 0 {
                        SessionCommand::Frame
                    } else {
                        SessionCommand::TapPath(vec![0])
                    };
                    host.apply(*id, command).expect("session is live");
                }
            });
        }
        // Scope joins the drivers when they fall off the end; the
        // reader needs an explicit stop once they are done.
        while host.metrics_snapshot().counter("session.commands")
            < (threads * COMMANDS_PER_SESSION) as u64
        {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let snapshots_taken = reader.join().expect("reader lives");
        assert!(snapshots_taken > 0, "the reader observed live snapshots");
    });

    // Quiesced: the host snapshot must be the exact sum (counters) /
    // max (gauges) / bucket-wise sum (histograms) over its sessions.
    let host_snapshot = host.metrics_snapshot();
    let mut summed = MetricsSnapshot::default();
    for id in &ids {
        summed.merge(&host.session_metrics(*id).expect("live"));
    }
    for (name, &v) in &summed.counters {
        assert_eq!(
            host_snapshot.counter(name),
            v,
            "host counter `{name}` is not the sum over sessions"
        );
    }
    for (name, h) in &summed.histograms {
        assert_eq!(
            host_snapshot.histogram(name).map(|h| h.count),
            Some(h.count),
            "host histogram `{name}` is not the sum over sessions"
        );
    }
    assert_eq!(
        host_snapshot.counter("session.commands"),
        (threads * COMMANDS_PER_SESSION) as u64
    );
    assert_eq!(
        host_snapshot.counter(alive_serve::names::SESSIONS_CREATED),
        threads as u64
    );

    // 5. Worker time accounting. The shutdown snapshot is quiesced
    // (every worker joined), so the attribution identity is exact:
    // busy + parked + steal-scan == wall, and idle == parked +
    // steal-scan. Before the sharded scheduler, time spent blocked on
    // the shared ready-queue mutex was charged to idle — contention
    // masquerading as idleness; now every microsecond lands in exactly
    // one honest bucket (the ManualClock makes the arithmetic
    // deterministic, not merely approximate).
    let final_snapshot = host.shutdown();
    let busy = final_snapshot.counter(alive_serve::names::WORKER_BUSY_US);
    let parked = final_snapshot.counter(alive_serve::names::WORKER_PARKED_US);
    let scan = final_snapshot.counter(alive_serve::names::WORKER_STEAL_SCAN_US);
    let wall = final_snapshot.counter(alive_serve::names::WORKER_WALL_US);
    assert_eq!(
        busy + parked + scan,
        wall,
        "busy ({busy}) + parked ({parked}) + steal_scan ({scan}) must equal wall ({wall})"
    );
    assert_eq!(
        final_snapshot.counter(alive_serve::names::WORKER_IDLE_US),
        parked + scan,
        "idle must be exactly parked + steal-scan, never contention"
    );
    assert!(
        busy > 0,
        "the walk drained real work, so busy time is nonzero"
    );
}

/// 5b. **VM accounting.** `eval.vm.instructions` is monotone across any
/// random walk, ticks strictly upward whenever a VM run is recorded,
/// and at the end of the walk reconciles exactly with the system's own
/// [`alive_core::system::VmStats`] — the counter and the struct are two
/// views of the same execution history. The default engine never falls
/// back on this suite's app, so `eval.vm.fallbacks` stays zero.
#[test]
fn vm_instruction_counter_is_monotone_and_reconciles() {
    use alive_core::metrics::names;

    prop::check(
        "vm_instruction_counter_is_monotone_and_reconciles",
        prop::Config::with_cases(8),
        |rng: &mut Rng| (0..256).map(|_| rng.below(256) as u8).collect::<Vec<u8>>(),
        |steps: &Vec<u8>| {
            let registry = Registry::with_clock(ManualClock::with_auto_step(3).shared());
            let mut session = observed_session(&registry);
            let snapshot = session.metrics_snapshot();
            let mut prev_instructions = snapshot.counter(names::VM_INSTRUCTIONS);
            let mut prev_runs = snapshot.counter(names::VM_RUNS);
            for &step in steps {
                let command = command_for(step, &session);
                session.apply(command);
                let next = session.metrics_snapshot();
                let instructions = next.counter(names::VM_INSTRUCTIONS);
                let runs = next.counter(names::VM_RUNS);
                prop_assert!(
                    instructions >= prev_instructions,
                    "eval.vm.instructions decreased: {prev_instructions} -> {instructions}"
                );
                prop_assert!(
                    runs == prev_runs || instructions > prev_instructions,
                    "a VM run was recorded without executing a single instruction"
                );
                prev_instructions = instructions;
                prev_runs = runs;
            }
            let snapshot = session.metrics_snapshot();
            let stats = session.system().vm_stats();
            prop_assert_eq!(
                snapshot.counter(names::VM_INSTRUCTIONS),
                stats.instructions,
                "counter and VmStats disagree on instructions executed"
            );
            prop_assert_eq!(snapshot.counter(names::VM_RUNS), stats.runs);
            prop_assert_eq!(snapshot.counter(names::VM_CACHE_HITS), stats.cache_hits);
            prop_assert_eq!(snapshot.counter(names::VM_FALLBACKS), 0u64);
            prop_assert_eq!(stats.fallbacks, 0u64);
            prop_assert!(stats.runs > 0, "the walk must actually run the VM");
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Rollout accounting: the auto-rollback counter is evidence
// ---------------------------------------------------------------------

/// 6. **Rollback accounting.** `host.rollbacks_total` counts exactly
///    the known-bad transactions committed against the fleet — no good
///    commit, aborted transaction, or per-session quarantine bleeds into
///    it. This is the invariant that makes the counter usable as an
///    alerting signal: one tick, one bad deploy.
#[test]
fn host_rollbacks_total_equals_injected_bad_commits() {
    use alive_live::TxPhase;
    use alive_syntax::{Span, TextEdit};

    const INJECTED_BAD_COMMITS: usize = 3;
    let host = SessionHost::new(HostConfig {
        // Tight fuel so the injected divergence faults fast.
        system: SystemConfig {
            fuel: 10_000,
            max_transitions: 500,
            ..SystemConfig::default()
        },
        ..HostConfig::with_workers(2)
    });
    let ids: Vec<_> = (0..8)
        .map(|_| host.create_session(APP).expect("compiles"))
        .collect();

    let stage = |tx: u64, needle: &str, replacement: &str| {
        let base = host
            .inspect_session(ids[0], |session| session.source().to_string())
            .expect("live");
        let at = base.find(needle).expect("needle present") as u32;
        host.tx_edit(
            tx,
            &[TextEdit::replace(
                Span::new(at, at + needle.len() as u32),
                replacement,
            )],
        )
        .expect("stages");
    };

    // Each bad commit stages a distinct diverging render (distinct
    // source text, so each is its own version in the store), watches
    // its canary fault, and auto-rolls-back — one counter tick each.
    for i in 0..INJECTED_BAD_COMMITS {
        let tx = host.tx_open(ids[0]).expect("opens");
        stage(
            tx,
            "post \"count is \" ++ count;",
            &format!("while true {{ count; }} post \"bad {i}\";"),
        );
        let phase = host.tx_commit(tx).expect("commit decides");
        assert!(
            matches!(phase, TxPhase::RolledBack { .. }),
            "bad commit {i} must roll back, got {phase:?}"
        );
        assert_eq!(
            host.metrics_snapshot()
                .counter(alive_serve::names::ROLLBACKS_TOTAL),
            i as u64 + 1,
            "one rollback tick per bad commit"
        );
    }

    // Control arms: a good commit promotes, an abort never fans out —
    // neither moves the rollback counter.
    let tx = host.tx_open(ids[0]).expect("opens");
    stage(tx, "count is ", "count now ");
    assert!(matches!(
        host.tx_commit(tx).expect("commit decides"),
        TxPhase::Promoted { updated: 8, .. }
    ));
    let tx = host.tx_open(ids[0]).expect("opens");
    host.tx_abort(tx).expect("aborts");

    let snapshot = host.shutdown();
    assert_eq!(
        snapshot.counter(alive_serve::names::ROLLBACKS_TOTAL),
        INJECTED_BAD_COMMITS as u64,
        "host.rollbacks_total == injected bad commits"
    );
    // Cross-check against per-session evidence: total reverts are the
    // canary slices of the bad commits (1 canary per 8-session fleet),
    // and every revert belongs to some rollback.
    assert_eq!(
        snapshot.counter(alive_serve::names::ROLLOUT_REVERTS),
        INJECTED_BAD_COMMITS as u64
    );
    assert_eq!(
        snapshot.counter(alive_serve::names::TX_PROMOTED),
        1,
        "only the control commit promoted"
    );
}

// ---------------------------------------------------------------------
// Histogram algebra: quantile edges and merge laws
// ---------------------------------------------------------------------

#[test]
fn quantile_edges_empty_single_and_all_overflow() {
    let empty = Histogram::new().snapshot();
    assert_eq!(empty.p50_us(), None);
    assert_eq!(empty.mean_us(), None);

    let single = Histogram::new();
    single.record(42);
    let snap = single.snapshot();
    assert_eq!(snap.p50_us(), snap.p99_us(), "one sample, one answer");
    assert_eq!(snap.mean_us(), Some(42));

    // Every sample above the last finite bound: quantiles saturate at
    // that bound instead of inventing data beyond it.
    let overflow = Histogram::with_bounds(&[10, 20]);
    for _ in 0..100 {
        overflow.record(1_000_000);
    }
    let snap = overflow.snapshot();
    assert_eq!(snap.p50_us(), Some(20));
    assert_eq!(snap.p99_us(), Some(20));
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    prop::check(
        "histogram_merge_is_associative_and_commutative",
        prop::Config::with_cases(64),
        |rng: &mut Rng| {
            let gen_samples = |rng: &mut Rng| {
                let n = rng.below(40);
                (0..n).map(|_| rng.below(200_000) as u64).collect()
            };
            (gen_samples(rng), gen_samples(rng), gen_samples(rng))
        },
        |(xs, ys, zs): &(Vec<u64>, Vec<u64>, Vec<u64>)| {
            let snap = |samples: &[u64]| {
                let h = Histogram::new();
                for &s in samples {
                    h.record(s);
                }
                h.snapshot()
            };
            let (a, b, c) = (snap(xs), snap(ys), snap(zs));
            prop_assert_eq!(
                merged(&merged(&a, &b), &c),
                merged(&a, &merged(&b, &c)),
                "merge is not associative"
            );
            prop_assert_eq!(merged(&a, &b), merged(&b, &a), "merge is not commutative");
            // Merge of same-bounds snapshots preserves totals exactly.
            let ab = merged(&a, &b);
            prop_assert_eq!(ab.count, a.count + b.count);
            prop_assert_eq!(ab.buckets_total(), a.buckets_total() + b.buckets_total());
            Ok(())
        },
    );
}
