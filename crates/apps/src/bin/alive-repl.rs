//! `alive-repl` — an interactive live programming console.
//!
//! Drives a [`alive_live::RecordingSession`] from stdin, so it works
//! interactively and scripted (`alive-repl < script`). The split-screen
//! experience of the paper's Figure 2 is approximated by `:view`
//! (live view) and `:src` (code view), with `:where` / `:find`
//! implementing the bidirectional navigation.
//!
//! Every state-changing interaction goes through the session protocol
//! ([`SessionCommand`] → [`SessionEffect`]): the repl is one observer
//! among many a host could attach, with no privileged side channel.
//!
//! ```text
//! $ cargo run -p alive-apps --bin alive-repl
//! alive> :help
//! ```

use alive_live::{
    box_source_at, boxes_for_cursor, format_frame_stats, format_metrics_snapshot, span_for_box,
    FrameSnapshot, RecordingSession, Registry, SessionCommand, SessionEffect, TxPhase, UndoOutcome,
};
use alive_ui::{layout, render_to_ansi};
use std::io::{self, BufRead, Write};

const HELP: &str = "\
commands:
  :view                 render the live view (ANSI colors)
  :src                  show the current source with line numbers
  :tap <i> [<j> ...]    tap the box at a path, e.g. `:tap 1 0`
  :back                 press the back button
  :editbox <path...> -- <text>   edit a box's text (fires onedit)
  :poke <path...> <leaf> -- <value>  ask for a rendered value to become
                        <value>; answers with ranked candidate repairs
  :repair <n>           apply candidate <n> of the last :poke offer
  :attr <path...> <name> -- <expr>   set a box attribute (margin,
                        background, ...) to an expression, in code
  :edit                 replace the source; end input with a single `.`
  :undo                 undo the most recent applied edit
  :redo                 redo the most recently undone edit
  :fig2 [<path...>]     the Figure 2 split view (optionally select a box)
  :where <path...>      box -> code: show the boxed statement for a box
  :find <line>:<col>    code -> boxes: which boxes does this cursor make?
  :stack                show the page stack and model store
  :stats                frame-pipeline reuse counters (eval/layout/paint)
  :examples             evaluate the program's `example` probes against
                        the live model (expect clauses report ok/fail)
  :metrics              session metrics snapshot (counters + latency quantiles)
  :trace                dump the session trace (replayable)
  :save <file>          snapshot the model (persistent data) to a file
  :restore <file>       restore a model snapshot against the current code
  :demo <name>          load a demo: counter | calculator | mortgage | shopping | life
  :help                 this text
  :quit                 exit";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let initial = match args.get(1).map(String::as_str) {
        Some("mortgage") => alive_apps::mortgage::mortgage_src(6),
        Some("shopping") => alive_apps::SHOPPING_SRC.to_string(),
        Some(path) if std::path::Path::new(path).exists() => {
            std::fs::read_to_string(path).expect("readable file")
        }
        _ => alive_apps::COUNTER_SRC.to_string(),
    };
    // One registry for the whole repl run: `:metrics` reports over it,
    // and `:demo` swaps the program while the counters keep counting.
    let registry = Registry::new();
    let mut session = match RecordingSession::observed(&initial, &registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("its-alive REPL — :help for commands");
    show_view(&mut session);

    let stdin = io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("alive> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim();
        match dispatch(&mut session, &registry, line, &mut lines) {
            Flow::Continue => {}
            Flow::Quit => break,
        }
    }
}

enum Flow {
    Continue,
    Quit,
}

fn dispatch(
    session: &mut RecordingSession,
    registry: &Registry,
    line: &str,
    lines: &mut dyn Iterator<Item = io::Result<String>>,
) -> Flow {
    let (cmd, rest) = match line.split_once(' ') {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "" => {}
        ":quit" | ":q" => return Flow::Quit,
        ":help" | ":h" => println!("{HELP}"),
        ":view" | ":v" => show_view(session),
        ":src" => {
            for effect in session.apply(SessionCommand::Source) {
                if let SessionEffect::Source(src) = effect {
                    for (i, l) in src.lines().enumerate() {
                        println!("{:>4} | {l}", i + 1);
                    }
                }
            }
        }
        ":tap" => match parse_path(rest) {
            Some(path) => emit(session.apply(SessionCommand::TapPath(path)), "tap failed"),
            None => println!("usage: :tap <i> [<j> ...]"),
        },
        ":back" => emit(session.apply(SessionCommand::Back), "back failed"),
        ":editbox" => {
            let Some((path_part, text)) = rest.split_once(" -- ") else {
                println!("usage: :editbox <path...> -- <text>");
                return Flow::Continue;
            };
            match parse_path(path_part) {
                Some(path) => emit(
                    session.apply(SessionCommand::EditBox {
                        path,
                        text: text.to_string(),
                    }),
                    "edit failed",
                ),
                None => println!("bad path"),
            }
        }
        ":edit" => {
            println!("enter the new source; end with a single `.` line:");
            let mut src = String::new();
            for l in &mut *lines {
                let Ok(l) = l else { break };
                if l.trim() == "." {
                    break;
                }
                src.push_str(&l);
                src.push('\n');
            }
            emit(
                session.apply(SessionCommand::EditSource(src)),
                "edit failed",
            );
        }
        ":poke" => {
            let Some((head, value)) = rest.split_once(" -- ") else {
                println!("usage: :poke <path...> <leaf> -- <value>");
                return Flow::Continue;
            };
            match parse_path(head) {
                Some(mut nums) if !nums.is_empty() => {
                    let leaf = nums.pop().unwrap_or(0);
                    emit(
                        session.apply(SessionCommand::ManipulateAt {
                            path: nums,
                            leaf,
                            value: value.to_string(),
                        }),
                        "poke failed",
                    );
                }
                _ => println!("usage: :poke <path...> <leaf> -- <value>"),
            }
        }
        ":repair" => match rest.parse::<usize>() {
            Ok(n) => emit(
                session.apply(SessionCommand::ApplyRepair(n)),
                "repair failed",
            ),
            Err(_) => println!("usage: :repair <n>"),
        },
        ":attr" => {
            let Some((head, value)) = rest.split_once(" -- ") else {
                println!("usage: :attr <path...> <name> -- <expr>");
                return Flow::Continue;
            };
            let mut tokens: Vec<&str> = head.split_whitespace().collect();
            let Some(attr) = tokens.pop() else {
                println!("usage: :attr <path...> <name> -- <expr>");
                return Flow::Continue;
            };
            match parse_path_allow_empty(&tokens.join(" ")) {
                Some(path) => emit(
                    session.apply(SessionCommand::AttrEdit {
                        path,
                        attr: attr.to_string(),
                        value: value.to_string(),
                    }),
                    "attr failed",
                ),
                None => println!("bad path"),
            }
        }
        ":undo" => emit(session.apply(SessionCommand::Undo), "undo failed"),
        ":redo" => emit(session.apply(SessionCommand::Redo), "redo failed"),
        ":fig2" => {
            let selection = match parse_path(rest) {
                Some(path) => alive_live::Selection::Box(path),
                None => alive_live::Selection::None,
            };
            let options = alive_live::SplitViewOptions {
                width: 110,
                live_pane: 36,
                ansi: false,
                zoom: 1,
            };
            print!(
                "{}",
                alive_live::split_view(session.session_view_mut(), &selection, options)
            );
        }
        ":where" => match parse_path(rest) {
            Some(path) => {
                let system = session.session().system();
                match system.display().content() {
                    Some(root) => match span_for_box(system.program(), root, &path) {
                        Some(span) => {
                            let src = session.session().source();
                            println!("--- boxed statement for {path:?} ---");
                            println!("{}", span.slice(src));
                        }
                        None => println!("no boxed statement for {path:?}"),
                    },
                    None => println!("display is stale; :view first"),
                }
            }
            None => println!("usage: :where <path...>"),
        },
        ":find" => {
            let Some((l, c)) = rest.split_once(':') else {
                println!("usage: :find <line>:<col>");
                return Flow::Continue;
            };
            let (Ok(l), Ok(c)) = (l.trim().parse::<u32>(), c.trim().parse::<u32>()) else {
                println!("usage: :find <line>:<col>");
                return Flow::Continue;
            };
            let src = session.session().source().to_string();
            let map = alive_syntax::SourceMap::new(&src);
            let Some(line_span) = map.line_span(l) else {
                println!("no line {l}");
                return Flow::Continue;
            };
            let cursor = line_span.start + c.saturating_sub(1);
            let system = session.session().system();
            match system.display().content() {
                Some(root) => {
                    let id = box_source_at(system.program(), cursor);
                    let boxes = boxes_for_cursor(system.program(), root, cursor);
                    println!("statement {id:?} renders boxes at {boxes:?}");
                }
                None => println!("display is stale; :view first"),
            }
        }
        ":stack" => {
            let system = session.session().system();
            println!("page stack (bottom first):");
            for (name, arg) in system.page_stack() {
                println!("  {name}({arg})");
            }
            println!("store: {}", system.store());
            println!(
                "cost: {} steps, {:.0} simulated web ms, version {}",
                system.cost().steps,
                system.cost().prim.simulated_ms,
                system.version()
            );
        }
        ":stats" => emit(session.apply(SessionCommand::Stats), "stats failed"),
        ":examples" => emit(session.apply(SessionCommand::Examples), "examples failed"),
        ":metrics" => emit(session.apply(SessionCommand::Metrics), "metrics failed"),
        ":trace" => print!("{}", session.trace().serialize()),
        ":save" => {
            for effect in session.apply(SessionCommand::Snapshot) {
                match effect {
                    SessionEffect::Snapshot(snapshot) => match std::fs::write(rest, &snapshot) {
                        Ok(()) => println!("model saved to {rest}"),
                        Err(e) => println!("save failed: {e}"),
                    },
                    SessionEffect::Refused(why) => println!("save failed: {why}"),
                    _ => {}
                }
            }
        }
        ":restore" => match std::fs::read_to_string(rest) {
            Ok(snapshot) => emit(
                session.apply(SessionCommand::Restore(snapshot)),
                "restore failed",
            ),
            Err(e) => println!("cannot read {rest}: {e}"),
        },
        ":demo" => {
            let src = match rest {
                "counter" => alive_apps::COUNTER_SRC.to_string(),
                "calculator" => alive_apps::CALCULATOR_SRC.to_string(),
                "mortgage" => alive_apps::mortgage::mortgage_src(6),
                "shopping" => alive_apps::SHOPPING_SRC.to_string(),
                "life" => alive_apps::life::life_src(10),
                other => {
                    println!(
                        "unknown demo `{other}` (counter | calculator | mortgage | shopping | life)"
                    );
                    return Flow::Continue;
                }
            };
            match RecordingSession::observed(&src, registry) {
                Ok(new_session) => {
                    *session = new_session;
                    show_view(session);
                }
                Err(e) => println!("demo failed: {e}"),
            }
        }
        other => println!("unknown command `{other}` — :help"),
    }
    Flow::Continue
}

fn parse_path(args: &str) -> Option<Vec<usize>> {
    if args.trim().is_empty() {
        return None;
    }
    parse_path_allow_empty(args)
}

fn parse_path_allow_empty(args: &str) -> Option<Vec<usize>> {
    args.split_whitespace().map(|p| p.parse().ok()).collect()
}

/// Print a frame: fault banner (if degraded), then the ANSI-rendered
/// box tree, falling back to the plain view text when the session has
/// never rendered successfully.
fn render_frame(frame: &FrameSnapshot) {
    if let Some(banner) = &frame.banner {
        println!("{banner}");
    }
    match &frame.tree {
        Some(root) => print!("{}", render_to_ansi(&layout(root))),
        None => print!("{}", frame.view),
    }
}

/// Print a batch of effects the standard way. `fail_ctx` labels
/// [`SessionEffect::Refused`] (e.g. "tap failed: no box at path…").
fn emit(effects: Vec<SessionEffect>, fail_ctx: &str) {
    for effect in effects {
        match effect {
            SessionEffect::Frame(frame) => render_frame(&frame),
            SessionEffect::Refused(why) => println!("{fail_ctx}: {why}"),
            SessionEffect::Tap { .. } => {}
            SessionEffect::EditApplied(_) => println!("applied."),
            SessionEffect::EditRejected(_) => {
                println!("rejected — old program keeps running.");
            }
            SessionEffect::EditQuarantined { fault, .. } => {
                println!(
                    "quarantined — the new code faulted ({fault}); reverted to the previous source."
                );
            }
            SessionEffect::Undo { redo, outcome } => {
                let op = if redo { "redo" } else { "undo" };
                match outcome {
                    UndoOutcome::Applied => {
                        println!("{}.", if redo { "redone" } else { "undone" });
                    }
                    UndoOutcome::NothingToUndo => println!("nothing to {op}."),
                    UndoOutcome::Quarantined(fault) => match fault {
                        Some(fault) => println!(
                            "{op} quarantined — the restored code faulted ({fault}); session unchanged."
                        ),
                        None => println!("{op} rejected; session unchanged."),
                    },
                }
            }
            SessionEffect::Stats(stats) => println!("{}", format_frame_stats(&stats)),
            SessionEffect::Metrics(snapshot) => {
                println!("{}", format_metrics_snapshot(&snapshot));
            }
            SessionEffect::Restored(report) => {
                for (name, why) in &report.skipped {
                    println!("skipped `{name}`: {why}");
                }
            }
            SessionEffect::Tx { tx, phase } => match phase {
                TxPhase::Open { edits } => println!("tx#{tx} open ({edits} edits staged)."),
                TxPhase::Canary { canary, fleet } => {
                    println!("tx#{tx} canary: {canary}/{fleet} sessions updated; watching.");
                }
                TxPhase::Promoted { updated, skipped } => {
                    println!("tx#{tx} promoted to {updated} sessions ({skipped} skipped).");
                }
                TxPhase::RolledBack { reverted, reason } => {
                    println!("tx#{tx} rolled back ({reverted} sessions restored): {reason}");
                }
                TxPhase::Aborted => println!("tx#{tx} aborted."),
            },
            SessionEffect::Repairs(repairs) => {
                println!("candidate repairs (apply with :repair <n>):");
                for (i, r) in repairs.iter().enumerate() {
                    println!("  [{i}] {}", r.description);
                }
            }
            SessionEffect::Overloaded { depth } => {
                println!("{fail_ctx}: overloaded (mailbox depth {depth}); retry later.");
            }
            SessionEffect::Examples(probes) => {
                if probes.is_empty() {
                    println!("no examples — add `example name = expr [expect expr]` items.");
                } else {
                    println!("live examples:");
                    for probe in &probes {
                        println!("  {}", probe.render_line());
                    }
                }
            }
            SessionEffect::Source(_) | SessionEffect::Snapshot(_) => {}
        }
    }
}

fn show_view(session: &mut RecordingSession) {
    for effect in session.apply(SessionCommand::Frame) {
        if let SessionEffect::Frame(frame) = effect {
            render_frame(&frame);
        }
    }
}
