//! `alive-watch` — live programming against your own editor.
//!
//! Watches a program file; every time it changes on disk, the running
//! session applies it as a live UPDATE (or reports why it was rejected)
//! and reprints the view. The model survives across saves, so this is
//! the paper's workflow with any text editor standing in for the
//! built-in code view.
//!
//! All session interaction goes through the command/effect protocol
//! ([`SessionCommand`] → [`SessionEffect`]): the watcher is a thin
//! effect printer, exactly like a remote observer attached to a host.
//!
//! `--commands <file>` watches a second file in the protocol's wire
//! format ([`parse_commands`]): append `poke 0 0 -- 99` to select a
//! rendered value and see ranked repairs, `repair 0` to apply one, or
//! `attredit 0 margin -- 2` to manipulate an attribute. Repairs and
//! attribute edits rewrite the *watched program file* — the paper's
//! "changes are enshrined in code", with your editor as the code view.
//!
//! ```text
//! $ cargo run -p alive-apps --bin alive-watch -- path/to/app.alive
//! $ cargo run -p alive-apps --bin alive-watch -- app.alive --once
//! $ cargo run -p alive-apps --bin alive-watch -- app.alive --commands cmds.txt
//! ```
//!
//! `--once` renders once (applying any command file once) and exits
//! (used by tests and CI).

use alive_live::{
    parse_commands, FrameSnapshot, LiveSession, Registry, SessionCommand, SessionEffect,
};
use alive_ui::{layout, AnsiFramebuffer};
use std::io::Write;
use std::path::Path;
use std::time::{Duration, SystemTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut once = false;
    let mut commands_path: Option<String> = None;
    let mut iter = args.iter();
    let usage = || {
        eprintln!("usage: alive-watch <program-file> [--once] [--commands <file>]");
        std::process::exit(2);
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--commands" => match iter.next() {
                Some(file) => commands_path = Some(file.clone()),
                None => usage(),
            },
            other if path.is_none() => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else {
        usage();
        unreachable!()
    };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let registry = Registry::new();
    let mut session = match LiveSession::observed(
        &source,
        alive_core::system::SystemConfig::default(),
        false,
        &registry,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path} does not start:\n{e}");
            std::process::exit(1);
        }
    };
    let mut frame = AnsiFramebuffer::new();
    if once {
        show(&mut session, &path, &mut frame);
        if let Some(cmds) = &commands_path {
            run_command_file(&mut session, &path, cmds, &mut frame);
        }
        return;
    }

    match &commands_path {
        Some(cmds) => println!(
            "watching {path} (commands from {cmds}) — save either file to drive the session (ctrl-c to stop)"
        ),
        None => println!("watching {path} — save the file to live-update (ctrl-c to stop)"),
    }
    show(&mut session, &path, &mut frame);
    let mut last_seen = mtime(&path);
    let mut last_cmds = commands_path.as_deref().and_then(mtime);
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let now = mtime(&path);
        if now != last_seen {
            last_seen = now;
            if let Ok(new_source) = std::fs::read_to_string(&path) {
                if new_source != session.source() {
                    apply_save(&mut session, &path, &mut frame, new_source);
                }
            }
        }
        let Some(cmds) = &commands_path else { continue };
        let now = mtime(cmds);
        if now == last_cmds || now.is_none() {
            continue;
        }
        last_cmds = now;
        run_command_file(&mut session, &path, cmds, &mut frame);
        // Repairs and attribute edits changed the source: write it back
        // to the watched file (the code view), without re-triggering the
        // save path.
        last_seen = mtime(&path);
    }
}

/// Read and apply one command file through the protocol, print the
/// textual effects, repaint, and enshrine any source change back into
/// the watched program file.
fn run_command_file(
    session: &mut LiveSession,
    program_path: &str,
    cmds_path: &str,
    frame: &mut AnsiFramebuffer,
) {
    let Ok(text) = std::fs::read_to_string(cmds_path) else {
        println!("\n— cannot read {cmds_path} —");
        return;
    };
    let commands = match parse_commands(&text) {
        Ok(commands) => commands,
        Err(e) => {
            println!("\n— {cmds_path}: {e} —");
            return;
        }
    };
    if commands.is_empty() {
        return;
    }
    let before = session.source().to_string();
    println!("\n— {cmds_path}: {} command(s) —", commands.len());
    for command in commands {
        for effect in session.apply(command) {
            print_command_effect(&effect);
        }
    }
    if session.source() != before {
        match std::fs::write(program_path, session.source()) {
            Ok(()) => println!("(code updated — written back to {program_path})"),
            Err(e) => println!("cannot write {program_path}: {e}"),
        }
    }
    show(session, program_path, frame);
}

/// Print the textual half of a command's effects; frames are handled by
/// the caller's repaint.
fn print_command_effect(effect: &SessionEffect) {
    match effect {
        SessionEffect::Repairs(repairs) => {
            println!("candidate repairs (write `repair <n>` to the command file):");
            for (i, r) in repairs.iter().enumerate() {
                println!("  [{i}] {}", r.description);
            }
        }
        SessionEffect::Refused(why) => println!("refused: {why}"),
        SessionEffect::EditApplied(_) => println!("applied."),
        SessionEffect::EditRejected(_) => println!("rejected — the old program keeps running."),
        SessionEffect::EditQuarantined { fault, .. } => {
            println!("quarantined — the new code faulted ({fault}) and was reverted.");
        }
        SessionEffect::Tap { hit } => {
            println!("tap {}", if *hit { "hit" } else { "miss" });
        }
        // The batch ends with a full repaint; skip per-command frames.
        SessionEffect::Frame(_) => {}
        other => print!("{}", other.serialize()),
    }
}

/// Apply one on-disk save through the protocol and print its effects.
fn apply_save(
    session: &mut LiveSession,
    path: &str,
    frame: &mut AnsiFramebuffer,
    new_source: String,
) {
    let effects = session.apply(SessionCommand::EditSource(new_source.clone()));
    // The edit outcome decides the presentation: a clean apply patches
    // the live frame in place (the updated view itself is the
    // feedback); anything that scrolled output forces a full repaint.
    // A program with live examples always repaints fully: its probe
    // panel sits below the frame and must re-evaluate on every save.
    let mut full_repaint = !session.system().program().examples().is_empty();
    for effect in effects {
        match effect {
            SessionEffect::EditApplied(report) if !report.dropped_anything() => {}
            SessionEffect::EditApplied(report) => {
                println!("\n— applied (version {}) —", session.system().version());
                for (name, why) in &report.dropped_globals {
                    println!("  dropped global `{name}`: {why}");
                }
                for (name, why) in &report.dropped_pages {
                    println!("  dropped page `{name}`: {why}");
                }
                full_repaint = true;
            }
            SessionEffect::EditRejected(diags) => {
                println!("\n— rejected; the old program keeps running —");
                print!("{}", diags.render(&new_source));
                // The diagnostics scrolled the frame away; the next
                // repaint must be a full one.
                frame.reset();
            }
            SessionEffect::EditQuarantined { fault, .. } => {
                println!("\n— quarantined; the new code faulted and was reverted —");
                println!("  {fault}");
                full_repaint = true;
            }
            SessionEffect::Frame(snapshot) => {
                if full_repaint {
                    frame.reset();
                    header(path);
                    println!("{}", metrics_line(session));
                }
                // A banner only accompanies a full repaint; the in-place
                // patch path keeps the frame as the whole feedback.
                paint(&snapshot, frame, full_repaint);
            }
            _ => {}
        }
    }
    // Continuous feedback: the probes re-evaluate on every save. After
    // a full repaint the panel goes below the fresh frame; the in-place
    // patch path skips it so cursor-addressed patching stays intact.
    if full_repaint {
        examples_panel(session);
    }
}

fn mtime(path: &str) -> Option<SystemTime> {
    Path::new(path).metadata().and_then(|m| m.modified()).ok()
}

fn header(path: &str) {
    println!("── {path} (live) ──");
}

/// One-line metrics footer under the header: edit outcomes, frames
/// rendered, stage p50s, and VM engine activity from the session's
/// metrics registry.
fn metrics_line(session: &LiveSession) -> String {
    use alive_core::metrics::names as vm_names;
    use alive_live::metrics::names;
    let snap = session.metrics_snapshot();
    let p50 = |name: &str| {
        snap.histogram(name)
            .and_then(|h| h.p50_us())
            .map_or_else(|| "-".to_string(), |us| format!("{us} µs"))
    };
    format!(
        "edits {} ok / {} rejected / {} quarantined · frames {} · eval p50 {} · paint p50 {} · vm {} runs / {} cache hits",
        snap.counter(names::EDITS_APPLIED),
        snap.counter(names::EDITS_REJECTED),
        snap.counter(names::EDITS_QUARANTINED),
        snap.counter(names::FRAMES_RENDERED),
        p50(names::FRAME_EVAL_US),
        p50(names::FRAME_PAINT_US),
        snap.counter(vm_names::VM_RUNS),
        snap.counter(vm_names::VM_CACHE_HITS),
    )
}

/// Paint a frame snapshot: banner (if degraded), then the box tree via
/// the framebuffer — a cursor-addressed patch when the cursor still
/// sits below the previous frame, a full paint otherwise.
fn paint(snapshot: &FrameSnapshot, frame: &mut AnsiFramebuffer, with_banner: bool) {
    if with_banner {
        if let Some(banner) = &snapshot.banner {
            println!("{banner}");
        }
    }
    match &snapshot.tree {
        Some(root) => print!("{}", frame.render(&layout(root))),
        None => {
            frame.reset();
            print!("{}", snapshot.view);
        }
    }
    std::io::stdout().flush().ok();
}

/// The Babylonian examples side panel: one line per `example` probe,
/// evaluated against the live model, expect clauses reporting ok/fail.
/// Prints nothing when the program declares no examples, so plain
/// programs keep their plain frame.
fn examples_panel(session: &mut LiveSession) {
    for effect in session.apply(SessionCommand::Examples) {
        if let SessionEffect::Examples(probes) = effect {
            if probes.is_empty() {
                return;
            }
            println!("── examples ──");
            for probe in &probes {
                println!("  {}", probe.render_line());
            }
        }
    }
}

/// Print a header plus a full frame. Used at startup and whenever
/// scrolling output (diagnostics, drop reports) has pushed the previous
/// frame away, making an in-place patch impossible.
fn show(session: &mut LiveSession, path: &str, frame: &mut AnsiFramebuffer) {
    frame.reset();
    header(path);
    let effects = session.apply(SessionCommand::Frame);
    println!("{}", metrics_line(session));
    for effect in effects {
        if let SessionEffect::Frame(snapshot) = effect {
            paint(&snapshot, frame, true);
        }
    }
    examples_panel(session);
}
