//! `alive-watch` — live programming against your own editor.
//!
//! Watches a program file; every time it changes on disk, the running
//! session applies it as a live UPDATE (or reports why it was rejected)
//! and reprints the view. The model survives across saves, so this is
//! the paper's workflow with any text editor standing in for the
//! built-in code view.
//!
//! ```text
//! $ cargo run -p alive-apps --bin alive-watch -- path/to/app.alive
//! $ cargo run -p alive-apps --bin alive-watch -- app.alive --once
//! ```
//!
//! `--once` renders once and exits (used by tests and CI).

use alive_live::{EditOutcome, LiveSession};
use alive_ui::{layout, AnsiFramebuffer};
use std::io::Write;
use std::path::Path;
use std::time::{Duration, SystemTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, once) = match args.as_slice() {
        [path] => (path.clone(), false),
        [path, flag] if flag == "--once" => (path.clone(), true),
        _ => {
            eprintln!("usage: alive-watch <program-file> [--once]");
            std::process::exit(2);
        }
    };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut session = match LiveSession::new(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path} does not start:\n{e}");
            std::process::exit(1);
        }
    };
    let mut frame = AnsiFramebuffer::new();
    if once {
        show(&mut session, &path, &mut frame);
        return;
    }

    println!("watching {path} — save the file to live-update (ctrl-c to stop)");
    show(&mut session, &path, &mut frame);
    let mut last_seen = mtime(&path);
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let now = mtime(&path);
        if now == last_seen {
            continue;
        }
        last_seen = now;
        let Ok(new_source) = std::fs::read_to_string(&path) else {
            continue;
        };
        if new_source == session.source() {
            continue;
        }
        match session.edit_source(&new_source) {
            EditOutcome::Applied(report) if !report.dropped_anything() => {
                // The common case: patch the live frame in place. Only
                // damaged rows are rewritten — the updated view itself
                // is the feedback, with no scrolling status line.
                patch(&mut session, &mut frame);
            }
            EditOutcome::Applied(report) => {
                println!("\n— applied (version {}) —", session.system().version());
                for (name, why) in &report.dropped_globals {
                    println!("  dropped global `{name}`: {why}");
                }
                for (name, why) in &report.dropped_pages {
                    println!("  dropped page `{name}`: {why}");
                }
                show(&mut session, &path, &mut frame);
            }
            EditOutcome::Rejected(diags) => {
                println!("\n— rejected; the old program keeps running —");
                print!("{}", diags.render(&new_source));
                // The diagnostics scrolled the frame away; the next
                // repaint must be a full one.
                frame.reset();
            }
            EditOutcome::Quarantined { fault, .. } => {
                println!("\n— quarantined; the new code faulted and was reverted —");
                println!("  {fault}");
                show(&mut session, &path, &mut frame);
            }
        }
    }
}

fn mtime(path: &str) -> Option<SystemTime> {
    Path::new(path).metadata().and_then(|m| m.modified()).ok()
}

/// Print a header plus a full frame. Used at startup and whenever
/// scrolling output (diagnostics, drop reports) has pushed the previous
/// frame away, making an in-place patch impossible.
fn show(session: &mut LiveSession, path: &str, frame: &mut AnsiFramebuffer) {
    frame.reset();
    println!("── {path} (live) ──");
    // Fault containment: the session always has something to show —
    // the current view, or the last good one under a fault banner.
    if let Some(banner) = session.fault_banner() {
        println!("{banner}");
    }
    match session.display_tree() {
        Some(root) => print!("{}", frame.render(&layout(&root))),
        None => print!("{}", session.live_view()),
    }
    std::io::stdout().flush().ok();
}

/// Repaint in place: only the rows the edit damaged are rewritten, via
/// the framebuffer's cursor-addressed patches. Requires the cursor to
/// still sit just below the previous frame (no output in between).
fn patch(session: &mut LiveSession, frame: &mut AnsiFramebuffer) {
    match session.display_tree() {
        Some(root) => print!("{}", frame.render(&layout(&root))),
        None => {
            frame.reset();
            print!("{}", session.live_view());
        }
    }
    std::io::stdout().flush().ok();
}
