//! `alive-watch` — live programming against your own editor.
//!
//! Watches a program file; every time it changes on disk, the running
//! session applies it as a live UPDATE (or reports why it was rejected)
//! and reprints the view. The model survives across saves, so this is
//! the paper's workflow with any text editor standing in for the
//! built-in code view.
//!
//! All session interaction goes through the command/effect protocol
//! ([`SessionCommand`] → [`SessionEffect`]): the watcher is a thin
//! effect printer, exactly like a remote observer attached to a host.
//!
//! ```text
//! $ cargo run -p alive-apps --bin alive-watch -- path/to/app.alive
//! $ cargo run -p alive-apps --bin alive-watch -- app.alive --once
//! ```
//!
//! `--once` renders once and exits (used by tests and CI).

use alive_live::{FrameSnapshot, LiveSession, Registry, SessionCommand, SessionEffect};
use alive_ui::{layout, AnsiFramebuffer};
use std::io::Write;
use std::path::Path;
use std::time::{Duration, SystemTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, once) = match args.as_slice() {
        [path] => (path.clone(), false),
        [path, flag] if flag == "--once" => (path.clone(), true),
        _ => {
            eprintln!("usage: alive-watch <program-file> [--once]");
            std::process::exit(2);
        }
    };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let registry = Registry::new();
    let mut session = match LiveSession::observed(
        &source,
        alive_core::system::SystemConfig::default(),
        false,
        &registry,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path} does not start:\n{e}");
            std::process::exit(1);
        }
    };
    let mut frame = AnsiFramebuffer::new();
    if once {
        show(&mut session, &path, &mut frame);
        return;
    }

    println!("watching {path} — save the file to live-update (ctrl-c to stop)");
    show(&mut session, &path, &mut frame);
    let mut last_seen = mtime(&path);
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let now = mtime(&path);
        if now == last_seen {
            continue;
        }
        last_seen = now;
        let Ok(new_source) = std::fs::read_to_string(&path) else {
            continue;
        };
        if new_source == session.source() {
            continue;
        }
        apply_save(&mut session, &path, &mut frame, new_source);
    }
}

/// Apply one on-disk save through the protocol and print its effects.
fn apply_save(
    session: &mut LiveSession,
    path: &str,
    frame: &mut AnsiFramebuffer,
    new_source: String,
) {
    let effects = session.apply(SessionCommand::EditSource(new_source.clone()));
    // The edit outcome decides the presentation: a clean apply patches
    // the live frame in place (the updated view itself is the
    // feedback); anything that scrolled output forces a full repaint.
    let mut full_repaint = false;
    for effect in effects {
        match effect {
            SessionEffect::EditApplied(report) if !report.dropped_anything() => {}
            SessionEffect::EditApplied(report) => {
                println!("\n— applied (version {}) —", session.system().version());
                for (name, why) in &report.dropped_globals {
                    println!("  dropped global `{name}`: {why}");
                }
                for (name, why) in &report.dropped_pages {
                    println!("  dropped page `{name}`: {why}");
                }
                full_repaint = true;
            }
            SessionEffect::EditRejected(diags) => {
                println!("\n— rejected; the old program keeps running —");
                print!("{}", diags.render(&new_source));
                // The diagnostics scrolled the frame away; the next
                // repaint must be a full one.
                frame.reset();
            }
            SessionEffect::EditQuarantined { fault, .. } => {
                println!("\n— quarantined; the new code faulted and was reverted —");
                println!("  {fault}");
                full_repaint = true;
            }
            SessionEffect::Frame(snapshot) => {
                if full_repaint {
                    frame.reset();
                    header(path);
                    println!("{}", metrics_line(session));
                }
                // A banner only accompanies a full repaint; the in-place
                // patch path keeps the frame as the whole feedback.
                paint(&snapshot, frame, full_repaint);
            }
            _ => {}
        }
    }
}

fn mtime(path: &str) -> Option<SystemTime> {
    Path::new(path).metadata().and_then(|m| m.modified()).ok()
}

fn header(path: &str) {
    println!("── {path} (live) ──");
}

/// One-line metrics footer under the header: edit outcomes, frames
/// rendered, stage p50s, and VM engine activity from the session's
/// metrics registry.
fn metrics_line(session: &LiveSession) -> String {
    use alive_core::metrics::names as vm_names;
    use alive_live::metrics::names;
    let snap = session.metrics_snapshot();
    let p50 = |name: &str| {
        snap.histogram(name)
            .and_then(|h| h.p50_us())
            .map_or_else(|| "-".to_string(), |us| format!("{us} µs"))
    };
    format!(
        "edits {} ok / {} rejected / {} quarantined · frames {} · eval p50 {} · paint p50 {} · vm {} runs / {} cache hits",
        snap.counter(names::EDITS_APPLIED),
        snap.counter(names::EDITS_REJECTED),
        snap.counter(names::EDITS_QUARANTINED),
        snap.counter(names::FRAMES_RENDERED),
        p50(names::FRAME_EVAL_US),
        p50(names::FRAME_PAINT_US),
        snap.counter(vm_names::VM_RUNS),
        snap.counter(vm_names::VM_CACHE_HITS),
    )
}

/// Paint a frame snapshot: banner (if degraded), then the box tree via
/// the framebuffer — a cursor-addressed patch when the cursor still
/// sits below the previous frame, a full paint otherwise.
fn paint(snapshot: &FrameSnapshot, frame: &mut AnsiFramebuffer, with_banner: bool) {
    if with_banner {
        if let Some(banner) = &snapshot.banner {
            println!("{banner}");
        }
    }
    match &snapshot.tree {
        Some(root) => print!("{}", frame.render(&layout(root))),
        None => {
            frame.reset();
            print!("{}", snapshot.view);
        }
    }
    std::io::stdout().flush().ok();
}

/// Print a header plus a full frame. Used at startup and whenever
/// scrolling output (diagnostics, drop reports) has pushed the previous
/// frame away, making an in-place patch impossible.
fn show(session: &mut LiveSession, path: &str, frame: &mut AnsiFramebuffer) {
    frame.reset();
    header(path);
    let effects = session.apply(SessionCommand::Frame);
    println!("{}", metrics_line(session));
    for effect in effects {
        if let SessionEffect::Frame(snapshot) = effect {
            paint(&snapshot, frame, true);
        }
    }
}
