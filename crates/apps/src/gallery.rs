//! Synthetic scaling workloads for the benchmarks.
//!
//! [`gallery_src`] generates a page rendering `n` tiles from a list
//! global, with one "selected" tile that reacts to taps — the workload
//! for E4 (§5: "recreating the entire box tree on a redraw can become
//! slow if there are many boxes on the screen"). [`wide_program_src`]
//! generates programs of increasing code size for the E5 type-checking
//! throughput experiment.

/// A page that renders `n` tiles; tapping any tile moves the selection.
/// Every tile's render code reads the `selected` global, so this is the
/// *dependency-dense* workload: after a tap, every tile's inputs have
/// changed and the §5 reuse optimization cannot skip any of them.
pub fn gallery_src(n: usize) -> String {
    format!(
        r#"// Synthetic gallery with {n} tiles (dense dependencies).
global tiles : list number = []
global selected : number = 0

fun tile_label(i : number) : string pure {{
    "tile #" ++ i
}}

page start() {{
    init {{ tiles := list.range(0, {n}); }}
    render {{
        boxed {{
            post "gallery of " ++ list.length(tiles)
                ++ " (selected: " ++ selected ++ ")";
        }}
        foreach i in tiles {{
            boxed {{
                post tile_label(i);
                if i == selected {{
                    box.background := colors.light_blue;
                }}
                on tap {{ selected := i; }}
            }}
        }}
    }}
}}
"#
    )
}

/// A feed of `n` items where a tap edits exactly one item's value —
/// the *dependency-sparse* workload: each row's render code reads only
/// its own (local) item, so after a tap the §5 optimization reuses all
/// rows but the changed one. This is the realistic shape of the
/// paper's listings page.
pub fn feed_src(n: usize) -> String {
    format!(
        r#"// Synthetic feed with {n} rows (sparse dependencies).
global items : list number = []
global taps : number = 0

page start() {{
    init {{ items := list.range(0, {n}); }}
    render {{
        boxed {{
            post "feed (" ++ taps ++ " taps)";
        }}
        foreach item in items {{
            boxed {{
                post "row value " ++ item;
                on tap {{
                    taps := taps + 1;
                    items := list.set(items, 0, list.nth(items, 0) + 1);
                }}
            }}
        }}
    }}
}}
"#
    )
}

/// A program with `n` small pure functions and globals plus a start
/// page that calls them — code-size scaling for type-check throughput.
pub fn wide_program_src(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("global g{i} : number = {i}\n"));
        src.push_str(&format!(
            "fun f{i}(x : number) : number pure {{\n    \
             let a = x * 2 + g{i};\n    \
             let b = math.max(a, {i});\n    \
             if b > 10 {{ b - 1 }} else {{ b + 1 }}\n}}\n"
        ));
    }
    src.push_str("page start() {\n    init { }\n    render {\n");
    for i in 0..n.min(50) {
        src.push_str(&format!("        boxed {{ post f{i}({i}); }}\n"));
    }
    src.push_str("    }\n}\n");
    src
}

/// A deep-nesting workload: `depth` nested boxes (layout stress).
pub fn nested_src(depth: usize) -> String {
    let mut render = String::new();
    for _ in 0..depth {
        render.push_str("boxed { box.padding := 1; ");
    }
    render.push_str("post \"core\";");
    for _ in 0..depth {
        render.push('}');
    }
    format!("page start() {{\n    render {{ {render} }}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;
    use alive_core::system::System;

    #[test]
    fn gallery_scales_and_selects() {
        let mut sys = System::new(compile(&gallery_src(25)).expect("compiles"));
        let root = sys.rendered().expect("renders").clone();
        assert_eq!(root.children().count(), 26); // header + 25 tiles
        sys.tap(&[7]).expect("tap tile 6");
        sys.run_to_stable().expect("handles");
        assert_eq!(
            sys.store().get("selected"),
            Some(&alive_core::Value::Number(6.0))
        );
    }

    #[test]
    fn wide_program_compiles_at_sizes() {
        for n in [1, 10, 50] {
            compile(&wide_program_src(n)).expect("compiles");
        }
    }

    #[test]
    fn nested_boxes_compile_and_render() {
        let mut sys = System::new(compile(&nested_src(10)).expect("compiles"));
        let root = sys.rendered().expect("renders");
        assert_eq!(root.depth(), 11);
    }
}
