//! # alive-apps
//!
//! Demo applications for *its-alive*, written in the surface language:
//!
//! * [`mortgage`] — the PLDI 2013 paper's running example (Figures 1,
//!   3, 4, 5), with the §2/§3.1 improvements I1–I3 as replayable edits;
//! * [`counter`] — a minimal tap counter;
//! * [`calculator`] — a keypad calculator (grid layout, state machine);
//! * [`shopping`] — a two-page shopping list;
//! * [`life`] — Conway's Game of Life (pure-computation stress demo);
//! * [`gallery`] — synthetic scaling workloads for the benchmarks.
//!
//! # Example
//!
//! ```
//! use alive_apps::mortgage;
//! use alive_live::LiveSession;
//!
//! let mut session = LiveSession::new(&mortgage::mortgage_src(3))
//!     .expect("the mortgage calculator compiles");
//! let view = session.live_view();
//! assert!(view.contains("Listings"));
//! ```

#![warn(missing_docs)]

pub mod calculator;
pub mod counter;
pub mod gallery;
pub mod life;
pub mod mortgage;
pub mod shopping;

pub use calculator::CALCULATOR_SRC;
pub use counter::COUNTER_SRC;
pub use shopping::SHOPPING_SRC;
