//! A minimal counter app — the "hello world" of live UI programming.

/// Counter app source: one page, one global, one tap handler.
pub const COUNTER_SRC: &str = r#"// A counter: tap the button to increment.
global count : number = 0

page start() {
    init { }
    render {
        boxed {
            post "count: " ++ count;
            box.border := 1;
            box.padding := 1;
        }
        boxed {
            post "[ +1 ]";
            box.border := 1;
            on tap { count := count + 1; }
        }
        boxed {
            post "[ reset ]";
            box.border := 1;
            on tap { count := 0; }
        }
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;
    use alive_core::system::System;
    use alive_core::Value;

    #[test]
    fn counter_counts() {
        let mut sys = System::new(compile(COUNTER_SRC).expect("compiles"));
        sys.run_to_stable().expect("starts");
        sys.tap(&[1]).expect("tap +1");
        sys.run_to_stable().expect("handles");
        sys.tap(&[1]).expect("tap +1");
        sys.run_to_stable().expect("handles");
        assert_eq!(sys.store().get("count"), Some(&Value::Number(2.0)));
        sys.tap(&[2]).expect("tap reset");
        sys.run_to_stable().expect("handles");
        assert_eq!(sys.store().get("count"), Some(&Value::Number(0.0)));
    }
}
