//! The paper's running example: the mortgage calculator of Figures 1,
//! 3, 4, and 5.
//!
//! A start page downloads local real-estate listings (simulated web
//! request) and displays them; tapping an entry pushes a detail page
//! showing the monthly mortgage payment and a yearly amortization
//! schedule. The term and annual percentage rate are editable.
//!
//! The module also packages the three improvements of §2/§3.1 as
//! source-to-source edits, so examples, tests, and benches can replay
//! the paper's live programming session:
//!
//! * **I1** — adjust margins for visual appearance (direct manipulation);
//! * **I2** — print the balance in properly formatted dollars and cents;
//! * **I3** — highlight every fifth amortization row in light blue.

/// Number of listings the default program downloads.
pub const DEFAULT_LISTING_COUNT: usize = 12;

/// Build the mortgage calculator source with a given listing count.
pub fn mortgage_src(listing_count: usize) -> String {
    format!(
        r#"// Mortgage calculator — the running example of
// "It's Alive! Continuous Feedback in UI Programming" (PLDI 2013).

global listings : list (string, number) = []
global term : number = 30
global apr : number = 5

fun monthly_rate() : number pure {{
    apr / 1200
}}

fun monthly_payment(principal : number) : number pure {{
    let r = monthly_rate();
    let n = term * 12;
    if r == 0 {{ principal / n }} else {{
        principal * r / (1 - math.pow(1 + r, -n))
    }}
}}

fun display_listentry(entry : (string, number)) : () render {{
    boxed {{
        post entry.1;
    }}
    boxed {{
        post "$" ++ fmt.fixed(entry.2, 0);
    }}
}}

fun display_amortization(principal : number) : () render {{
    let payment = monthly_payment(principal);
    let r = monthly_rate();
    let balance = principal;
    let i = 0;
    while i < term {{
        let m = 0;
        while m < 12 {{
            balance := balance * (1 + r) - payment;
            m := m + 1;
        }}
        if balance < 0 {{ balance := 0; }}
        boxed {{
            box.horizontal := true;
            boxed {{ post "year " ++ (i + 1); box.margin := 1; }}
            boxed {{ post "balance: $" ++ balance; box.margin := 1; }}
        }}
        i := i + 1;
    }}
}}

page start() {{
    init {{
        listings := web.listings({listing_count});
    }}
    render {{
        boxed {{
            box.horizontal := true;
            boxed {{ post "Local"; box.margin := 1; }}
            boxed {{
                post "Listings";
                box.margin := 1;
                box.background := colors.light_blue;
            }}
        }}
        boxed {{
            foreach entry in listings {{
                boxed {{
                    box.margin := 1;
                    display_listentry(entry);
                    on tap {{ push detail(entry.1, entry.2); }}
                }}
            }}
        }}
    }}
}}

page detail(addr : string, price : number) {{
    init {{ }}
    render {{
        boxed {{
            post addr;
            box.background := colors.light_blue;
            box.padding := 1;
        }}
        boxed {{
            post "price: $" ++ fmt.fixed(price, 0);
        }}
        boxed {{
            box.horizontal := true;
            boxed {{
                post "term: " ++ term ++ " years";
                box.border := 1;
                on edited(text : string) {{
                    let n = str.to_number(text);
                    if n > 0 {{ term := n; }}
                }}
            }}
            boxed {{
                post "APR: " ++ apr ++ "%";
                box.border := 1;
                on edited(text : string) {{
                    let n = str.to_number(text);
                    if n > 0 {{ apr := n; }}
                }}
            }}
        }}
        boxed {{
            post "monthly payment: $" ++ fmt.fixed(monthly_payment(price), 2);
        }}
        boxed {{
            display_amortization(price);
            on tap {{ pop; }}
        }}
    }}
}}
"#
    )
}

/// The default mortgage calculator source.
pub fn default_src() -> String {
    mortgage_src(DEFAULT_LISTING_COUNT)
}

/// Improvement **I1** (§2): adjust a margin for visual appearance.
/// This is the textual result of the direct-manipulation flow (select
/// the listing entry box in the live view, twiddle `margin`).
pub fn apply_improvement_i1(src: &str) -> String {
    src.replacen(
        "box.margin := 1;\n                    display_listentry(entry);",
        "box.margin := 2;\n                    display_listentry(entry);",
        1,
    )
}

/// Improvement **I2** (§3.1): print the monthly balance in properly
/// formatted dollars and cents — the paper's exact balance-cell edit.
pub fn apply_improvement_i2(src: &str) -> String {
    src.replacen(
        r#"boxed { post "balance: $" ++ balance; box.margin := 1; }"#,
        r#"boxed {
                let dollars = math.floor(balance);
                let cents = math.round((balance - dollars) * 100);
                if cents == 100 { dollars := dollars + 1; cents := 0; }
                let cents_text = cents ++ "";
                if str.len(cents_text) < 2 { cents_text := "0" ++ cents_text; }
                post "balance: $" ++ dollars ++ "." ++ cents_text;
                box.margin := 1;
            }"#,
        1,
    )
}

/// Improvement **I3** (§3.1): highlight every fifth amortization row
/// with a light blue background.
pub fn apply_improvement_i3(src: &str) -> String {
    src.replacen(
        "boxed {\n            box.horizontal := true;",
        "boxed {\n            box.horizontal := true;\n            \
         if math.mod(i, 5) == 4 { box.background := colors.light_blue; }",
        1,
    )
}

/// The reference mortgage-payment formula, for oracle checks in tests:
/// principal `p`, annual rate percentage `apr`, term in years.
pub fn expected_monthly_payment(p: f64, apr: f64, term_years: f64) -> f64 {
    let r = apr / 1200.0;
    let n = term_years * 12.0;
    if r == 0.0 {
        p / n
    } else {
        p * r / (1.0 - (1.0 + r).powf(-n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;

    #[test]
    fn base_program_compiles() {
        compile(&default_src()).expect("mortgage calculator compiles");
    }

    #[test]
    fn improvements_compile_individually_and_stacked() {
        let base = default_src();
        for (name, improved) in [
            ("I1", apply_improvement_i1(&base)),
            ("I2", apply_improvement_i2(&base)),
            ("I3", apply_improvement_i3(&base)),
        ] {
            assert_ne!(improved, base, "{name} must change the source");
            compile(&improved).unwrap_or_else(|ds| panic!("{name} breaks: {ds}"));
        }
        let all = apply_improvement_i3(&apply_improvement_i2(&apply_improvement_i1(&base)));
        compile(&all).expect("stacked improvements compile");
    }

    #[test]
    fn payment_formula_matches_oracle() {
        // 200k at 5% over 30 years ≈ $1073.64/month.
        let p = expected_monthly_payment(200_000.0, 5.0, 30.0);
        assert!((p - 1073.64).abs() < 0.01, "got {p}");
    }
}
