//! Conway's Game of Life — a computational stress demo: the whole
//! evolution rule is written in the surface language, the grid lives in
//! one list global, and the render body rebuilds the entire board every
//! generation (the paper's immediate-mode bet, under load).

/// Build a Life app with an `n`×`n` toroidal grid seeded with a glider.
pub fn life_src(n: usize) -> String {
    format!(
        r##"// Conway's Game of Life on a {n}x{n} torus.
global grid : list number = []
global generation : number = 0

fun idx(x : number, y : number) : number pure {{
    math.mod(y, {n}) * {n} + math.mod(x, {n})
}}

fun cell(g : list number, x : number, y : number) : number pure {{
    list.nth(g, idx(x, y))
}}

fun neighbors(g : list number, x : number, y : number) : number pure {{
    cell(g, x - 1, y - 1) + cell(g, x, y - 1) + cell(g, x + 1, y - 1)
        + cell(g, x - 1, y) + cell(g, x + 1, y)
        + cell(g, x - 1, y + 1) + cell(g, x, y + 1) + cell(g, x + 1, y + 1)
}}

fun evolve(g : list number) : list number pure {{
    let out = g;
    for y in 0 .. {n} {{
        for x in 0 .. {n} {{
            let alive = cell(g, x, y) == 1;
            let around = neighbors(g, x, y);
            let next = if alive && (around == 2 || around == 3) {{ 1 }}
                       else if !alive && around == 3 {{ 1 }}
                       else {{ 0 }};
            out := list.set(out, idx(x, y), next);
        }}
    }}
    out
}}

fun seed_glider(g : list number) : list number pure {{
    let out = g;
    out := list.set(out, idx(1, 0), 1);
    out := list.set(out, idx(2, 1), 1);
    out := list.set(out, idx(0, 2), 1);
    out := list.set(out, idx(1, 2), 1);
    out := list.set(out, idx(2, 2), 1);
    out
}}

fun row_text(y : number) : string pure {{
    let line = "";
    for x in 0 .. {n} {{
        if cell(grid, x, y) == 1 {{ line := line ++ "#"; }}
        else {{ line := line ++ "."; }}
    }}
    line
}}

page start() {{
    init {{
        let zeroed : list number = [];
        for i in 0 .. {n} * {n} {{
            zeroed := list.append(zeroed, 0);
        }}
        grid := seed_glider(zeroed);
    }}
    render {{
        boxed {{ post "generation " ++ generation; }}
        boxed {{
            for y in 0 .. {n} {{
                boxed {{ post row_text(y); }}
            }}
            on tap {{
                grid := evolve(grid);
                generation := generation + 1;
            }}
        }}
    }}
}}
"##
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;
    use alive_core::system::System;
    use alive_core::Value;

    fn board(sys: &mut System) -> Vec<String> {
        let root = sys.rendered().expect("renders").clone();
        let grid_box = root.descendant(&[1]).expect("grid");
        grid_box
            .children()
            .map(|row| {
                row.leaves()
                    .next()
                    .map(Value::display_text)
                    .unwrap_or_default()
            })
            .collect()
    }

    #[test]
    fn glider_translates_diagonally() {
        let mut sys = System::new(compile(&life_src(8)).expect("compiles"));
        let start = board(&mut sys);
        assert_eq!(start.len(), 8);
        let live0: usize = start.iter().map(|r| r.matches('#').count()).sum();
        assert_eq!(live0, 5, "glider seeded: {start:?}");

        // A glider repeats its shape every 4 generations, shifted (1,1).
        for _ in 0..4 {
            sys.tap(&[1]).expect("step");
            sys.run_to_stable().expect("evolves");
        }
        let shifted = board(&mut sys);
        let live4: usize = shifted.iter().map(|r| r.matches('#').count()).sum();
        assert_eq!(live4, 5, "glider intact after 4 steps: {shifted:?}");

        // Compare with the start board shifted by (1,1) on the torus.
        let n = 8usize;
        let cell =
            |b: &[String], x: usize, y: usize| b[y % n].chars().nth(x % n).expect("in range");
        for y in 0..n {
            for x in 0..n {
                assert_eq!(
                    cell(&start, x, y),
                    cell(&shifted, x + 1, y + 1),
                    "cell ({x},{y}) shifted"
                );
            }
        }
        assert_eq!(sys.store().get("generation"), Some(&Value::Number(4.0)));
    }

    #[test]
    fn blinker_oscillates() {
        // Replace the glider with a blinker via a code edit (live!).
        let src = life_src(6).replace(
            "fun seed_glider(g : list number) : list number pure {
    let out = g;
    out := list.set(out, idx(1, 0), 1);
    out := list.set(out, idx(2, 1), 1);
    out := list.set(out, idx(0, 2), 1);
    out := list.set(out, idx(1, 2), 1);
    out := list.set(out, idx(2, 2), 1);
    out
}",
            "fun seed_glider(g : list number) : list number pure {
    let out = g;
    out := list.set(out, idx(1, 2), 1);
    out := list.set(out, idx(2, 2), 1);
    out := list.set(out, idx(3, 2), 1);
    out
}",
        );
        let mut sys = System::new(compile(&src).expect("compiles"));
        let gen0 = board(&mut sys);
        sys.tap(&[1]).expect("step");
        sys.run_to_stable().expect("evolves");
        let gen1 = board(&mut sys);
        assert_ne!(gen0, gen1, "blinker flips");
        sys.tap(&[1]).expect("step");
        sys.run_to_stable().expect("evolves");
        let gen2 = board(&mut sys);
        assert_eq!(gen0, gen2, "period 2");
    }
}
