//! A two-page shopping-list app: list page plus an item detail page.
//!
//! Exercises page arguments, list-valued model state, and handlers that
//! rebuild lists — a second realistic workload beyond the paper's
//! mortgage example.

/// Shopping list app source.
pub const SHOPPING_SRC: &str = r#"// A shopping list with per-item detail pages.
global items : list (string, number) = [("milk", 2), ("bread", 1), ("eggs", 12)]
global bought : number = 0

fun total_quantity() : number pure {
    let total = 0;
    foreach item in items {
        total := total + item.2;
    }
    total
}

page start() {
    init { }
    render {
        boxed {
            post "Shopping (" ++ list.length(items) ++ " items, "
                ++ total_quantity() ++ " units)";
            box.background := colors.light_gray;
            box.padding := 1;
        }
        foreach item in items {
            boxed {
                box.horizontal := true;
                boxed { post item.1; box.margin := 1; }
                boxed { post "x" ++ item.2; box.margin := 1; }
                on tap { push detail(item.1, item.2); }
            }
        }
        boxed {
            post "[ add apples ]";
            box.border := 1;
            on tap { items := list.append(items, ("apples", 6)); }
        }
        boxed {
            post "bought so far: " ++ bought;
        }
    }
}

page detail(name : string, quantity : number) {
    init { }
    render {
        boxed {
            post name;
            box.font_size := 2;
        }
        boxed { post "quantity: " ++ quantity; }
        boxed {
            post "[ buy ]";
            box.border := 1;
            on tap {
                bought := bought + quantity;
                pop;
            }
        }
        boxed {
            post "[ back ]";
            box.border := 1;
            on tap { pop; }
        }
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use alive_core::compile;
    use alive_core::system::System;
    use alive_core::Value;

    #[test]
    fn navigates_and_buys() {
        let mut sys = System::new(compile(SHOPPING_SRC).expect("compiles"));
        sys.run_to_stable().expect("starts");
        // Boxes: [0] header, [1..=3] items, [4] add button, [5] bought.
        sys.tap(&[3]).expect("open eggs");
        sys.run_to_stable().expect("navigates");
        assert_eq!(sys.current_page().map(|(n, _)| n), Some("detail"));
        sys.tap(&[2]).expect("buy");
        sys.run_to_stable().expect("buys and pops");
        assert_eq!(sys.current_page().map(|(n, _)| n), Some("start"));
        assert_eq!(sys.store().get("bought"), Some(&Value::Number(12.0)));
    }

    #[test]
    fn add_button_grows_the_model() {
        let mut sys = System::new(compile(SHOPPING_SRC).expect("compiles"));
        sys.run_to_stable().expect("starts");
        sys.tap(&[4]).expect("add apples");
        sys.run_to_stable().expect("handles");
        let Some(Value::List(items)) = sys.store().get("items") else {
            panic!("items is a list");
        };
        assert_eq!(items.len(), 4);
        // Display now has one more item row.
        let root = sys.display().content().expect("valid");
        assert_eq!(root.children().count(), 7);
    }
}
