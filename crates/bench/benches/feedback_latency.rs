//! E3 — feedback latency: how long from code edit to refreshed display?
//!
//! Compares the live UPDATE transition against the conventional
//! edit-compile-run cycle (full restart + init re-execution + navigation
//! replay) on the mortgage calculator, across listing counts. The paper's
//! claim: live editing removes the re-execution from the loop, so its
//! latency is independent of startup cost.

use alive_bench::{label_variants, mortgage_live_on_detail, mortgage_restart_on_detail};
use alive_testkit::Bench;

fn main() {
    let mut bench = Bench::from_args("feedback_latency");
    for n in [10usize, 100, 400] {
        let mut session = mortgage_live_on_detail(n);
        let mut flip = false;
        bench.bench(&format!("live_edit/{n}"), || {
            let (a, orig) = label_variants(session.source());
            let target = if flip { a } else { orig };
            flip = !flip;
            assert!(session.edit_source(&target).is_applied());
        });
        let mut session = mortgage_restart_on_detail(n);
        let mut flip = false;
        bench.bench(&format!("restart_edit/{n}"), || {
            let (a, orig) = label_variants(session.source());
            let target = if flip { a } else { orig };
            flip = !flip;
            session.edit_source(&target).expect("edit applies");
        });
    }
    bench.finish();
}
