//! E3 — feedback latency: how long from code edit to refreshed display?
//!
//! Compares the live UPDATE transition against the conventional
//! edit-compile-run cycle (full restart + init re-execution + navigation
//! replay) on the mortgage calculator, across listing counts. The paper's
//! claim: live editing removes the re-execution from the loop, so its
//! latency is independent of startup cost.

use alive_bench::{label_variants, mortgage_live_on_detail, mortgage_restart_on_detail};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_feedback_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_latency");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for n in [10usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("live_edit", n), &n, |b, &n| {
            let mut session = mortgage_live_on_detail(n);
            let mut flip = false;
            b.iter(|| {
                let (a, orig) = label_variants(session.source());
                let target = if flip { a } else { orig };
                flip = !flip;
                assert!(session.edit_source(&target).expect("edit").is_applied());
            });
        });
        group.bench_with_input(BenchmarkId::new("restart_edit", n), &n, |b, &n| {
            let mut session = mortgage_restart_on_detail(n);
            let mut flip = false;
            b.iter(|| {
                let (a, orig) = label_variants(session.source());
                let target = if flip { a } else { orig };
                flip = !flip;
                session.edit_source(&target).expect("edit");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feedback_latency);
criterion_main!(benches);
