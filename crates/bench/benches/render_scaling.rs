//! E4 — render cost vs box count (paper §5: "recreating the entire box
//! tree on a redraw can become slow if there are many boxes"), with the
//! §5 reuse optimization on and off, on a dependency-sparse and a
//! dependency-dense workload.

use alive_bench::{feed_session, feed_touch, gallery_select_next, gallery_session};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_render_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("render_scaling");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for n in [10usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("feed_naive", n), &n, |b, &n| {
            let mut session = feed_session(n, false);
            let mut i = 0usize;
            b.iter(|| {
                feed_touch(&mut session, i);
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("feed_memo", n), &n, |b, &n| {
            let mut session = feed_session(n, true);
            let mut i = 0usize;
            b.iter(|| {
                feed_touch(&mut session, i);
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("gallery_naive", n), &n, |b, &n| {
            let mut session = gallery_session(n, false);
            let mut i = 0usize;
            b.iter(|| {
                gallery_select_next(&mut session, i);
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("gallery_memo", n), &n, |b, &n| {
            // Dense deps: this measures the cache's pure overhead.
            let mut session = gallery_session(n, true);
            let mut i = 0usize;
            b.iter(|| {
                gallery_select_next(&mut session, i);
                i += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_render_scaling);
criterion_main!(benches);
