//! E4 — render cost vs box count (paper §5: "recreating the entire box
//! tree on a redraw can become slow if there are many boxes"), with the
//! §5 reuse optimization on and off, on a dependency-sparse and a
//! dependency-dense workload.

use alive_bench::{feed_session, feed_touch, gallery_select_next, gallery_session};
use alive_testkit::Bench;

fn main() {
    let mut bench = Bench::from_args("render_scaling");
    for n in [10usize, 100, 400] {
        let mut session = feed_session(n, false);
        let mut i = 0usize;
        bench.bench(&format!("feed_naive/{n}"), || {
            feed_touch(&mut session, i);
            i += 1;
        });
        let mut session = feed_session(n, true);
        let mut i = 0usize;
        bench.bench(&format!("feed_memo/{n}"), || {
            feed_touch(&mut session, i);
            i += 1;
        });
        let mut session = gallery_session(n, false);
        let mut i = 0usize;
        bench.bench(&format!("gallery_naive/{n}"), || {
            gallery_select_next(&mut session, i);
            i += 1;
        });
        // Dense deps: this measures the cache's pure overhead.
        let mut session = gallery_session(n, true);
        let mut i = 0usize;
        bench.bench(&format!("gallery_memo/{n}"), || {
            gallery_select_next(&mut session, i);
            i += 1;
        });
    }
    bench.finish();
}
