//! E6 — the UPDATE transition's fix-up cost (Fig. 12) vs store size and
//! page-stack depth, plus the end-to-end update (fix-up + re-render).

use alive_core::fixup::{fixup_pages, fixup_store, FixupReport};
use alive_core::store::Store;
use alive_core::types::Name;
use alive_core::{compile, Program, Value};
use alive_live::LiveSession;
use alive_testkit::Bench;
use std::hint::black_box;
use std::sync::Arc;

/// New code declaring only the even half of `n` globals.
fn half_program(n: usize) -> Program {
    let mut src = String::new();
    for i in (0..n).step_by(2) {
        src.push_str(&format!("global g{i} : number = {i}\n"));
    }
    src.push_str("page start() { render { } }\n");
    compile(&src).expect("compiles")
}

fn full_store(n: usize) -> Store {
    let mut store = Store::new();
    for i in 0..n {
        store.set(format!("g{i}"), Value::Number(i as f64));
    }
    store
}

fn main() {
    let mut bench = Bench::from_args("update_fixup");
    for n in [10usize, 100, 1000] {
        let program = half_program(n);
        let store = full_store(n);
        bench.bench(&format!("fixup_store/{n}"), || {
            black_box(fixup_store(&program, &store))
        });
    }
    // Page-stack fix-up depth sweep.
    let two_pages = compile(
        "page start() { render { } }
         page detail(n : number) { render { } }",
    )
    .expect("compiles");
    for depth in [4usize, 64, 512] {
        let stack: Vec<(Name, Value)> = (0..depth)
            .map(|i| {
                (
                    Arc::from("detail") as Name,
                    Value::tuple(vec![Value::Number(i as f64)]),
                )
            })
            .collect();
        bench.bench(&format!("fixup_pages/{depth}"), || {
            let mut report = FixupReport::default();
            black_box(fixup_pages(&two_pages, &stack, &mut report))
        });
    }
    // End-to-end: a whole UPDATE on a live session (fix-up dominated by
    // re-render).
    let mut session = LiveSession::new(&alive_apps::mortgage::mortgage_src(50)).expect("compiles");
    let mut flip = false;
    bench.bench("end_to_end_update", || {
        let (a, orig) = alive_bench::label_variants(session.source());
        let target = if flip { a } else { orig };
        flip = !flip;
        assert!(session.edit_source(&target).is_applied());
    });
    bench.finish();
}
