//! E-frame — the frame pipeline: full from-scratch layout + paint vs
//! the incremental path (pointer-keyed layout cache, damage-driven
//! repaint, generation-keyed view memo) on steady-state gallery and
//! feed workloads.
//!
//! Besides the wall-clock numbers, this bench counts the work each path
//! does per frame — layout nodes measured and screen cells repainted —
//! and cross-checks at every step that the incremental output is
//! byte-identical to from-scratch rendering. The counters and their
//! ratios are written to `BENCH_frame_pipeline.json` (the acceptance
//! bars: ≥ 3× fewer nodes measured, ≥ 5× fewer cells repainted).

use alive_bench::{feed_session, feed_touch, gallery_session};
use alive_live::LiveSession;
use alive_testkit::Bench;
use alive_ui::{layout, layout_incremental, render_to_text, LayoutCache};
use std::hint::black_box;

const N: usize = 64;
const STEPS: usize = 24;

#[derive(Debug, Default)]
struct Counters {
    frames: u64,
    nodes_full: u64,
    nodes_incremental: u64,
    nodes_reused: u64,
    cells_full: u64,
    cells_incremental: u64,
}

impl Counters {
    fn nodes_ratio(&self) -> f64 {
        self.nodes_full as f64 / (self.nodes_incremental.max(1)) as f64
    }

    fn cells_ratio(&self) -> f64 {
        self.cells_full as f64 / (self.cells_incremental.max(1)) as f64
    }

    fn to_json(&self, name: &str) -> String {
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"frames\":{},",
                "\"full\":{{\"nodes_measured\":{},\"cells_repainted\":{}}},",
                "\"incremental\":{{\"nodes_measured\":{},\"nodes_reused\":{},\"cells_repainted\":{}}},",
                "\"nodes_measured_ratio\":{:.2},\"cells_repainted_ratio\":{:.2}}}"
            ),
            name,
            self.frames,
            self.nodes_full,
            self.cells_full,
            self.nodes_incremental,
            self.nodes_reused,
            self.cells_incremental,
            self.nodes_ratio(),
            self.cells_ratio(),
        )
    }
}

/// Drive `steps` steady-state interactions, accumulating per-frame work
/// counters for both paths and asserting byte identity at every step.
fn count_steady_state(
    label: &str,
    session: &mut LiveSession,
    mut step_fn: impl FnMut(&mut LiveSession, usize),
) -> Counters {
    // Warm the pipeline: the first frame is always a full one.
    session.live_view();
    let mut counters = Counters::default();
    for step in 0..STEPS {
        step_fn(session, step);
        let view = session.live_view();
        let stats = session.frame_stats();
        // What the full path would have done for this frame — and the
        // byte-identity oracle for what the incremental path did.
        let root = session.display_tree().expect("session has a view");
        let mut fresh = LayoutCache::new();
        let (tree, full_stats) = layout_incremental(&mut fresh, &root);
        assert_eq!(
            view,
            render_to_text(&tree),
            "{label}: incremental output diverged at step {step}"
        );
        let size = tree.size();
        counters.frames += 1;
        counters.nodes_full += full_stats.nodes_measured;
        counters.nodes_incremental += stats.nodes_measured;
        counters.nodes_reused += stats.nodes_reused;
        counters.cells_full += size.w.max(0) as u64 * size.h.max(0) as u64;
        counters.cells_incremental += stats.cells_repainted;
    }
    counters
}

/// Steady-state gallery step: tap the already-selected tile. The
/// display is invalidated and re-rendered, but no subtree changes —
/// the paper's "reuse box tree elements that have not changed" case.
fn gallery_retap(session: &mut LiveSession, _step: usize) {
    session.tap_path(&[1]).expect("tap tile");
}

fn main() {
    let mut bench = Bench::from_args("frame_pipeline");

    // Work counters + byte-identity oracle over the steady states.
    let gallery = count_steady_state("gallery", &mut gallery_session(N, true), gallery_retap);
    let feed = count_steady_state("feed", &mut feed_session(N, true), feed_touch);

    // Wall-clock: one steady-state interaction plus a frame read, full
    // pipeline (no reuse anywhere) vs incremental (memo + layout cache
    // + damage repaint).
    let mut full_gallery = gallery_session(N, false);
    let mut step = 0usize;
    bench.bench(&format!("full/gallery/{N}"), || {
        gallery_retap(&mut full_gallery, step);
        step += 1;
        let root = full_gallery.display_tree().expect("view");
        black_box(render_to_text(&layout(&root)))
    });
    let mut inc_gallery = gallery_session(N, true);
    let mut step = 0usize;
    bench.bench(&format!("incremental/gallery/{N}"), || {
        gallery_retap(&mut inc_gallery, step);
        step += 1;
        black_box(inc_gallery.live_view())
    });

    let mut full_feed = feed_session(N, false);
    let mut step = 0usize;
    bench.bench(&format!("full/feed/{N}"), || {
        feed_touch(&mut full_feed, step);
        step += 1;
        let root = full_feed.display_tree().expect("view");
        black_box(render_to_text(&layout(&root)))
    });
    let mut inc_feed = feed_session(N, true);
    let mut step = 0usize;
    bench.bench(&format!("incremental/feed/{N}"), || {
        feed_touch(&mut inc_feed, step);
        step += 1;
        black_box(inc_feed.live_view())
    });

    // Emit the machine-readable report before `finish` consumes the
    // harness: reuse counters + the timing section.
    let report = format!(
        "{{\"workloads\":[{},{}],\"timing\":{}}}\n",
        gallery.to_json(&format!("gallery/{N}")),
        feed.to_json(&format!("feed/{N}")),
        bench.to_json(),
    );
    // Anchor at the workspace root regardless of the invocation CWD.
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_frame_pipeline.json");
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!(
        "gallery: {:.1}x fewer nodes measured, {:.1}x fewer cells repainted",
        gallery.nodes_ratio(),
        gallery.cells_ratio()
    );
    eprintln!(
        "feed:    {:.1}x fewer nodes measured, {:.1}x fewer cells repainted",
        feed.nodes_ratio(),
        feed.cells_ratio()
    );
    bench.finish();
}
