//! E-eval — the bytecode VM vs the bigstep tree walker on eval-heavy
//! workloads: a 10 000-item collection loop, deep call graphs
//! (recursive fib), deep local-lookup chains (the `lookup_local` killer
//! the VM resolves to frame slots at compile time), and a dense render.
//!
//! Besides wall-clock medians, the bench counts heap allocations per
//! transition through a counting global allocator — the VM's pooled
//! register arena should cut them drastically — and cross-checks at
//! every step that the VM's results and frames are byte-identical to
//! the tree walker's. Results, speedups, and allocation ratios are
//! written to `BENCH_eval_heavy.json` (acceptance bar: ≥ 5× VM speedup
//! on the best workload, byte identity on all of them).

use alive_core::event::EventQueue;
use alive_core::store::Store;
use alive_core::vm::{self, Scratch};
use alive_core::widget::WidgetStore;
use alive_core::{bigstep, compile};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counters are relaxed atomics with no effect on allocation.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation calls and bytes during `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let r = f();
    (
        r,
        ALLOC_CALLS.load(Ordering::Relaxed) - calls0,
        ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
    )
}

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

/// The 10k-item collection loop: builds and folds over collections in
/// the init body, with helper calls in the hot loop.
fn collection_src(items: usize) -> String {
    format!(
        "global total : number = 0
         global checksum : number = 0
         fun weight(x: number): number pure {{ x * 3 + 1 }}
         page start() {{
             init {{
                 let acc = 0;
                 for i in 0 .. {items} {{
                     acc := acc + weight(i);
                 }}
                 foreach v in [1, 2, 3, 4, 5, 6, 7, 8] {{
                     acc := acc + v * v;
                 }}
                 total := acc;
                 checksum := total - {items};
             }}
             render {{ boxed {{ post \"total \" ++ total; }} }}
         }}"
    )
}

/// Deep call graph: naive recursive fib — every call builds a frame.
fn fib_src(n: usize) -> String {
    format!(
        "global out : number = 0
         fun fib(n: number): number pure {{
             if n < 2 {{ n }} else {{ fib(n - 1) + fib(n - 2) }}
         }}
         page start() {{
             init {{ out := fib({n}); }}
             render {{ boxed {{ post out; }} }}
         }}"
    )
}

/// Deep local chains: every reference reaches back to the *earliest*
/// bindings, so the walker's `lookup_local` scans nearly the whole
/// frame on each one while the VM reads a compile-time slot.
fn deep_locals_src(depth: usize, calls: usize) -> String {
    let mut body = String::from("fun deep(x: number): number pure {\n    let a0 = x + 1;\n");
    for i in 1..depth {
        body.push_str(&format!("    let a{i} = a{} + a0 + x;\n", i - 1));
    }
    body.push_str(&format!("    a{} + a0 + x\n}}\n", depth - 1));
    body.push_str(&format!(
        "global out : number = 0
         page start() {{
             init {{
                 let s = 0;
                 for i in 0 .. {calls} {{ s := s + deep(i); }}
                 out := s;
             }}
             render {{ boxed {{ post out; }} }}
         }}"
    ));
    body
}

/// Dense render: many boxes, posts, and attributes per frame.
fn render_src(boxes: usize) -> String {
    format!(
        "global base : number = 7
         page start() {{
             init {{ }}
             render {{
                 for i in 0 .. {boxes} {{
                     boxed {{
                         post \"item \" ++ (i * base);
                         box.margin := 1;
                     }}
                 }}
             }}
         }}"
    )
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

struct Workload {
    name: String,
    vm_ns: f64,
    bigstep_ns: f64,
    vm_allocs: u64,
    bigstep_allocs: u64,
    vm_alloc_bytes: u64,
    bigstep_alloc_bytes: u64,
    vm_instructions: u64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.bigstep_ns / self.vm_ns.max(1.0)
    }

    fn alloc_ratio(&self) -> f64 {
        self.bigstep_allocs as f64 / (self.vm_allocs.max(1)) as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"vm_ns\":{:.1},\"bigstep_ns\":{:.1},\"speedup\":{:.2},",
                "\"vm_allocs\":{},\"bigstep_allocs\":{},\"alloc_ratio\":{:.2},",
                "\"vm_alloc_bytes\":{},\"bigstep_alloc_bytes\":{},",
                "\"vm_instructions\":{},\"byte_identity\":true}}"
            ),
            self.name,
            self.vm_ns,
            self.bigstep_ns,
            self.speedup(),
            self.vm_allocs,
            self.bigstep_allocs,
            self.alloc_ratio(),
            self.vm_alloc_bytes,
            self.bigstep_alloc_bytes,
            self.vm_instructions,
        )
    }
}

/// Median wall time of `runs` repetitions of `f`, in ns.
fn median_ns(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Run one workload under both engines: byte-identity oracle first,
/// then allocation counts, then interleaved timing.
fn measure(name: &str, src: &str, runs: usize) -> Workload {
    let program = compile(src).expect("workload compiles");
    let page = program.page("start").expect("page");
    let init = page.init.clone();
    let render = page.render.clone();
    let vmp = program.vm().expect("workloads stay inside the VM subset");
    let mut scratch = Scratch::new();
    const FUEL: u64 = u64::MAX;

    let run_bigstep = |store: &mut Store| {
        let mut queue = EventQueue::new();
        let (v, _) = bigstep::run_state(&program, store, &mut queue, 0, FUEL, vec![], &init)
            .expect("bigstep init");
        let out =
            bigstep::run_render(&program, store, 0, FUEL, vec![], &render).expect("bigstep render");
        (v, out.root)
    };
    let run_vm = |store: &mut Store, scratch: &mut Scratch| {
        let mut queue = EventQueue::new();
        let mut widgets = WidgetStore::new();
        let init_run = vm::transition_page_init(
            &vmp,
            scratch,
            store,
            &mut queue,
            0,
            FUEL,
            "start",
            &[],
            None,
            None,
        )
        .expect("start page is compiled");
        let v = init_run.result.expect("vm init");
        let render_run = vm::transition_page_render(
            &vmp,
            scratch,
            store,
            0,
            FUEL,
            "start",
            &[],
            None,
            Some(&mut widgets),
            None,
        )
        .expect("start page is compiled");
        let root = render_run.result.expect("vm render");
        (
            v,
            root,
            init_run.stats.instructions + render_run.stats.instructions,
        )
    };

    // Byte-identity oracle: same value, same frame bytes.
    let mut bs_store = Store::new();
    let (bs_value, bs_root) = run_bigstep(&mut bs_store);
    let mut vm_store = Store::new();
    let (vm_value, vm_root, vm_instructions) = run_vm(&mut vm_store, &mut scratch);
    assert_eq!(vm_value, bs_value, "{name}: VM/bigstep values diverge");
    assert_eq!(
        format!("{vm_root:?}"),
        format!("{bs_root:?}"),
        "{name}: VM/bigstep frames diverge"
    );
    assert_eq!(
        format!("{vm_store:?}"),
        format!("{bs_store:?}"),
        "{name}: VM/bigstep stores diverge"
    );

    // Allocation counts for one full transition pair (warm scratch).
    let (_, bigstep_allocs, bigstep_alloc_bytes) = count_allocs(|| {
        let mut store = Store::new();
        black_box(run_bigstep(&mut store));
    });
    let (_, vm_allocs, vm_alloc_bytes) = count_allocs(|| {
        let mut store = Store::new();
        black_box(run_vm(&mut store, &mut scratch));
    });

    // Interleaved timing: each engine's median over `runs`.
    let bigstep_ns = median_ns(runs, || {
        let mut store = Store::new();
        black_box(run_bigstep(&mut store));
    });
    let vm_ns = median_ns(runs, || {
        let mut store = Store::new();
        black_box(run_vm(&mut store, &mut scratch));
    });

    let w = Workload {
        name: name.to_string(),
        vm_ns,
        bigstep_ns,
        vm_allocs,
        bigstep_allocs,
        vm_alloc_bytes,
        bigstep_alloc_bytes,
        vm_instructions,
    };
    eprintln!(
        "{:<24} vm {:>12.0} ns  bigstep {:>12.0} ns  speedup {:>6.2}x  allocs {} vs {} ({:.1}x)",
        w.name,
        w.vm_ns,
        w.bigstep_ns,
        w.speedup(),
        w.vm_allocs,
        w.bigstep_allocs,
        w.alloc_ratio(),
    );
    w
}

fn main() {
    // Smoke mode (under `cargo test --bench`) uses fewer repetitions;
    // `cargo bench` / --bench measures properly. Either way the byte
    // identity oracle and the report run.
    let full = std::env::args().any(|a| a == "--bench")
        || std::env::var("ALIVE_BENCH_FULL").is_ok_and(|v| v == "1");
    let runs = if full { 15 } else { 5 };

    let items: usize = std::env::var("ALIVE_BENCH_EVAL_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    let workloads = [
        measure("collection10k", &collection_src(items), runs),
        measure("fib18", &fib_src(18), runs),
        measure("deep_locals128", &deep_locals_src(128, 2_000), runs),
        measure("render1k", &render_src(1_000), runs),
    ];

    let best = workloads
        .iter()
        .map(Workload::speedup)
        .fold(0.0f64, f64::max);
    let report = format!(
        "{{\"group\":\"eval_heavy\",\"mode\":\"{}\",\"items\":{},\"best_speedup\":{:.2},\"workloads\":[{}]}}",
        if full { "full" } else { "smoke" },
        items,
        best,
        workloads
            .iter()
            .map(Workload::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("{report}");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_eval_heavy.json");
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("report written to {}", out.display());
}
