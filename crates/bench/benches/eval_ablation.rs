//! E7 — ablation: the paper-faithful small-step substitution machine
//! (Fig. 8) vs the production big-step evaluator, on a pure workload
//! (recursive fib) and a render workload (the gallery page). Measures
//! the cost of semantic fidelity; correctness agreement is tested in
//! `tests/semantics_agreement.rs`.

use alive_core::event::EventQueue;
use alive_core::store::Store;
use alive_core::{bigstep, compile, smallstep};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use std::hint::black_box;

fn bench_eval_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_ablation");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);

    // Pure workload: fib(n).
    let fib_src = "fun fib(n: number): number pure {
            if n < 2 { n } else { fib(n - 1) + fib(n - 2) }
        }
        fun main(): number pure { fib(14) }
        page start() { render { } }";
    let p = compile(fib_src).expect("compiles");
    let body = p.fun("main").expect("fun").body.clone();
    group.bench_function(BenchmarkId::new("bigstep", "fib14"), |b| {
        let store = Store::new();
        b.iter(|| {
            black_box(bigstep::run_pure(&p, &store, 0, u64::MAX, &body).expect("runs"))
        });
    });
    group.bench_function(BenchmarkId::new("smallstep", "fib14"), |b| {
        b.iter(|| {
            let mut store = Store::new();
            black_box(smallstep::eval_pure(&p, &mut store, u64::MAX, &body).expect("runs"))
        });
    });

    // Render workload: one full page render of the dense gallery.
    for n in [10usize, 50] {
        let p = compile(&alive_apps::gallery::gallery_src(n)).expect("compiles");
        let page = p.page("start").expect("page");
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        bigstep::run_state(&p, &mut store, &mut queue, 0, u64::MAX, vec![], &page.init)
            .expect("init");
        let render = page.render.clone();
        group.bench_with_input(BenchmarkId::new("bigstep_render", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    bigstep::run_render(&p, &store, 0, u64::MAX, vec![], &render)
                        .expect("runs"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("smallstep_render", n), &n, |b, _| {
            b.iter(|| {
                let mut scratch = store.clone();
                black_box(
                    smallstep::eval_render(&p, &mut scratch, u64::MAX, &render)
                        .expect("runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_ablation);
criterion_main!(benches);
