//! E7 — ablation: the paper-faithful small-step substitution machine
//! (Fig. 8) vs the production big-step evaluator, on a pure workload
//! (recursive fib) and a render workload (the gallery page). Measures
//! the cost of semantic fidelity; correctness agreement is tested in
//! `tests/semantics_agreement.rs`.

use alive_core::event::EventQueue;
use alive_core::store::Store;
use alive_core::{bigstep, compile, smallstep};
use alive_testkit::Bench;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args("eval_ablation");

    // Pure workload: fib(n).
    let fib_src = "fun fib(n: number): number pure {
            if n < 2 { n } else { fib(n - 1) + fib(n - 2) }
        }
        fun main(): number pure { fib(14) }
        page start() { render { } }";
    let p = compile(fib_src).expect("compiles");
    let body = p.fun("main").expect("fun").body.clone();
    let store = Store::new();
    bench.bench("bigstep/fib14", || {
        black_box(bigstep::run_pure(&p, &store, 0, u64::MAX, &body).expect("runs"))
    });
    bench.bench("smallstep/fib14", || {
        let mut store = Store::new();
        black_box(smallstep::eval_pure(&p, &mut store, u64::MAX, &body).expect("runs"))
    });

    // Local-lookup micro-case: a deep let-chain makes `lookup_local`
    // the hot operation. Names are interned `Arc<str>`s, so the resolver
    // compares pointers before strings and walks frames innermost-first;
    // this case tracks that fast path (regressing to string compares or
    // outermost-first scans shows up directly in its ns/iter).
    for depth in [16usize, 64] {
        let mut body = String::from("fun deep(x: number): number pure {\n");
        body.push_str("    let a0 = x + 1;\n");
        for i in 1..depth {
            body.push_str(&format!("    let a{i} = a{} + 1;\n", i - 1));
        }
        // Touch the innermost, the outermost, and the parameter: one
        // cheap lookup and two worst-case scans per call.
        body.push_str(&format!("    a{} + a0 + x\n}}\n", depth - 1));
        body.push_str("fun main(): number pure { deep(1) + deep(2) }\npage start() { render { } }");
        let p = compile(&body).expect("compiles");
        let main_body = p.fun("main").expect("fun").body.clone();
        let store = Store::new();
        bench.bench(&format!("bigstep/lookup_deep{depth}"), || {
            black_box(bigstep::run_pure(&p, &store, 0, u64::MAX, &main_body).expect("runs"))
        });
    }

    // Render workload: one full page render of the dense gallery.
    for n in [10usize, 50] {
        let p = compile(&alive_apps::gallery::gallery_src(n)).expect("compiles");
        let page = p.page("start").expect("page");
        let mut store = Store::new();
        let mut queue = EventQueue::new();
        bigstep::run_state(&p, &mut store, &mut queue, 0, u64::MAX, vec![], &page.init)
            .expect("init");
        let render = page.render.clone();
        bench.bench(&format!("bigstep_render/{n}"), || {
            black_box(bigstep::run_render(&p, &store, 0, u64::MAX, vec![], &render).expect("runs"))
        });
        bench.bench(&format!("smallstep_render/{n}"), || {
            let mut scratch = store.clone();
            black_box(smallstep::eval_render(&p, &mut scratch, u64::MAX, &render).expect("runs"))
        });
    }
    bench.finish();
}
