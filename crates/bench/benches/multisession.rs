//! Multi-session host throughput: K sessions × M commands driven
//! through [`SessionHost`] at increasing worker counts, with a
//! byte-identity oracle (every hosted session's final frame must equal
//! a solo [`LiveSession`] replaying the same command log).
//!
//! Reports aggregate command throughput, session walks per second, and
//! p50/p99 per-command latency at 1, 4, and `available_parallelism`
//! workers to `BENCH_multisession.json` — each run carries a `speedup`
//! field (its throughput over the 1-worker run's), and
//! `speedup_at_max_workers` is the speedup of the run with the **most
//! workers actually benched** (an earlier revision keyed it to the
//! `num_cpus` run, which on a 1-CPU box compared the 1-worker run to
//! itself and reported 1.00 while the 4-worker run sat at 0.4×). The
//! report also embeds the host's own [`MetricsSnapshot`] (wire form)
//! and a metrics-on vs metrics-off overhead comparison at max workers:
//! observability must cost ≤5% of p50 command latency (plus a small
//! absolute epsilon against timer noise), or the bench fails.
//!
//! A second workload is the **load generator**: L sessions (default
//! 10 000) driven by a small pool of client threads with a skewed
//! command mix (20% of each client's sessions receive ~80% of its
//! commands) and pipelined submits, so mailboxes develop real depth
//! and the host's backpressure, stealing, and parking paths all run.
//! A submission refused with the typed `Overloaded` signal is retried
//! under a bounded budget with jittered completion-based backoff (the
//! client drains some of its own in-flight tickets — no wall-clock
//! sleeps); only commands that exhaust the budget are shed, reported
//! as `gave_up` (== `shed`) alongside `retries`. A sample of sessions
//! is replayed solo for the byte-identity oracle; and the quiesced
//! shutdown snapshot must satisfy the worker accounting identity
//! (busy + parked + steal-scan == wall) exactly.
//!
//! A third workload is the **scenario corpus**: one hosted session per
//! generated `alive-corpus` program (twenty distinct programs, so the
//! host's program cache keys per-program instead of sharing one
//! compile), each driven with a tap fan scaled to its size and
//! `Examples` probes mixed into the stream, with the same solo-replay
//! byte-identity oracle.
//!
//! Env knobs (used by the CI smoke step):
//! * `ALIVE_BENCH_SESSIONS` — K, default 16
//! * `ALIVE_BENCH_COMMANDS` — M, default 200
//! * `ALIVE_BENCH_LOAD_SESSIONS` — L, default 10 000
//! * `ALIVE_BENCH_LOAD_COMMANDS` — total loadgen commands, default
//!   100 000

use alive_live::{LiveSession, MetricsSnapshot, SessionCommand, SessionEffect};
use alive_serve::{names, HostConfig, HostError, SessionHost, SessionId};
use alive_testkit::Rng;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Absolute slack (µs) for the overhead gate: below this, p50 deltas
/// are timer granularity, not metrics cost.
const OVERHEAD_EPSILON_US: u64 = 25;

const APP_SRC: &str = r#"
global score : number = 0
page start() {
    init { }
    render {
        boxed {
            post "score: " ++ score;
        }
        for i in 0 .. 4 {
            boxed {
                post "+" ++ (i + 1);
                on tap { score := score + i + 1; }
            }
        }
        boxed {
            post "open detail";
            on tap { push detail(score); }
        }
    }
}
page detail(n : number) {
    render {
        boxed { post "at " ++ n; on tap { pop; } }
    }
}
"#;

/// The deterministic per-session command stream: mostly taps (the
/// steady-state load), some page navigation, a frame read every few
/// commands — the shape of an interactive user.
fn command_stream(session_index: usize, m: usize) -> Vec<SessionCommand> {
    let mut rng = Rng::new(0xBE9C_0000 ^ session_index as u64);
    (0..m)
        .map(|_| match rng.below(10) {
            0..=5 => SessionCommand::TapPath(vec![1 + rng.below(4)]),
            6 => SessionCommand::TapPath(vec![5]),
            7 => SessionCommand::Back,
            _ => SessionCommand::Frame,
        })
        .collect()
}

struct RunStats {
    workers: usize,
    seconds: f64,
    commands: usize,
    latencies_us: Vec<u64>,
}

impl RunStats {
    fn commands_per_sec(&self) -> f64 {
        self.commands as f64 / self.seconds
    }

    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[rank]
    }

    fn to_json(&self, k: usize, single_cps: f64) -> String {
        format!(
            concat!(
                "{{\"workers\":{},\"seconds\":{:.4},\"commands\":{},",
                "\"commands_per_sec\":{:.1},\"sessions_per_sec\":{:.2},",
                "\"speedup\":{:.2},\"p50_us\":{},\"p99_us\":{}}}"
            ),
            self.workers,
            self.seconds,
            self.commands,
            self.commands_per_sec(),
            k as f64 / self.seconds,
            self.commands_per_sec() / single_cps.max(1e-9),
            self.percentile_us(0.50),
            self.percentile_us(0.99),
        )
    }
}

/// Drive K sessions × M commands against a fresh host with `workers`
/// workers: one client thread per session applying its stream
/// synchronously (the latency of each apply is the user-visible
/// round-trip). Asserts the byte-identity oracle before returning.
fn run(workers: usize, k: usize, m: usize) -> RunStats {
    run_with_metrics(workers, k, m, true).0
}

fn run_with_metrics(
    workers: usize,
    k: usize,
    m: usize,
    metrics: bool,
) -> (RunStats, MetricsSnapshot) {
    let host = Arc::new(SessionHost::new(HostConfig {
        metrics,
        ..HostConfig::with_workers(workers)
    }));
    let ids: Vec<_> = (0..k)
        .map(|_| host.create_session(APP_SRC).expect("app compiles"))
        .collect();
    assert_eq!(
        host.programs_compiled(),
        1,
        "K sessions must share one compile"
    );

    let started = Instant::now();
    let handles: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(index, &id)| {
            let host = Arc::clone(&host);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(m);
                for command in command_stream(index, m) {
                    let t0 = Instant::now();
                    host.apply(id, command).expect("host serves");
                    latencies.push(t0.elapsed().as_micros() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(k * m);
    for handle in handles {
        latencies_us.extend(handle.join().expect("client thread"));
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);
    // Snapshot before the oracle replay below so the artifact reflects
    // exactly the timed K×M load.
    let snapshot = host.metrics_snapshot();

    // Byte-identity oracle: every hosted session's final frame equals a
    // solo session replaying the same command log.
    for (index, &id) in ids.iter().enumerate() {
        let hosted = host.apply(id, SessionCommand::Frame).expect("host serves");
        let mut solo = LiveSession::new(APP_SRC).expect("solo starts");
        for command in command_stream(index, m) {
            solo.apply(command);
        }
        let local = solo.apply(SessionCommand::Frame);
        assert_eq!(
            hosted, local,
            "session {index}: hosted frame diverged from solo replay"
        );
        let (Some(SessionEffect::Frame(h)), Some(SessionEffect::Frame(l))) =
            (hosted.first(), local.first())
        else {
            panic!("session {index}: expected frames");
        };
        assert_eq!(h.view, l.view, "session {index}: view bytes differ");
    }

    latencies_us.sort_unstable();
    (
        RunStats {
            workers,
            seconds,
            commands: k * m,
            latencies_us,
        },
        snapshot,
    )
}

/// What one load-generator client did with its command budget.
struct ClientTally {
    /// Per-session logs of the commands the host actually admitted.
    logs: Vec<Vec<SessionCommand>>,
    /// Overload refusals the client answered with a backoff + retry.
    retries: u64,
    /// Commands dropped after the retry budget ran out — the only
    /// submissions that never reached a mailbox.
    gave_up: u64,
}

/// One load-generator client's work: drive its slice of sessions with
/// a skewed, pipelined command stream. A submission refused with the
/// typed [`HostError::Overloaded`] backpressure signal is retried with
/// a bounded budget: between attempts the client *drains a jittered
/// number of its own in-flight tickets* — completion-based backoff
/// (the host finishing work is what clears the mailbox), jittered by
/// the testkit PRNG so clients desynchronize, with no wall-clock
/// sleeps anywhere. Past the budget the command is dropped and
/// counted `gave_up`, exactly as a transport would give a client a
/// final 429.
fn loadgen_client(
    host: &SessionHost,
    ids: &[SessionId],
    commands: usize,
    seed: u64,
) -> ClientTally {
    /// In-flight tickets per client: deep enough to build real mailbox
    /// depth on hot sessions, bounded so a stalled host backs the
    /// client up instead of ballooning memory.
    const WINDOW: usize = 64;
    /// Submission attempts per command (1 + up to 3 retries).
    const ATTEMPTS: usize = 4;
    let mut rng = Rng::new(0x10AD_0000 ^ seed);
    // The skew: the first fifth of the slice is "hot" and receives
    // ~80% of this client's commands — a few busy sessions among many
    // mostly-idle ones, the shape a network host actually sees.
    let hot = (ids.len() / 5).max(1);
    let mut logs: Vec<Vec<SessionCommand>> = vec![Vec::new(); ids.len()];
    let mut window: VecDeque<alive_serve::EffectTicket> = VecDeque::with_capacity(WINDOW);
    let mut retries = 0u64;
    let mut gave_up = 0u64;
    for _ in 0..commands {
        let target = if rng.below(10) < 8 {
            rng.below(hot)
        } else {
            rng.below(ids.len())
        };
        let command = match rng.below(10) {
            0..=5 => SessionCommand::TapPath(vec![1 + rng.below(4)]),
            6 => SessionCommand::TapPath(vec![5]),
            7 => SessionCommand::Back,
            _ => SessionCommand::Frame,
        };
        for attempt in 0..ATTEMPTS {
            match host.submit(ids[target], command.clone()) {
                Ok(ticket) => {
                    logs[target].push(command.clone());
                    window.push_back(ticket);
                    if window.len() >= WINDOW {
                        if let Some(ticket) = window.pop_front() {
                            ticket.wait().expect("host serves");
                        }
                    }
                    break;
                }
                Err(HostError::Overloaded { .. }) if attempt + 1 < ATTEMPTS => {
                    // Jittered completion-based backoff: wait for 1–8
                    // of our own in-flight commands to finish before
                    // trying again. An empty window means the backlog
                    // is other clients' — retry immediately.
                    retries += 1;
                    for _ in 0..1 + rng.below(8) {
                        match window.pop_front() {
                            Some(ticket) => {
                                ticket.wait().expect("host serves");
                            }
                            None => break,
                        }
                    }
                }
                // Budget exhausted: the final refusal sheds the
                // command for good.
                Err(HostError::Overloaded { .. }) => gave_up += 1,
                Err(e) => panic!("loadgen submit failed: {e}"),
            }
        }
    }
    for ticket in window {
        ticket.wait().expect("host serves");
    }
    ClientTally {
        logs,
        retries,
        gave_up,
    }
}

/// The load-generator workload: L sessions served by `workers` workers
/// and driven from a small client pool with skew and pipelining (see
/// the module docs). Asserts the sampled byte-identity oracle and the
/// quiesced worker accounting identity, and returns the workload's
/// JSON report object.
fn run_loadgen(workers: usize) -> String {
    let sessions = env_usize("ALIVE_BENCH_LOAD_SESSIONS", 10_000).max(1);
    let total_commands = env_usize("ALIVE_BENCH_LOAD_COMMANDS", 100_000);

    let host = Arc::new(SessionHost::new(HostConfig::with_workers(workers)));
    let ids: Vec<SessionId> = (0..sessions)
        .map(|_| host.create_session(APP_SRC).expect("app compiles"))
        .collect();
    assert_eq!(
        host.programs_compiled(),
        1,
        "10k sessions must share one compile"
    );

    // Client pool: a handful of threads regardless of session count —
    // thousands of sessions, not thousands of drivers. The chunk size
    // decides the real client count (a tiny session count yields fewer
    // clients than the target, never empty chunks).
    let target_clients = workers.clamp(2, 16).min(sessions);
    let chunk = sessions.div_ceil(target_clients);
    let clients = sessions.div_ceil(chunk);
    let per_client = total_commands / clients;
    let started = Instant::now();
    let handles: Vec<_> = ids
        .chunks(chunk)
        .enumerate()
        .map(|(client, slice)| {
            let host = Arc::clone(&host);
            let slice = slice.to_vec();
            std::thread::spawn(move || loadgen_client(&host, &slice, per_client, client as u64))
        })
        .collect();
    let mut retries = 0u64;
    let mut gave_up = 0u64;
    let mut logs: Vec<(SessionId, Vec<SessionCommand>)> = Vec::new();
    for (client, handle) in handles.into_iter().enumerate() {
        let tally = handle.join().expect("client thread");
        retries += tally.retries;
        gave_up += tally.gave_up;
        let lo = client * chunk;
        logs.extend(
            tally
                .logs
                .into_iter()
                .enumerate()
                .map(|(i, log)| (ids[lo + i], log)),
        );
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);
    let submitted = (per_client * clients) as u64;
    // Shed = dropped for good. Retried-then-admitted commands are not
    // shed — the retry loop is exactly what keeps this at zero under
    // transient overload.
    let shed = gave_up;
    let applied = submitted - shed;

    // Sampled byte-identity oracle: the hottest and coldest session of
    // each client, replayed solo against the logs of what the host
    // actually admitted (per-session order is submission order because
    // each session has exactly one driving client).
    let mut oracle_sessions = 0usize;
    for client in 0..clients {
        let lo = client * chunk;
        let hi = (lo + chunk).min(sessions);
        for index in [lo, hi - 1] {
            let (id, log) = &logs[index];
            let hosted = host.apply(*id, SessionCommand::Frame).expect("host serves");
            let mut solo = LiveSession::new(APP_SRC).expect("solo starts");
            for command in log {
                solo.apply(command.clone());
            }
            let local = solo.apply(SessionCommand::Frame);
            assert_eq!(
                hosted, local,
                "loadgen session {index}: hosted frame diverged from solo replay"
            );
            oracle_sessions += 1;
            if lo == hi - 1 {
                break;
            }
        }
    }

    let snapshot = Arc::into_inner(host).expect("clients joined").shutdown();
    // Quiesced accounting identity: every worker microsecond is busy,
    // parked, or steal-scanning — contention can no longer hide in
    // idle because there is no shared ready-queue lock to contend on.
    let busy = snapshot.counter(names::WORKER_BUSY_US);
    let parked = snapshot.counter(names::WORKER_PARKED_US);
    let scan = snapshot.counter(names::WORKER_STEAL_SCAN_US);
    assert_eq!(
        busy + parked + scan,
        snapshot.counter(names::WORKER_WALL_US),
        "worker accounting identity violated"
    );
    assert_eq!(
        snapshot.counter(names::OVERLOADS),
        retries + gave_up,
        "every refused submit attempt (retried or dropped) is a counted overload"
    );
    let latency = snapshot.histogram(names::CMD_LATENCY_US);
    let p50 = latency.and_then(|h| h.p50_us()).unwrap_or(0);
    let p99 = latency.and_then(|h| h.p99_us()).unwrap_or(0);
    let steals = snapshot.counter(names::STEALS);
    let parks = snapshot.counter(names::PARKS);
    eprintln!(
        "loadgen: {sessions} sessions / {clients} clients: {:.1} commands/s, p50 {p50} µs, p99 {p99} µs, {steals} steals, {parks} parks, {retries} retries, {gave_up} gave up ({applied} commands in {seconds:.2}s)",
        applied as f64 / seconds,
    );
    format!(
        concat!(
            "{{\"sessions\":{},\"clients\":{},\"workers\":{},",
            "\"commands_submitted\":{},\"commands_applied\":{},\"shed\":{},",
            "\"retries\":{},\"gave_up\":{},",
            "\"seconds\":{:.4},\"commands_per_sec\":{:.1},",
            "\"p50_us\":{},\"p99_us\":{},\"steals\":{},\"parks\":{},",
            "\"hot_fraction\":0.2,\"hot_share\":0.8,\"oracle_sessions\":{}}}"
        ),
        sessions,
        clients,
        workers,
        submitted,
        applied,
        shed,
        retries,
        gave_up,
        seconds,
        applied as f64 / seconds,
        p50,
        p99,
        steals,
        parks,
        oracle_sessions,
    )
}

/// The corpus workload: one hosted session per generated scenario
/// program — twenty *distinct* programs, so the host's program cache
/// keys per-program (`programs_compiled == corpus size`, unlike the
/// K-sessions runs that share one compile) while each session walks
/// its own app with a tap fan scaled to its size and `Examples`
/// probes mixed into the stream. The byte-identity oracle replays
/// every session solo, exactly as in the homogeneous runs.
fn run_corpus(workers: usize, m: usize) -> String {
    let corpus = alive_corpus::corpus();
    let host = Arc::new(SessionHost::new(HostConfig::with_workers(workers)));
    let sessions: Vec<(SessionId, String, usize)> = corpus
        .iter()
        .map(|entry| {
            let id = host
                .create_session(&entry.source)
                .expect("corpus programs compile");
            (id, entry.source.clone(), entry.spec.size.rows() + 4)
        })
        .collect();
    assert_eq!(
        host.programs_compiled(),
        corpus.len() as u64,
        "each distinct corpus program compiles exactly once"
    );

    let started = Instant::now();
    let handles: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(index, &(id, _, width))| {
            let host = Arc::clone(&host);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(m);
                let mut probes = 0u64;
                for command in corpus_stream(index, width, m) {
                    let probing = matches!(command, SessionCommand::Examples);
                    let t0 = Instant::now();
                    let effects = host.apply(id, command).expect("host serves");
                    latencies.push(t0.elapsed().as_micros() as u64);
                    if probing {
                        let probed = effects
                            .iter()
                            .any(|e| matches!(e, SessionEffect::Examples(p) if !p.is_empty()));
                        assert!(probed, "corpus session {index}: examples probe was empty");
                        probes += 1;
                    }
                }
                (latencies, probes)
            })
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(sessions.len() * m);
    let mut examples_probed = 0u64;
    for handle in handles {
        let (latencies, probes) = handle.join().expect("client thread");
        latencies_us.extend(latencies);
        examples_probed += probes;
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);

    // Byte-identity oracle over every corpus session.
    for (index, (id, source, width)) in sessions.iter().enumerate() {
        let hosted = host.apply(*id, SessionCommand::Frame).expect("host serves");
        let mut solo = LiveSession::new(source).expect("solo starts");
        for command in corpus_stream(index, *width, m) {
            solo.apply(command);
        }
        let local = solo.apply(SessionCommand::Frame);
        assert_eq!(
            hosted, local,
            "corpus session {index}: hosted frame diverged from solo replay"
        );
    }

    latencies_us.sort_unstable();
    let stats = RunStats {
        workers,
        seconds,
        commands: sessions.len() * m,
        latencies_us,
    };
    eprintln!(
        "corpus: {} programs x {m} commands: {:.1} commands/s, p50 {} µs, p99 {} µs, {examples_probed} example probes ({:.2}s)",
        sessions.len(),
        stats.commands_per_sec(),
        stats.percentile_us(0.50),
        stats.percentile_us(0.99),
        seconds,
    );
    format!(
        concat!(
            "{{\"programs\":{},\"programs_compiled\":{},\"workers\":{},",
            "\"commands\":{},\"seconds\":{:.4},\"commands_per_sec\":{:.1},",
            "\"p50_us\":{},\"p99_us\":{},\"examples_probed\":{},",
            "\"oracle_sessions\":{}}}"
        ),
        sessions.len(),
        host.programs_compiled(),
        workers,
        stats.commands,
        seconds,
        stats.commands_per_sec(),
        stats.percentile_us(0.50),
        stats.percentile_us(0.99),
        examples_probed,
        sessions.len(),
    )
}

/// The deterministic per-corpus-session command stream: taps across the
/// program's own fan, navigation, frame reads, and `Examples` probes.
fn corpus_stream(index: usize, width: usize, m: usize) -> Vec<SessionCommand> {
    let mut rng = Rng::new(0xC0_9035 ^ index as u64);
    (0..m)
        .map(|_| match rng.below(10) {
            0..=4 => SessionCommand::TapPath(vec![rng.below(width)]),
            5 => SessionCommand::Back,
            6 | 7 => SessionCommand::Examples,
            _ => SessionCommand::Frame,
        })
        .collect()
}

/// Minimal JSON string escaping for the wire snapshot (names are
/// registry-sanitized, so only newlines and the JSON specials occur).
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 16);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let k = env_usize("ALIVE_BENCH_SESSIONS", 16);
    let m = env_usize("ALIVE_BENCH_COMMANDS", 200);
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut worker_counts = vec![1, 4, ncpu];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    // Warm up file caches / first-compile costs outside the timed runs.
    drop(run(1, 2.min(k), 8.min(m)));

    let runs: Vec<RunStats> = worker_counts
        .iter()
        .map(|&workers| {
            let stats = run(workers, k, m);
            eprintln!(
                "workers={:>2}: {:>8.1} commands/s, p50 {} µs, p99 {} µs ({} commands in {:.2}s)",
                stats.workers,
                stats.commands_per_sec(),
                stats.percentile_us(0.50),
                stats.percentile_us(0.99),
                stats.commands,
                stats.seconds,
            );
            stats
        })
        .collect();

    // The scaling headline: the run with the MOST workers benched,
    // against the 1-worker baseline. (An earlier revision looked up
    // the `workers == ncpu` run, which on a 1-CPU machine *was* the
    // baseline — it reported speedup 1.00 around a measured 0.4×
    // inversion. The max-workers run is the one the claim is about.)
    let single = runs
        .iter()
        .find(|r| r.workers == 1)
        .map_or(1.0, RunStats::commands_per_sec);
    let max_run = runs
        .iter()
        .max_by_key(|r| r.workers)
        .unwrap_or_else(|| unreachable!("worker_counts is never empty"));
    let max_workers = max_run.workers;
    let speedup = max_run.commands_per_sec() / single.max(1e-9);
    eprintln!("speedup at {max_workers} workers vs 1: {speedup:.2}x (oracle: byte-identical)");
    // The ≥2.5× bar only means anything on a machine with real
    // parallelism; a single-core runner measures scheduling overhead.
    if ncpu >= 4 && speedup < 2.5 {
        eprintln!(
            "WARNING: expected ≥2.5x speedup at {max_workers} workers, measured {speedup:.2}x"
        );
    }

    // Observability overhead gate at max workers: best-of-two p50 per
    // arm (min absorbs one-off scheduling hiccups), metrics-on may cost
    // at most 5% over metrics-off, modulo an absolute epsilon.
    let p50_of = |metrics: bool| {
        (0..2)
            .map(|_| run_with_metrics(ncpu, k, m, metrics).0.percentile_us(0.50))
            .min()
            .unwrap_or(0)
    };
    let p50_off = p50_of(false);
    let p50_on = p50_of(true);
    let budget_us = (p50_off + p50_off / 20).max(p50_off + OVERHEAD_EPSILON_US);
    eprintln!(
        "metrics overhead at {ncpu} workers: p50 {p50_off} µs off -> {p50_on} µs on (budget {budget_us} µs)"
    );
    assert!(
        p50_on <= budget_us,
        "metrics overhead too high: p50 {p50_on} µs with metrics vs {p50_off} µs without \
         (budget {budget_us} µs = +5% or +{OVERHEAD_EPSILON_US} µs)"
    );

    // One more instrumented pass to capture the host's own snapshot for
    // the artifact (wire form, embedded as an escaped JSON string).
    let (_, host_snapshot) = run_with_metrics(ncpu, k, m, true);
    let cmd_latency = host_snapshot.histogram("host.cmd_latency_us");
    let host_p50 = cmd_latency.and_then(|h| h.p50_us()).unwrap_or(0);
    let host_p99 = cmd_latency.and_then(|h| h.p99_us()).unwrap_or(0);

    // The load-generator workload: many sessions, few clients, skewed
    // traffic, pipelined submits — the shape of a network-facing host.
    let load = run_loadgen(ncpu);

    // The heterogeneous corpus workload: twenty distinct scenario
    // programs, one session each, example probes in the stream.
    let corpus = run_corpus(ncpu, m);

    let body: Vec<String> = runs.iter().map(|r| r.to_json(k, single)).collect();
    let report = format!(
        "{{\"sessions\":{},\"commands_per_session\":{},\"cpus\":{},\"max_workers\":{},\"speedup_at_max_workers\":{:.2},\"oracle\":\"byte-identical final frames vs solo replay\",\"runs\":[{}],\"loadgen\":{},\"corpus\":{},\"metrics_overhead\":{{\"p50_us_metrics_off\":{},\"p50_us_metrics_on\":{},\"budget_us\":{}}},\"host_metrics\":{{\"cmd_latency_p50_us\":{},\"cmd_latency_p99_us\":{},\"snapshot_wire\":\"{}\"}}}}\n",
        k,
        m,
        ncpu,
        max_workers,
        speedup,
        body.join(","),
        load,
        corpus,
        p50_off,
        p50_on,
        budget_us,
        host_p50,
        host_p99,
        json_escape(&host_snapshot.to_wire()),
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_multisession.json");
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
}
