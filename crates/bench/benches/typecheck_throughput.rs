//! E5 — continuous type checking: the paper's editor re-checks,
//! re-lowers, and re-compiles the whole program on every keystroke
//! (§3, "continuously type-checked, compiled, and executed"); this
//! measures that per-keystroke budget vs program size, and the stages
//! separately.

use alive_apps::gallery::wide_program_src;
use alive_core::{compile, lower, typeck};
use alive_syntax::parse_program;
use alive_testkit::Bench;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args("typecheck_throughput");
    for n in [10usize, 50, 200] {
        let src = wide_program_src(n);
        bench.bench(&format!("parse/{n}"), || black_box(parse_program(&src)));
        let parsed = parse_program(&src);
        bench.bench(&format!("lower/{n}"), || {
            black_box(lower::lower_program(&parsed.program))
        });
        let lowered = lower::lower_program(&parsed.program);
        bench.bench(&format!("typecheck/{n}"), || {
            black_box(typeck::check_program(&lowered.program))
        });
        bench.bench(&format!("full_compile/{n}"), || {
            black_box(compile(&src).expect("compiles"))
        });
        // The keystroke loop: alternate two one-token body edits; all
        // other items hit the parse cache.
        let mut compiler = alive_core::IncrementalCompiler::new();
        compiler.compile(&src).expect("compiles");
        let variant = src.replace("x * 2 + g0", "x * 3 + g0");
        let mut flip = false;
        bench.bench(&format!("incremental_compile/{n}"), || {
            flip = !flip;
            let target: &str = if flip { &variant } else { &src };
            black_box(compiler.compile(target).expect("compiles"));
        });
    }
    bench.finish();
}
