//! E5 — continuous type checking: the paper's editor re-checks,
//! re-lowers, and re-compiles the whole program on every keystroke
//! (§3, "continuously type-checked, compiled, and executed"); this
//! measures that per-keystroke budget vs program size, and the stages
//! separately.

use alive_apps::gallery::wide_program_src;
use alive_core::{compile, lower, typeck};
use alive_syntax::parse_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use std::hint::black_box;

fn bench_typecheck_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("typecheck_throughput");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for n in [10usize, 50, 200] {
        let src = wide_program_src(n);
        group.bench_with_input(BenchmarkId::new("parse", n), &src, |b, src| {
            b.iter(|| black_box(parse_program(src)));
        });
        group.bench_with_input(BenchmarkId::new("lower", n), &src, |b, src| {
            let parsed = parse_program(src);
            b.iter(|| black_box(lower::lower_program(&parsed.program)));
        });
        group.bench_with_input(BenchmarkId::new("typecheck", n), &src, |b, src| {
            let parsed = parse_program(src);
            let lowered = lower::lower_program(&parsed.program);
            b.iter(|| black_box(typeck::check_program(&lowered.program)));
        });
        group.bench_with_input(BenchmarkId::new("full_compile", n), &src, |b, src| {
            b.iter(|| black_box(compile(src).expect("compiles")));
        });
        group.bench_with_input(
            BenchmarkId::new("incremental_compile", n),
            &src,
            |b, src| {
                // The keystroke loop: alternate two one-token body edits;
                // all other items hit the parse cache.
                let mut compiler = alive_core::IncrementalCompiler::new();
                compiler.compile(src).expect("compiles");
                let variant = src.replace("x * 2 + g0", "x * 3 + g0");
                let mut flip = false;
                b.iter(|| {
                    flip = !flip;
                    let target: &str = if flip { &variant } else { src };
                    black_box(compiler.compile(target).expect("compiles"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_typecheck_throughput);
criterion_main!(benches);
