//! UI substrate micro-benchmarks: layout, text rendering, hit-testing,
//! and display diffing, across wide (many siblings) and deep (nested)
//! box trees. Establishes that the display pipeline stays linear and is
//! not the bottleneck behind the render-scaling numbers of E4.

use alive_apps::gallery::{feed_src, nested_src};
use alive_core::compile;
use alive_core::system::System;
use alive_testkit::Bench;
use alive_ui::{diff_displays, hit_test, layout, render_to_text, Point};
use std::hint::black_box;

fn rendered_root(src: &str) -> alive_core::BoxNode {
    let mut sys = System::new(compile(src).expect("compiles"));
    sys.rendered().expect("renders").clone()
}

fn main() {
    let mut bench = Bench::from_args("ui_pipeline");

    for n in [10usize, 100, 1000] {
        let root = rendered_root(&feed_src(n));
        bench.bench(&format!("layout_wide/{n}"), || black_box(layout(&root)));
        let tree = layout(&root);
        bench.bench(&format!("render_text_wide/{n}"), || {
            black_box(render_to_text(&tree))
        });
        let bottom = tree.size().h - 1;
        bench.bench(&format!("hit_test_wide/{n}"), || {
            black_box(hit_test(&tree, Point::new(0, bottom)))
        });
        bench.bench(&format!("diff_identical_wide/{n}"), || {
            black_box(diff_displays(&root, &root))
        });
    }

    for depth in [8usize, 32, 128] {
        let root = rendered_root(&nested_src(depth));
        bench.bench(&format!("layout_deep/{depth}"), || black_box(layout(&root)));
    }
    bench.finish();
}
