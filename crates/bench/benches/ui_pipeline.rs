//! UI substrate micro-benchmarks: layout, text rendering, hit-testing,
//! and display diffing, across wide (many siblings) and deep (nested)
//! box trees. Establishes that the display pipeline stays linear and is
//! not the bottleneck behind the render-scaling numbers of E4.

use alive_apps::gallery::{feed_src, nested_src};
use alive_core::compile;
use alive_core::system::System;
use alive_ui::{diff_displays, hit_test, layout, render_to_text, Point};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn rendered_root(src: &str) -> alive_core::BoxNode {
    let mut sys = System::new(compile(src).expect("compiles"));
    sys.rendered().expect("renders").clone()
}

fn bench_ui_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ui_pipeline");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));

    for n in [10usize, 100, 1000] {
        let root = rendered_root(&feed_src(n));
        group.bench_with_input(BenchmarkId::new("layout_wide", n), &n, |b, _| {
            b.iter(|| black_box(layout(&root)));
        });
        let tree = layout(&root);
        group.bench_with_input(BenchmarkId::new("render_text_wide", n), &n, |b, _| {
            b.iter(|| black_box(render_to_text(&tree)));
        });
        group.bench_with_input(BenchmarkId::new("hit_test_wide", n), &n, |b, _| {
            let bottom = tree.size().h - 1;
            b.iter(|| black_box(hit_test(&tree, Point::new(0, bottom))));
        });
        group.bench_with_input(BenchmarkId::new("diff_identical_wide", n), &n, |b, _| {
            b.iter(|| black_box(diff_displays(&root, &root)));
        });
    }

    for depth in [8usize, 32, 128] {
        let root = rendered_root(&nested_src(depth));
        group.bench_with_input(BenchmarkId::new("layout_deep", depth), &depth, |b, _| {
            b.iter(|| black_box(layout(&root)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ui_pipeline);
criterion_main!(benches);
