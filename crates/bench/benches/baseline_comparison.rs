//! E8 — per-model-change view maintenance cost across architectures:
//! retained-MVC targeted updates (hand-written rules), retained-MVC
//! full rebuild, immediate-mode full re-render (the paper's approach),
//! and immediate-mode with the §5 reuse cache. The paper's position:
//! the retained approach is the fastest per update but requires
//! dangerous hand-written view-update code; immediate mode trades a
//! bounded render cost for correctness by construction.

use alive_baseline::retained::{update_prices, update_selection};
use alive_baseline::{build_listings_view, ListingsModel, RetainedApp};
use alive_bench::{feed_session, feed_touch};
use alive_testkit::Bench;

fn listings_model(n: usize) -> ListingsModel {
    ListingsModel {
        listings: (0..n)
            .map(|i| (format!("{i} Oak Ave"), 100_000.0 + i as f64))
            .collect(),
        selected: 0,
    }
}

fn main() {
    let mut bench = Bench::from_args("baseline_comparison");
    for n in [10usize, 100, 400] {
        let mut app = RetainedApp::new(listings_model(n), build_listings_view);
        app.on_change("selection", update_selection);
        app.on_change("price", update_prices);
        let mut i = 0usize;
        bench.bench(&format!("retained_update/{n}"), || {
            i += 1;
            if i.is_multiple_of(2) {
                app.mutate("selection", |m| m.selected = i % n);
            } else {
                app.mutate("price", |m| m.listings[i % n].1 += 1.0);
            }
        });
        // The "correct by construction" variant of retained MVC:
        // rebuild the whole widget tree from the model per change —
        // i.e. immediate mode in the host language.
        let mut app = RetainedApp::new(listings_model(n), build_listings_view);
        let mut i = 0usize;
        bench.bench(&format!("retained_rebuild/{n}"), || {
            i += 1;
            app.model.selected = i % n;
            std::hint::black_box(build_listings_view(&app.model));
        });
        let mut session = feed_session(n, false);
        let mut i = 0usize;
        bench.bench(&format!("immediate_naive/{n}"), || {
            feed_touch(&mut session, i);
            i += 1;
        });
        let mut session = feed_session(n, true);
        let mut i = 0usize;
        bench.bench(&format!("immediate_memo/{n}"), || {
            feed_touch(&mut session, i);
            i += 1;
        });
    }
    bench.finish();
}
